//! Satellite 3: the malformed-input matrix for the hand-rolled
//! HTTP/JSON layer. Every row must answer a typed 4xx with a JSON error
//! body — and leave the apply loop provably untouched: the state digest
//! and applied-op counter read the same before and after the barrage.

use bursty_placement::OnlineCluster;
use bursty_server::replay::{apply_engine, build_program, drive_http};
use bursty_server::{spawn, Client, Json, ServerConfig};
use bursty_workload::PmSpec;

const D: usize = 16;
const MAX_BODY: usize = 2048;

fn pms(m: usize) -> Vec<PmSpec> {
    (0..m).map(|j| PmSpec::new(j, 100.0)).collect()
}

/// Reads the digest plus applied counter for before/after comparison.
fn digest_and_applied(client: &mut Client) -> (String, u64) {
    let v = client.get("/v1/digest").unwrap().json().unwrap();
    (
        v.get("digest").unwrap().as_str().unwrap().to_string(),
        v.get("applied").unwrap().as_u64().unwrap(),
    )
}

#[test]
fn malformed_inputs_get_typed_4xx_and_never_touch_the_apply_loop() {
    let mut config = ServerConfig::new(pms(32), D, 0.01, 0.09, 0.01);
    config.max_body = MAX_BODY;
    let handle = spawn(config).expect("daemon starts");
    let addr = handle.addr();

    // Put real state behind the daemon so "untouched" means something.
    let program = build_program(0x5EED, 150, 0);
    let mut engine = OnlineCluster::new(pms(32), D, 0.01, 0.09, 0.01);
    let expected = apply_engine(&mut engine, &program.ops);
    let warm = drive_http(addr, &program.ops, 2, 0).unwrap();
    assert_eq!(warm.digest, expected);

    let mut probe = Client::connect(addr).unwrap();
    let before = digest_and_applied(&mut probe);

    // --- Matrix rows: (raw bytes, expected status, expected code,
    // half-close write side so the server sees EOF). Each row uses a
    // fresh connection: framing errors close the stream.
    let vm_body = r#"{"id":9000,"p_on":0.01,"p_off":0.09,"r_b":10,"r_e":5}"#;
    let oversized_len = MAX_BODY + 1;
    let rows: Vec<(Vec<u8>, u16, &str, bool)> = vec![
        // Oversized declared body: rejected before any body byte is read.
        (
            format!("POST /v1/admit HTTP/1.1\r\nContent-Length: {oversized_len}\r\n\r\n")
                .into_bytes(),
            413,
            "payload_too_large",
            false,
        ),
        // Truncated request: body shorter than declared, then EOF.
        (
            b"POST /v1/admit HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"id\":1".to_vec(),
            400,
            "truncated_request",
            true,
        ),
        // Bad content-length.
        (
            b"POST /v1/admit HTTP/1.1\r\nContent-Length: banana\r\n\r\n".to_vec(),
            400,
            "bad_content_length",
            false,
        ),
        // Bodied method with no content-length at all.
        (
            b"POST /v1/admit HTTP/1.1\r\n\r\n".to_vec(),
            400,
            "bad_content_length",
            false,
        ),
        // Garbage request line.
        (b"NONSENSE\r\n\r\n".to_vec(), 400, "bad_request_line", false),
        // Unknown route.
        (
            b"GET /v2/everything HTTP/1.1\r\n\r\n".to_vec(),
            404,
            "not_found",
            false,
        ),
        // Wrong verb on a known route.
        (
            format!(
                "GET /v1/admit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{vm_body}",
                vm_body.len()
            )
            .into_bytes(),
            405,
            "method_not_allowed",
            false,
        ),
        // Body is not JSON.
        (
            b"POST /v1/admit HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!".to_vec(),
            400,
            "bad_request",
            false,
        ),
        // JSON but missing required fields.
        (
            b"POST /v1/admit HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"id\":123}".to_vec(),
            400,
            "bad_request",
            false,
        ),
        // Invalid VM parameters (p_on out of range).
        (
            {
                let bad = r#"{"id":9001,"p_on":7.5,"p_off":0.09,"r_b":10,"r_e":5}"#;
                format!(
                    "POST /v1/admit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{bad}",
                    bad.len()
                )
                .into_bytes()
            },
            400,
            "invalid_params",
            false,
        ),
        // Negative r_b smuggled through a batch member.
        (
            {
                let bad = r#"{"vms":[{"id":9002,"p_on":0.01,"p_off":0.09,"r_b":-3,"r_e":5}]}"#;
                format!(
                    "POST /v1/admit-batch HTTP/1.1\r\nContent-Length: {}\r\n\r\n{bad}",
                    bad.len()
                )
                .into_bytes()
            },
            400,
            "invalid_params",
            false,
        ),
        // Fractional seq.
        (
            {
                let bad = r#"{"id":9003,"p_on":0.01,"p_off":0.09,"r_b":1,"r_e":0,"seq":1.5}"#;
                format!(
                    "POST /v1/admit HTTP/1.1\r\nContent-Length: {}\r\n\r\n{bad}",
                    bad.len()
                )
                .into_bytes()
            },
            400,
            "bad_request",
            false,
        ),
    ];

    for (raw, want_status, want_code, half_close) in rows {
        let mut client = Client::connect(addr).unwrap();
        let send = if half_close {
            Client::send_raw_eof
        } else {
            Client::send_raw
        };
        let resp =
            send(&mut client, &raw).unwrap_or_else(|e| panic!("no response for {want_code}: {e}"));
        assert_eq!(
            resp.status,
            want_status,
            "row {want_code}: body {}",
            resp.text()
        );
        let body = resp.json().unwrap_or_else(|e| {
            panic!(
                "row {want_code}: non-JSON error body {:?}: {e}",
                resp.text()
            )
        });
        let err = body.get("error").expect("error envelope");
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some(want_code),
            "row {want_code}"
        );
        assert!(err
            .get("message")
            .and_then(Json::as_str)
            .is_some_and(|m| !m.is_empty()));
    }

    // The apply loop never saw any of it: digest AND applied-op counter
    // are exactly where the warm-up left them.
    let after = digest_and_applied(&mut probe);
    assert_eq!(before.0, after.0, "digest moved");
    assert_eq!(before.1, after.1, "applied counter moved");

    // The transport kept count of the rejects, though.
    let metrics = probe.get("/metrics").unwrap().text();
    let bad: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_bad_requests "))
        .and_then(|v| v.parse().ok())
        .expect("serve_bad_requests line");
    assert!(bad >= 12, "expected >= 12 transport rejects, saw {bad}");

    drop(probe);
    handle.shutdown();
}

#[test]
fn engine_level_rejections_do_reach_the_loop_and_count() {
    // Contrast case: a well-formed op the *engine* rejects (departing an
    // unknown VM) is applied — the counter moves, the digest does not.
    let handle = spawn(ServerConfig::new(pms(8), D, 0.01, 0.09, 0.01)).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let before = digest_and_applied(&mut client);
    let resp = client
        .post("/v1/depart", &Json::parse(br#"{"id":424242}"#).unwrap())
        .unwrap();
    assert_eq!(resp.status, 404);
    let after = digest_and_applied(&mut client);
    assert_eq!(before.0, after.0);
    assert_eq!(after.1, before.1 + 1);
    drop(client);
    handle.shutdown();
}
