//! Satellite 2: daemon-level snapshot/restore over `obs::durable`.
//!
//! Serve a churn prefix → snapshot → kill the daemon → restore a new
//! daemon from the same directory → serve the suffix: the end digest
//! must equal an uninterrupted run. A `FailingStore` torn-write sweep
//! then proves restore falls back to the older snapshot with a typed
//! per-file reason — never a skewed state.

use bursty_obs::{FailingStore, FsStore, MemStore, Store};
use bursty_placement::OnlineCluster;
use bursty_server::replay::{apply_engine, build_program, drive_http};
use bursty_server::state::{restore_newest, ClusterState, Op, RestoreReason};
use bursty_server::{op_request, spawn, Client, Json, ServerConfig};
use bursty_workload::{PmSpec, VmSpec};

const D: usize = 16;
const P_ON: f64 = 0.01;
const P_OFF: f64 = 0.09;
const RHO: f64 = 0.01;

fn pms(m: usize) -> Vec<PmSpec> {
    (0..m).map(|j| PmSpec::new(j, 100.0)).collect()
}

fn config_with_store(m: usize, dir: &std::path::Path, restore: bool) -> ServerConfig {
    let mut c = ServerConfig::new(pms(m), D, P_ON, P_OFF, RHO);
    c.workers = 4;
    c.store = Some(Box::new(FsStore::open(dir).expect("state dir opens")));
    c.restore = restore;
    c
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("bursty-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn kill_and_restore_matches_uninterrupted_run() {
    let dir = temp_dir("roundtrip");
    let program = build_program(0xDEAD, 600, 0);
    let (prefix, suffix) = program.ops.split_at(350);

    // Oracle: the uninterrupted engine-direct run.
    let mut engine = OnlineCluster::new(pms(96), D, P_ON, P_OFF, RHO);
    let expected = apply_engine(&mut engine, &program.ops);

    // Serve the prefix, snapshot over HTTP, then kill the daemon.
    let handle = spawn(config_with_store(96, &dir, false)).unwrap();
    let mid = drive_http(handle.addr(), prefix, 2, 0).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    // Unsequenced: a seq'd snapshot would advance the window past the
    // suffix's first seq.
    let snap = client.post("/v1/snapshot", &Json::Obj(vec![])).unwrap();
    assert_eq!(snap.status, 200, "snapshot failed: {}", snap.text());
    let snap = snap.json().unwrap();
    assert_eq!(
        snap.get("applied").and_then(Json::as_usize),
        Some(prefix.len())
    );
    drop(client);
    handle.shutdown(); // "kill": all threads join, state dropped

    // Restore a fresh daemon from the same directory.
    let handle = spawn(config_with_store(96, &dir, true)).unwrap();
    {
        let report = handle.restore_report().expect("restore ran");
        assert!(report.loaded_from.is_some());
        assert_eq!(report.applied, prefix.len() as u64);
        assert!(report.discarded.is_empty());
    }
    // The restored digest equals the mid-run digest...
    let mut client = Client::connect(handle.addr()).unwrap();
    let restored = bursty_server::fetch_digest(&mut client).unwrap();
    assert_eq!(restored, mid.digest);
    drop(client);
    // ...and serving the suffix (seqs continue where the prefix left
    // off — the snapshot persisted next_seq) lands on the oracle digest.
    let end = drive_http(handle.addr(), suffix, 2, prefix.len() as u64).unwrap();
    handle.shutdown();
    assert_eq!(end.digest, expected);
}

/// Review regression: a seq'd snapshot released early in a reorder run
/// used to persist the *run end* as `next_seq`, so after a crash and
/// restore, clients resending the later-in-run ops were answered 409
/// `seq_replayed` and those ops were silently lost. The snapshot must
/// persist its own seq + 1.
#[test]
fn seqd_snapshot_mid_run_persists_its_own_seq() {
    let dir = temp_dir("midseq");
    let admit = |id: usize| {
        Op::Admit(VmSpec {
            id,
            p_on: P_ON,
            p_off: P_OFF,
            r_b: 5.0,
            r_e: 5.0,
        })
    };
    let handle = spawn(config_with_store(16, &dir, false)).unwrap();
    let addr = handle.addr();

    // Snapshot at seq 1 and an admit at seq 2 arrive first and buffer;
    // both block until the seq-0 admit below releases the run [0, 1, 2].
    let post_seqd = |op: Op, seq: u64| {
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let (path, body) = op_request(&op, seq);
            let resp = client.post(path, &body).unwrap();
            assert_eq!(resp.status, 200, "seq {seq} body: {}", resp.text());
        })
    };
    let snap_join = post_seqd(Op::Snapshot, 1);
    let tail_join = post_seqd(admit(200), 2);
    std::thread::sleep(std::time::Duration::from_millis(200));
    let mut client = Client::connect(addr).unwrap();
    let (path, body) = op_request(&admit(100), 0);
    assert_eq!(client.post(path, &body).unwrap().status, 200);
    snap_join.join().expect("snapshot client");
    tail_join.join().expect("tail-admit client");
    drop(client);
    handle.shutdown(); // crash after the whole run applied

    // The snapshot saw one applied op (the seq-0 admit) and must have
    // persisted next_seq = 2, not the run end (3).
    let handle = spawn(config_with_store(16, &dir, true)).unwrap();
    let report = handle.restore_report().expect("restore ran");
    assert_eq!(report.applied, 1, "snapshot captured only the seq-0 op");

    // The client never learned its post-snapshot op was lost by the
    // crash; resending seq 2 must apply (the old bug answered 409).
    let mut client = Client::connect(handle.addr()).unwrap();
    let (path, body) = op_request(&admit(200), 2);
    let resp = client.post(path, &body).unwrap();
    assert_eq!(resp.status, 200, "resent seq 2 body: {}", resp.text());
    let digest = bursty_server::fetch_digest(&mut client).unwrap();
    assert_eq!(digest.n_vms, 2);
    drop(client);
    handle.shutdown();
}

#[test]
fn torn_write_sweep_falls_back_with_typed_reasons() {
    // Drive snapshots through a FailingStore across many seeds. Every
    // restore must either load a verified snapshot whose digest matches
    // the state at that snapshot's op count, or report why each
    // candidate was discarded — never return a half-written state.
    let mut skewed = 0u32;
    let mut fell_back = 0u32;
    let mut clean = 0u32;
    for seed in 0..40u64 {
        let mut store = FailingStore::new(MemStore::new(), seed, 40, 40, 40);
        let mut state = ClusterState::new(pms(32), D, P_ON, P_OFF, RHO, 0.0, 256);
        let program = build_program(seed.wrapping_add(99), 120, 0);
        // Digest checkpoints keyed by applied-op count at snapshot time.
        let mut digests = std::collections::HashMap::new();
        for (i, op) in program.ops.iter().enumerate() {
            let _ = state.apply(op.clone(), None, 4, 0);
            if i % 30 == 29 {
                // Snapshot through the faulty store; a failed write is
                // an error the daemon surfaces, not a crash.
                let _ = state.apply(Op::Snapshot, Some(&mut store), 4, 0);
                digests.insert(state.applied(), state.cluster().state_digest());
            }
        }
        let outcome = restore_newest(&store).unwrap();
        match outcome.state {
            Some(restored) => {
                let expected = digests.get(&restored.state.applied()).unwrap_or_else(|| {
                    panic!(
                        "restored applied={} matches no snapshot point",
                        restored.state.applied()
                    )
                });
                if restored.state.cluster().state_digest() != *expected {
                    skewed += 1;
                } else if outcome.discarded.is_empty() {
                    clean += 1;
                } else {
                    fell_back += 1;
                }
                for (name, reason) in &outcome.discarded {
                    assert!(
                        matches!(reason, RestoreReason::Corrupt(_) | RestoreReason::Io(_)),
                        "untyped reason for {name}"
                    );
                }
            }
            None => {
                // Every snapshot write failed or was torn — acceptable
                // only if each file has a typed reason.
                for (name, reason) in &outcome.discarded {
                    assert!(
                        matches!(reason, RestoreReason::Corrupt(_) | RestoreReason::Io(_)),
                        "untyped reason for {name}"
                    );
                }
            }
        }
    }
    assert_eq!(skewed, 0, "restore must never yield a skewed state");
    assert!(clean > 0, "sweep never exercised a clean restore");
    assert!(
        fell_back > 0,
        "sweep never exercised the corrupt-newest fallback (weak fault injection?)"
    );
}

#[test]
fn restore_from_empty_dir_starts_fresh() {
    let dir = temp_dir("empty");
    let handle = spawn(config_with_store(16, &dir, true)).unwrap();
    let report = handle.restore_report().expect("restore ran");
    assert!(report.loaded_from.is_none());
    assert!(report.discarded.is_empty());
    let mut client = Client::connect(handle.addr()).unwrap();
    let digest = bursty_server::fetch_digest(&mut client).unwrap();
    assert_eq!(digest.n_vms, 0);
    drop(client);
    handle.shutdown();
}

#[test]
fn fs_store_corruption_on_disk_is_skipped() {
    // Corrupt the newest snapshot on the real filesystem store, not
    // just MemStore: the daemon must boot from the older one.
    let dir = temp_dir("fscorrupt");
    let program = build_program(0xFEED, 200, 0);
    let handle = spawn(config_with_store(32, &dir, false)).unwrap();
    let first = drive_http(handle.addr(), &program.ops[..100], 1, 0).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        client
            .post("/v1/snapshot", &Json::Obj(vec![]))
            .unwrap()
            .status,
        200
    );
    drive_http(handle.addr(), &program.ops[100..], 1, 100).unwrap();
    assert_eq!(
        client
            .post("/v1/snapshot", &Json::Obj(vec![]))
            .unwrap()
            .status,
        200
    );
    drop(client);
    handle.shutdown();

    // Flip one byte in the lexicographically-newest snapshot file.
    let store = FsStore::open(&dir).unwrap();
    let mut names: Vec<String> = store.list().unwrap();
    names.sort();
    let newest = names.last().unwrap().clone();
    let path = dir.join(&newest);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&path, bytes).unwrap();

    let handle = spawn(config_with_store(32, &dir, true)).unwrap();
    let report = handle.restore_report().expect("restore ran");
    assert_eq!(report.discarded.len(), 1);
    assert_eq!(report.discarded[0].0, newest);
    assert!(matches!(report.discarded[0].1, RestoreReason::Corrupt(_)));
    assert_eq!(report.applied, 100);
    let mut client = Client::connect(handle.addr()).unwrap();
    let digest = bursty_server::fetch_digest(&mut client).unwrap();
    assert_eq!(digest, first.digest);
    drop(client);
    handle.shutdown();
}
