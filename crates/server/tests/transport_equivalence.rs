//! The tentpole contract: the daemon is a transport, not a second
//! engine. A seeded churn program driven through HTTP — at 1, 2, and 8
//! concurrent clients — must land on the same end-state digest as the
//! same program driven directly through `OnlineCluster`, and as the
//! single-threaded `ReferenceOnlineCluster` replay.

use std::time::Duration;

use bursty_placement::{OnlineCluster, ReferenceOnlineCluster};
use bursty_server::replay::{apply_engine, apply_reference, build_program, drive_http};
use bursty_server::{op_request, spawn, Client, Json, Op, ServerConfig};
use bursty_workload::{PmSpec, VmSpec};
use proptest::prelude::*;

const D: usize = 16;
const P_ON: f64 = 0.01;
const P_OFF: f64 = 0.09;
const RHO: f64 = 0.01;

fn pms(m: usize) -> Vec<PmSpec> {
    (0..m).map(|j| PmSpec::new(j, 100.0)).collect()
}

fn config(m: usize) -> ServerConfig {
    let mut c = ServerConfig::new(pms(m), D, P_ON, P_OFF, RHO);
    // Deliberately below the widest client fan-out used here (8):
    // connections must never need a dedicated worker to make progress.
    c.workers = 2;
    c
}

/// Runs `f` on a helper thread and fails the test if it does not finish
/// in time — a wedged daemon must fail loudly, not hang the suite.
fn with_watchdog<T: Send + 'static>(
    label: &str,
    secs: u64,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name(format!("watchdog-{label}"))
        .spawn(move || {
            let _ = tx.send(f());
        })
        .expect("watchdog thread spawns");
    rx.recv_timeout(Duration::from_secs(secs))
        .unwrap_or_else(|_| panic!("{label}: wedged — watchdog expired after {secs}s"))
}

#[test]
fn http_replay_matches_engine_direct_at_1_2_and_8_clients() {
    let program = build_program(0xB0B, 900, 0);

    let mut engine = OnlineCluster::new(pms(128), D, P_ON, P_OFF, RHO);
    let engine_digest = apply_engine(&mut engine, &program.ops);
    let mut reference = ReferenceOnlineCluster::new(pms(128), D, P_ON, P_OFF, RHO);
    let reference_digest = apply_reference(&mut reference, &program.ops);
    assert_eq!(engine_digest, reference_digest);
    assert!(engine_digest.n_vms > 0, "program must leave live VMs");

    for clients in [1usize, 2, 8] {
        let handle = spawn(config(128)).expect("daemon starts");
        let outcome =
            drive_http(handle.addr(), &program.ops, clients, 0).expect("http replay runs");
        handle.shutdown();
        assert_eq!(
            outcome.digest, engine_digest,
            "digest diverged at {clients} clients"
        );
        assert_eq!(outcome.ok + outcome.rejected, program.ops.len());
    }
}

/// Review regression: seq-stamped connections outnumbering workers used
/// to wedge the pool permanently — a worker blocked on a buffered op's
/// reply while the op's missing predecessor sat queued with no free
/// worker to serve it. Workers now hand the connection to the apply
/// loop instead of blocking, so a single worker serves any fan-out.
#[test]
fn seqd_clients_outnumbering_workers_cannot_deadlock() {
    let program = build_program(0xD0C, 360, 0);
    let mut engine = OnlineCluster::new(pms(64), D, P_ON, P_OFF, RHO);
    let expected = apply_engine(&mut engine, &program.ops);

    let outcome = with_watchdog("one-worker-six-clients", 120, move || {
        let mut c = ServerConfig::new(pms(64), D, P_ON, P_OFF, RHO);
        c.workers = 1;
        let handle = spawn(c).expect("daemon starts");
        let outcome = drive_http(handle.addr(), &program.ops, 6, 0).expect("http replay runs");
        handle.shutdown();
        outcome
    });
    assert_eq!(outcome.digest, expected);
}

/// A buffered seq'd op whose predecessors never arrive (its client
/// died mid-stream) is evicted after `pending_ttl` with a retryable
/// 503. The window does not advance: the connection keeps working and
/// the full stream still applies once the gap is filled.
#[test]
fn stale_pending_seq_evicts_with_retryable_503() {
    let admit = |id: usize| {
        Op::Admit(VmSpec {
            id,
            p_on: P_ON,
            p_off: P_OFF,
            r_b: 5.0,
            r_e: 5.0,
        })
    };
    let mut c = config(16);
    c.pending_ttl = Duration::from_millis(150);
    let handle = spawn(c).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).unwrap();

    // seq 5 with seqs 0..4 missing: buffered, then evicted on TTL.
    let (path, body) = op_request(&admit(100), 5);
    let resp = with_watchdog("evicted-op-answers", 30, {
        let addr = handle.addr();
        move || {
            let mut c = Client::connect(addr).unwrap();
            c.post(path, &body).unwrap()
        }
    });
    assert_eq!(resp.status, 503, "body: {}", resp.text());
    let v = resp.json().unwrap();
    assert_eq!(
        v.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("seq_gap_timeout")
    );

    // Eviction did not consume the seqs: 0..=5 all apply now.
    for seq in 0..=5u64 {
        let (path, body) = op_request(&admit(seq as usize), seq);
        let resp = client.post(path, &body).unwrap();
        assert_eq!(resp.status, 200, "seq {seq} body: {}", resp.text());
    }
    let digest = bursty_server::fetch_digest(&mut client).unwrap();
    assert_eq!(digest.n_vms, 6);
    drop(client);
    handle.shutdown();
}

/// Review regression: shutdown used to wait for every client to hang
/// up — a worker blocked reading an idle keep-alive connection never
/// saw the flag. Reads now tick on a socket timeout.
#[test]
fn shutdown_returns_while_clients_hold_idle_connections() {
    let handle = spawn(config(16)).expect("daemon starts");
    let mut active = Client::connect(handle.addr()).unwrap();
    assert_eq!(active.get("/healthz").unwrap().status, 200);
    let silent = Client::connect(handle.addr()).unwrap(); // never sends
    with_watchdog("shutdown-with-idle-conns", 30, move || handle.shutdown());
    drop(active);
    drop(silent);
}

#[test]
fn unseqd_single_client_also_matches() {
    // Without seq numbers a single connection still serializes through
    // the apply loop in send order.
    let program = build_program(0xCAFE, 300, 0);
    let mut engine = OnlineCluster::new(pms(64), D, P_ON, P_OFF, RHO);
    let engine_digest = apply_engine(&mut engine, &program.ops);

    let handle = spawn(config(64)).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).unwrap();
    for op in &program.ops {
        let (path, body) = bursty_server::op_request(op, 0);
        // Strip the seq field: send the op body without ordering.
        let body = match body {
            Json::Obj(pairs) => Json::Obj(pairs.into_iter().filter(|(k, _)| k != "seq").collect()),
            other => other,
        };
        let resp = client.post(path, &body).unwrap();
        assert!(
            resp.status == 200 || resp.status == 404 || resp.status == 409,
            "unexpected status {} on {path}",
            resp.status
        );
    }
    let digest = bursty_server::fetch_digest(&mut client).unwrap();
    drop(client);
    handle.shutdown();
    assert_eq!(digest, engine_digest);
}

#[test]
fn fleet_and_metrics_views_report_the_served_state() {
    let program = build_program(0xF00D, 200, 0);
    let mut engine = OnlineCluster::new(pms(64), D, P_ON, P_OFF, RHO);
    let engine_digest = apply_engine(&mut engine, &program.ops);

    let handle = spawn(config(64)).expect("daemon starts");
    let outcome = drive_http(handle.addr(), &program.ops, 2, 0).unwrap();
    assert_eq!(outcome.digest, engine_digest);

    let mut client = Client::connect(handle.addr()).unwrap();
    let fleet = client.get("/v1/fleet").unwrap();
    assert_eq!(fleet.status, 200);
    let fleet = fleet.json().unwrap();
    assert_eq!(
        fleet.get("n_vms").and_then(Json::as_usize),
        Some(engine_digest.n_vms)
    );
    assert_eq!(
        fleet.get("pms_used").and_then(Json::as_usize),
        Some(engine_digest.pms_used)
    );
    assert_eq!(
        fleet.get("applied").and_then(Json::as_usize),
        Some(program.ops.len())
    );

    let metrics = client.get("/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(text.contains("serve_requests "));
    assert!(text.contains(&format!("serve_fleet_vms {}", engine_digest.n_vms)));
    assert!(text.contains("online_arrivals "));
    drop(client);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 1: an *arbitrary* assignment of the seeded op set to N
    /// loopback connections — not just round-robin — produces the same
    /// end-state digest as the single-threaded reference replay. Each
    /// client sends its share in ascending-seq order; everything else
    /// (scheduling, interleaving, arrival order at the listener) is up
    /// to the OS.
    #[test]
    fn arbitrary_client_partitions_are_deterministic(
        seed in 1u64..1000,
        clients in 2usize..6,
        assignment in proptest::collection::vec(0usize..6, 240),
    ) {
        let program = build_program(seed, assignment.len(), 0);
        let mut reference = ReferenceOnlineCluster::new(pms(64), D, P_ON, P_OFF, RHO);
        let expected = apply_reference(&mut reference, &program.ops);

        let handle = spawn(config(64)).expect("daemon starts");
        // Partition by the proptest-chosen assignment, preserving seq
        // order inside each share.
        let mut shares: Vec<Vec<(u64, bursty_server::Op)>> = vec![Vec::new(); clients];
        for (i, op) in program.ops.iter().enumerate() {
            shares[assignment[i] % clients].push((i as u64, op.clone()));
        }
        let addr = handle.addr();
        let joins: Vec<_> = shares
            .into_iter()
            .map(|share| {
                std::thread::spawn(move || -> std::io::Result<()> {
                    let mut client = Client::connect(addr)?;
                    for (seq, op) in share {
                        let (path, body) = bursty_server::op_request(&op, seq);
                        let resp = client.post(path, &body)?;
                        if !matches!(resp.status, 200 | 404 | 409) {
                            return Err(std::io::Error::other(format!(
                                "status {} on {path}",
                                resp.status
                            )));
                        }
                    }
                    Ok(())
                })
            })
            .collect();
        for j in joins {
            j.join().expect("client thread").expect("client i/o");
        }
        let mut client = Client::connect(addr).unwrap();
        let digest = bursty_server::fetch_digest(&mut client).unwrap();
        drop(client);
        handle.shutdown();
        prop_assert_eq!(digest, expected);
    }
}
