//! Benchmark-only access to the class-aggregated hot loop.
//!
//! `WorkloadCore` is crate-private by design — the engine owns it — but
//! the throughput benches need to time the raw cell kernel without the
//! controller around it (the `cell_steps_per_sec` rows of
//! `BENCH_engine.json`). This module exposes exactly that: build a core
//! over a fleet, step it, read the occupancy and cache counters. Hidden
//! from docs and semver-stability promises.

use crate::config::RngLayout;
use crate::rng::binomial_table::CacheStats;
use crate::workload_core::WorkloadCore;
use bursty_workload::VmSpec;

/// Occupied `(location, class)` cells and mean VMs per cell for `vms`
/// placed by `host` over `m` PMs — the occupancy context `engine-bench`
/// attaches to its class-layout rows so throughput numbers carry the
/// cell population they were measured against.
pub fn class_occupancy(vms: &[VmSpec], m: usize, host: &[Option<usize>]) -> (usize, f64) {
    let mut core = WorkloadCore::new(vms, m, 0, RngLayout::ClassAggregated, 1);
    core.class_init(host);
    let cells = core.class_occupied_cells().unwrap_or(0);
    let placed = host.iter().flatten().count();
    let mean = if cells == 0 {
        0.0
    } else {
        placed as f64 / cells as f64
    };
    (cells, mean)
}

/// A class-aggregated [`WorkloadCore`] plus the fixed placement and
/// scratch the kernel steps against — the engine's hot loop with the
/// controller stripped away.
pub struct ClassCoreBench {
    core: WorkloadCore,
    host: Vec<Option<usize>>,
    observed: Vec<f64>,
    next: u64,
}

impl ClassCoreBench {
    /// Builds the core under [`RngLayout::ClassAggregated`] over the
    /// given placement (`host[i]` = VM `i`'s PM) so kernel rates are
    /// measured at the cell density the engine actually runs, not a
    /// synthetic spread. `cached` selects the memoized tables (`true`)
    /// or the pmf-recurrence walk.
    pub fn new(
        vms: &[VmSpec],
        m: usize,
        host: &[Option<usize>],
        seed: u64,
        threads: usize,
        cached: bool,
    ) -> Self {
        let mut core = WorkloadCore::new(vms, m, seed, RngLayout::ClassAggregated, threads);
        core.set_class_sampler(cached);
        let host = host.to_vec();
        core.class_init(&host);
        Self {
            core,
            host,
            observed: vec![0.0; m],
            next: 0,
        }
    }

    /// Advances the kernel one step, returning the first PM's observed
    /// demand (a data dependency that keeps the optimizer honest).
    pub fn step(&mut self) -> f64 {
        self.core.step(self.next, &self.host, &mut self.observed);
        self.next += 1;
        self.observed[0]
    }

    /// Occupied `(location, class)` cells — the unit the kernel's cost
    /// scales with.
    pub fn occupied_cells(&self) -> usize {
        self.core.class_occupied_cells().unwrap_or(0)
    }

    /// Summed `(hits, misses, evictions)` of the sampler caches.
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        let CacheStats {
            hits,
            misses,
            evictions,
        } = self.core.class_cache_stats().unwrap_or_default();
        (hits, misses, evictions)
    }
}
