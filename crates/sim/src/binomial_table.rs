//! O(1)-expected exact binomial sampling for the class-aggregated hot
//! loop: memoized CDF prefix tables with Chen–Asau guide tables.
//!
//! [`super::keyed_binomial`] inverts one uniform through the binomial
//! CDF by an ordered pmf-recurrence walk — `O(E[X] + 1)` f64 recurrence
//! iterations per draw. The class-aggregated engine issues two such
//! draws per occupied `(PM, class)` cell per step, and the `(n, p)` key
//! space those draws range over is tiny: `p` comes from the class table
//! (≤ ~100 distinct values) and `n` is a cell's ON (or OFF) count,
//! which fluctuates in a narrow band around `count · π`. A
//! [`BinomialTable`] snapshots the walk's CDF prefix once per `(n, p)`
//! and answers every later draw with one guide-table jump plus an
//! expected O(1) scan.
//!
//! **Bit-identity contract** (DESIGN.md §8): the table stores the
//! *exact* f64 partial sums the walk produces — same anchor (including
//! the `q^n`-underflow `ln_gamma` regime, via [`super::walk_anchor`]),
//! same recurrence, same accumulation order — so
//! `table.sample_u01(u) == binomial_from_u01(u, n, p)` for every `u`,
//! bitwise, not approximately. The prefix is truncated only when every
//! later partial sum is provably the same f64 (the next addend is
//! absorbed by the running sum *and* the pmf is past its mode, so all
//! later addends are no larger and absorbed too); past the stored
//! prefix the walk provably runs to `k == n`, which is what the lookup
//! returns.
//!
//! Tables never go stale: a table is a pure function of `(n, p)`, valid
//! under any placement, churn, or restored checkpoint. Churn only makes
//! entries *cold* (cell counts move to new `n` values), so the cache is
//! bounded by a generation flush — when the live f64/u32 entries exceed
//! the budget, every table is dropped and rebuilding starts from the
//! draws that still happen. Hit/miss/evict counts are exposed for the
//! `obs` layer.

use super::{keyed_u01, walk_anchor};

/// Default per-cache budget of live table entries (`cdf` f64s plus
/// `guide` u32s). Typical steady state is a few hundred tables of a few
/// dozen entries each; 2^16 entries (~0.75 MB) is far above that while
/// keeping even a pathological churn storm bounded.
pub const DEFAULT_ENTRY_BUDGET: usize = 1 << 16;

/// The memoized inverse CDF of one `Binomial(n, p)` with `n ≥ 1` and
/// `0 < p < 1`: the exact f64 partial sums of the pmf-recurrence walk,
/// plus a guide table for O(1)-expected lookup.
#[derive(Debug)]
pub struct BinomialTable {
    n: u32,
    /// First value covered by `cdf[0]` (0 unless `q^n` underflowed and
    /// the walk anchored at the lower 12σ edge).
    start: u32,
    /// `cdf[i]` = the walk's running sum after value `start + i`, in
    /// the walk's own accumulation order. Non-decreasing.
    cdf: Vec<f64>,
    /// Chen–Asau guide: `guide[g]` is a lower bound on the answer index
    /// for any `u` with `floor(u·G) == g`. Only a search accelerator —
    /// the lookup walks both directions, so a conservative entry can
    /// cost a step, never correctness.
    guide: Vec<u32>,
}

impl BinomialTable {
    /// Builds the table by running the walk's recurrence to absorption.
    ///
    /// # Panics
    /// Debug-asserts `n ≥ 1` and `0 < p < 1`; the degenerate cells are
    /// the caller's short-circuits (they never consult a table).
    pub fn build(n: u32, p: f64) -> Self {
        debug_assert!(n >= 1 && p > 0.0 && p < 1.0);
        let q = 1.0 - p;
        let ratio = p / q;
        let (start, mut pmf) = walk_anchor(n, p, q);
        let mut cdf = pmf;
        let mut sums = vec![cdf];
        let mut k = start;
        while k < n {
            let r = (n - k) as f64 / (k + 1) as f64 * ratio;
            let next = pmf * r;
            // Sound truncation: if the next addend is absorbed bitwise
            // and the recurrence multiplier is ≤ 1 (the pmf is past its
            // mode, so every later addend is no larger and therefore
            // absorbed too), the walk's running sum never changes again
            // and it provably proceeds to k == n — exactly what the
            // lookup returns past the stored prefix.
            if next == 0.0 || (r <= 1.0 && cdf + next == cdf) {
                break;
            }
            pmf = next;
            k += 1;
            cdf += pmf;
            sums.push(cdf);
        }
        let len = sums.len();
        let mut guide = vec![len as u32; len];
        let mut i = 0usize;
        for (g, slot) in guide.iter_mut().enumerate() {
            let threshold = g as f64 / len as f64;
            while i < len && sums[i] <= threshold {
                i += 1;
            }
            *slot = i as u32;
        }
        Self {
            n,
            start,
            cdf: sums,
            guide,
        }
    }

    /// Inverts `u ∈ [0, 1)` through the stored CDF: the smallest value
    /// whose partial sum exceeds `u`, or `n` past the stored prefix.
    /// Bit-identical to [`binomial_from_u01`] for this table's `(n, p)`.
    #[inline]
    pub fn sample_u01(&self, u: f64) -> u32 {
        let len = self.cdf.len();
        let g = ((u * len as f64) as usize).min(len - 1);
        let mut i = self.guide[g] as usize;
        while i < len && u >= self.cdf[i] {
            i += 1;
        }
        // Guard against a guide entry past the answer (possible only
        // through f64 rounding in the bucket index); in practice this
        // loop never iterates.
        while i > 0 && u < self.cdf[i - 1] {
            i -= 1;
        }
        if i == len {
            self.n
        } else {
            self.start + i as u32
        }
    }

    /// Live entries this table holds against a cache budget (`cdf` f64s
    /// plus `guide` u32s).
    pub fn entries(&self) -> usize {
        self.cdf.len() + self.guide.len()
    }
}

/// Cache counters, summed across caches for the `obs` layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Draws answered from an existing table.
    pub hits: u64,
    /// Draws that had to build a table first.
    pub misses: u64,
    /// Tables dropped by generation flushes.
    pub evictions: u64,
}

/// One memoized table's location inside its slot's arenas.
#[derive(Debug, Clone, Copy)]
struct TableMeta {
    /// The table's `n` (the lookup answer past the stored prefix).
    n: u32,
    /// First value covered by the prefix (the walk's anchor).
    start: u32,
    /// Offset of this table's segment in both `cdf` and `guide`.
    off: u32,
    /// Segment length (the stored prefix length).
    len: u32,
}

/// Sentinel in the per-`n` index: no table built for this `n` yet.
const ABSENT: u32 = u32::MAX;

/// Tables of one distinct success probability, arena-packed: all CDF
/// prefixes in one `Vec<f64>`, all guide tables in one `Vec<u32>`, and
/// a dense per-`n` index into the metadata — one dependent load fewer
/// per draw than boxed per-table storage, and no per-table allocation.
#[derive(Debug)]
struct PSlot {
    p: f64,
    /// `index[n]` = position in `metas`, or [`ABSENT`].
    index: Vec<u32>,
    metas: Vec<TableMeta>,
    cdf: Vec<f64>,
    guide: Vec<u32>,
}

impl PSlot {
    /// The arena-resident equivalent of [`BinomialTable::sample_u01`].
    #[inline]
    fn lookup(&self, ix: u32, u: f64) -> u32 {
        let meta = self.metas[ix as usize];
        let off = meta.off as usize;
        let len = meta.len as usize;
        let g = ((u * len as f64) as usize).min(len - 1);
        let mut i = self.guide[off + g] as usize;
        while i < len && u >= self.cdf[off + i] {
            i += 1;
        }
        while i > 0 && u < self.cdf[off + i - 1] {
            i -= 1;
        }
        if i == len {
            meta.n
        } else {
            meta.start + i as u32
        }
    }
}

/// A bounded memo of [`BinomialTable`]s over a fixed registry of `p`
/// values (registered at construction — the engine's class table is
/// known up front), indexed by `(slot, n)` with no hashing on the hot
/// path. The kernel owns one cache per PM chunk, so a chunk's counters
/// are produced by exactly one worker and their sum is invariant in the
/// thread count.
#[derive(Debug)]
pub struct TableCache {
    slots: Vec<PSlot>,
    live_entries: usize,
    budget_entries: usize,
    stats: CacheStats,
}

impl TableCache {
    /// A cache over the given `p` registry, bounded to `budget_entries`
    /// live table entries (a generation flush drops every table when a
    /// build would exceed the budget).
    pub fn new(ps: &[f64], budget_entries: usize) -> Self {
        Self {
            slots: ps
                .iter()
                .map(|&p| PSlot {
                    p,
                    index: Vec::new(),
                    metas: Vec::new(),
                    cdf: Vec::new(),
                    guide: Vec::new(),
                })
                .collect(),
            live_entries: 0,
            budget_entries,
            stats: CacheStats::default(),
        }
    }

    /// The deterministic `Binomial(n, p_slot)` draw at `(key, counter)`
    /// — bit-identical to `keyed_binomial(key, counter, n, p_slot)`,
    /// answered from the memoized table (building it on first use).
    #[inline]
    pub fn draw(&mut self, slot: usize, key: u64, counter: u64, n: u32) -> u32 {
        let p = self.slots[slot].p;
        // The walk's degenerate short-circuits, verbatim.
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let u = keyed_u01(key, counter);
        // Hit path: index probe, metadata, guide jump, prefix scan.
        let slot_ref = &self.slots[slot];
        if let Some(&ix) = slot_ref.index.get(n as usize) {
            if ix != ABSENT {
                self.stats.hits += 1;
                return slot_ref.lookup(ix, u);
            }
        }
        self.build_and_sample(slot, u, n)
    }

    /// Miss path: builds the table into the slot's arenas (flushing
    /// first if the build would exceed the entry budget), then answers
    /// the draw.
    #[cold]
    fn build_and_sample(&mut self, slot: usize, u: f64, n: u32) -> u32 {
        self.stats.misses += 1;
        let table = BinomialTable::build(n, self.slots[slot].p);
        let cost = table.entries();
        if self.live_entries + cost > self.budget_entries {
            self.flush();
        }
        self.live_entries += cost;
        let s = &mut self.slots[slot];
        let ni = n as usize;
        if s.index.len() <= ni {
            s.index.resize(ni + 1, ABSENT);
        }
        let ix = s.metas.len() as u32;
        s.index[ni] = ix;
        s.metas.push(TableMeta {
            n: table.n,
            start: table.start,
            off: s.cdf.len() as u32,
            len: table.cdf.len() as u32,
        });
        s.cdf.extend_from_slice(&table.cdf);
        s.guide.extend_from_slice(&table.guide);
        s.lookup(ix, u)
    }

    /// Generation flush: drop every table, counting each as an
    /// eviction. Purely a memory bound — tables are pure functions of
    /// `(n, p)`, so nothing can become *wrong*, only cold.
    fn flush(&mut self) {
        for s in &mut self.slots {
            self.stats.evictions += s.metas.len() as u64;
            s.index.clear();
            s.metas.clear();
            s.cdf.clear();
            s.guide.clear();
        }
        self.live_entries = 0;
    }

    /// Hit/miss/evict counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live table entries currently held (≤ the construction budget
    /// plus one table).
    pub fn live_entries(&self) -> usize {
        self.live_entries
    }
}

#[cfg(test)]
mod tests {
    use super::super::{binomial_from_u01, class_cell_key, class_hash, keyed_binomial};
    use super::*;

    /// The smallest `n` whose `q^n` underflows to 0.0 — the boundary
    /// between the direct anchor and the `ln_gamma` log-space anchor.
    fn underflow_cutoff(p: f64) -> u32 {
        let q = 1.0 - p;
        let mut lo = 1u32;
        let mut hi = 1u32;
        while q.powi(hi as i32) > 0.0 {
            hi *= 2;
        }
        while lo + 1 < hi {
            let mid = lo + (hi - lo) / 2;
            if q.powi(mid as i32) > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        hi
    }

    #[test]
    fn table_matches_walk_on_a_u_grid() {
        // Dense deterministic u grid per (n, p), both anchor regimes.
        for &p in &[1e-6, 0.01, 0.09, 0.25, 0.5, 0.91, 0.999] {
            for &n in &[1u32, 2, 7, 64, 141, 1000] {
                let t = BinomialTable::build(n, p);
                for i in 0..4096u64 {
                    let u = i as f64 / 4096.0;
                    assert_eq!(
                        t.sample_u01(u),
                        binomial_from_u01(u, n, p),
                        "n={n} p={p} u={u}"
                    );
                }
                // The rightmost representable u exercises the truncated
                // tail / saturation path.
                let u = 1.0 - f64::EPSILON / 2.0;
                assert_eq!(t.sample_u01(u), binomial_from_u01(u, n, p));
            }
        }
    }

    #[test]
    fn table_matches_walk_across_the_underflow_boundary() {
        for &p in &[0.09, 0.4] {
            let cutoff = underflow_cutoff(p);
            for n in cutoff - 2..=cutoff + 2 {
                let t = BinomialTable::build(n, p);
                for i in 0..2048u64 {
                    let u = (2 * i + 1) as f64 / 4096.0;
                    assert_eq!(
                        t.sample_u01(u),
                        binomial_from_u01(u, n, p),
                        "n={n} p={p} u={u} (cutoff {cutoff})"
                    );
                }
            }
        }
    }

    #[test]
    fn cache_draw_is_bit_identical_to_keyed_binomial() {
        let ps = [0.0, 0.01, 0.09, 0.5, 1.0];
        let mut cache = TableCache::new(&ps, DEFAULT_ENTRY_BUDGET);
        for (slot, &p) in ps.iter().enumerate() {
            for &n in &[0u32, 1, 5, 40, 141] {
                let key = class_cell_key(7, slot as u64, class_hash([n as u64, 1, 2, 3]));
                for counter in 0..500u64 {
                    assert_eq!(
                        cache.draw(slot, key, counter, n),
                        keyed_binomial(key, counter, n, p),
                        "slot={slot} p={p} n={n} counter={counter}"
                    );
                }
            }
        }
        let s = cache.stats();
        assert!(s.hits > 0 && s.misses > 0);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn flush_bounds_memory_and_counts_evictions() {
        // A budget small enough that distinct n values force flushes.
        let mut cache = TableCache::new(&[0.3], 64);
        let key = class_cell_key(1, 0, class_hash([9, 9, 9, 9]));
        for round in 0..4u64 {
            for n in 1..=32u32 {
                cache.draw(0, key, round * 64 + u64::from(n), n);
            }
        }
        let s = cache.stats();
        assert!(s.evictions > 0, "budget 64 must force flushes");
        assert!(
            cache.live_entries() <= 64 + BinomialTable::build(32, 0.3).entries(),
            "live entries {} exceed budget + one table",
            cache.live_entries()
        );
        // Correctness survives every flush.
        for n in 1..=32u32 {
            assert_eq!(
                cache.draw(0, key, 10_000 + u64::from(n), n),
                keyed_binomial(key, 10_000 + u64::from(n), n, 0.3)
            );
        }
    }

    #[test]
    fn guide_table_is_a_valid_lower_bound() {
        for &(n, p) in &[(141u32, 0.09f64), (17, 0.5), (1000, 0.01)] {
            let t = BinomialTable::build(n, p);
            for (g, &start) in t.guide.iter().enumerate() {
                let threshold = g as f64 / t.guide.len() as f64;
                for i in 0..start as usize {
                    assert!(t.cdf[i] <= threshold, "guide[{g}] skips cdf[{i}]");
                }
            }
        }
    }
}
