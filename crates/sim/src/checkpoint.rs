//! Crash-safe checkpoint/resume: durable snapshots of the full
//! simulation state with bit-identical restart (DESIGN.md §11).
//!
//! A checkpoint is one file in the [`bursty_obs::durable`] frame
//! format — magic, version, CRC64-guarded sections — holding a
//! serialization of the engine's [`RunState`] at a step boundary,
//! plus (optionally) the attached recorder's own snapshot. Resuming
//! reconstructs the `RunState` and re-enters the step loop via
//! [`Simulator::run_from`]; because every piece of evolving state
//! travels — all three RNG layouts, the fault process, the retry
//! queue with its backoff exponents, the displaced-VM pools, the
//! accumulated accounting, and the recorder journal — a resumed run
//! finishes `f64::to_bits`-identical to one that never stopped
//! (proptested in `sim/tests/checkpoint_resume.rs`).
//!
//! What a snapshot does *not* carry is anything derivable from the
//! specs: flattened chain parameters, stream keys, the class table,
//! headroom indexes. Those are rebuilt from the `Simulator`'s own
//! fleet on load, and a fingerprint over the scientific configuration
//! (config fields, power model, and the exact spec bit patterns —
//! *not* the thread count, which never changes results) rejects a
//! snapshot from a different experiment before any state is trusted.
//! The runtime policy is a `dyn` trait object and cannot be hashed;
//! resuming under a different policy than the one that wrote the
//! snapshot is undetectable and on the caller, as documented on
//! [`Simulator::resume_with_checkpoints`].
//!
//! Failure tolerance runs in both directions. Saves go through
//! [`Store::write_atomic`] (temp + fsync + rename for the filesystem
//! store); a failed save is recorded and the run continues — a
//! checkpointer can degrade, never corrupt the science. Loads walk
//! the retained snapshots newest-first and take the first one that
//! verifies end to end (frame CRCs, fingerprint, structural
//! validation of every section); torn, truncated, or bit-flipped
//! files are discarded with a reason into the [`RecoveryReport`].

use crate::config::{CheckpointConfig, RngLayout, VictimPolicy};
use crate::engine::{
    CrashRecord, FaultState, RecoveryStats, RetryEntry, RetryKind, RunState, SimOutcome, Simulator,
    StepHook,
};
use crate::events::{EvacuationEvent, FaultEvent, FaultKind, MigrationEvent};
use crate::faults::FaultProcess;
use crate::rng::mix64;
use crate::workload_core::{CoreSnapshot, WorkloadCore};
use bursty_metrics::TimeSeries;
use bursty_obs::durable::{
    parse_frames, put_bool, put_bytes, put_f64, put_u32, put_u64, put_u8, put_usize, Cursor,
    FrameError, FrameWriter, Store,
};
use bursty_obs::Recorder;
use bursty_placement::{Placement, PmLoad};
use std::fmt;

// Section tags of a checkpoint file, in write order.
const SEC_META: u32 = 1;
const SEC_STEP: u32 = 2;
const SEC_CORE: u32 = 3;
const SEC_FAULTPROC: u32 = 4;
const SEC_FAULTSTATE: u32 = 5;
const SEC_PLACE: u32 = 6;
const SEC_DUAL: u32 = 7;
const SEC_ACCT: u32 = 8;
const SEC_REC: u32 = 9;

/// Width of the zero-padded step number in checkpoint file names —
/// what makes lexicographic order equal numeric order during rotation
/// and newest-first recovery.
const STEP_DIGITS: usize = 12;

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// The store could not be read or listed.
    Io(std::io::Error),
    /// The file failed frame verification (bad magic, CRC mismatch,
    /// truncation) or a section failed structural validation.
    Frame(FrameError),
    /// The snapshot was written by a different experiment: its
    /// configuration/fleet fingerprint does not match this simulator.
    FingerprintMismatch {
        /// Fingerprint of this simulator's configuration and fleet.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// No retained snapshot survived verification; each discarded file
    /// is listed with the reason it was rejected.
    NoUsableCheckpoint {
        /// `(file name, rejection reason)` of every discarded file.
        discarded: Vec<(String, String)>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            Self::Frame(e) => write!(f, "checkpoint verification failed: {e}"),
            Self::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different experiment \
                 (fingerprint {found:#018x}, this run is {expected:#018x})"
            ),
            Self::NoUsableCheckpoint { discarded } => {
                write!(f, "no usable checkpoint ({} discarded", discarded.len())?;
                for (name, why) in discarded {
                    write!(f, "; {name}: {why}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<FrameError> for CheckpointError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

/// What a recovery walk found: which snapshot was loaded and which
/// files were discarded on the way there (newest first), each with the
/// verification failure that disqualified it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// File name of the snapshot the run resumed from.
    pub loaded: String,
    /// The step the loaded snapshot was taken at (= completed steps).
    pub step: usize,
    /// `(file name, rejection reason)` of newer files that failed
    /// verification and were skipped.
    pub discarded: Vec<(String, String)>,
}

/// Outcome of a checkpointed run: the simulation result plus the
/// checkpointer's own accounting. Save failures never abort the run —
/// they are tolerated and surfaced here.
#[derive(Debug)]
pub struct CheckpointedRun {
    /// The simulation outcome, bit-identical to an uncheckpointed run.
    pub outcome: SimOutcome,
    /// Snapshots written successfully.
    pub saves: usize,
    /// `(step, error)` of snapshot writes that failed; the run
    /// continued past each.
    pub save_errors: Vec<(usize, String)>,
}

/// Fingerprint of the scientific configuration: a mix64 chain over
/// every config field that selects the sample path or the accounting,
/// the power model, and the exact bit patterns of the fleet specs.
/// `threads` is deliberately excluded — any thread count produces
/// `to_bits`-identical results (the core's determinism contract), so a
/// snapshot may be resumed at a different parallelism. `class_sampler`
/// is excluded for the same reason: the memoized tables and the walk
/// draw bit-identical values, so a snapshot may be resumed under
/// either sampler. The `dyn` runtime policy cannot participate; see
/// the module docs.
pub(crate) fn fingerprint(sim: &Simulator<'_>) -> u64 {
    let mut h: u64 = 0x4243_4b50; // "BCKP"
    let mut eat = |w: u64| h = mix64(h ^ w);
    let cfg = &sim.config;
    eat(cfg.steps as u64);
    eat(cfg.sigma_secs.to_bits());
    eat(cfg.rho.to_bits());
    eat(cfg.seed);
    eat(u64::from(cfg.migrations_enabled));
    eat(cfg.dual_count_steps as u64);
    eat(match cfg.victim_policy {
        VictimPolicy::LargestOnDemand => 0,
        VictimPolicy::SmallestSufficient => 1,
        VictimPolicy::SmallestBase => 2,
    });
    eat(cfg.violation_allowance.to_bits());
    eat(cfg.retry_base_steps as u64);
    eat(cfg.max_retries as u64);
    eat(cfg.degraded_epsilon.to_bits());
    match &cfg.faults {
        None => eat(0),
        Some(fc) => {
            eat(1);
            eat(fc.mtbf_steps.to_bits());
            eat(fc.mttr_steps.to_bits());
            eat(fc.correlated_group_size as u64);
            eat(fc.seed);
        }
    }
    eat(match cfg.rng_layout {
        RngLayout::Shared => 0,
        RngLayout::PerVm => 1,
        RngLayout::ClassAggregated => 2,
    });
    eat(sim.power.idle_watts.to_bits());
    eat(sim.power.peak_watts.to_bits());
    eat(sim.vms.len() as u64);
    eat(sim.pms.len() as u64);
    for vm in sim.vms {
        eat(vm.id as u64);
        eat(vm.p_on.to_bits());
        eat(vm.p_off.to_bits());
        eat(vm.r_b.to_bits());
        eat(vm.r_e.to_bits());
    }
    for pm in sim.pms {
        eat(pm.id as u64);
        eat(pm.capacity.to_bits());
    }
    h
}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

fn put_opt_usize(buf: &mut Vec<u8>, v: Option<usize>) {
    put_bool(buf, v.is_some());
    put_usize(buf, v.unwrap_or(0));
}

fn put_usize_slice(buf: &mut Vec<u8>, vs: &[usize]) {
    put_usize(buf, vs.len());
    for &v in vs {
        put_usize(buf, v);
    }
}

fn put_bool_slice(buf: &mut Vec<u8>, vs: &[bool]) {
    put_usize(buf, vs.len());
    for &v in vs {
        put_bool(buf, v);
    }
}

fn put_f64_slice(buf: &mut Vec<u8>, vs: &[f64]) {
    put_usize(buf, vs.len());
    for &v in vs {
        put_f64(buf, v);
    }
}

/// Serializes a [`RunState`] (plus optional recorder snapshot) into
/// the durable frame format.
pub(crate) fn encode_state(
    sim: &Simulator<'_>,
    st: &RunState,
    rec_bytes: Option<Vec<u8>>,
) -> Vec<u8> {
    let mut w = FrameWriter::new();

    let mut meta = Vec::new();
    put_u64(&mut meta, fingerprint(sim));
    w.section(SEC_META, &meta);

    let mut step = Vec::new();
    put_usize(&mut step, st.next_step);
    w.section(SEC_STEP, &step);

    let mut core = Vec::new();
    put_bool_slice(&mut core, &st.core.on);
    match st.core.snapshot_mode() {
        CoreSnapshot::Shared(words) => {
            put_u8(&mut core, 0);
            for word in words {
                put_u64(&mut core, word);
            }
        }
        CoreSnapshot::PerVm => put_u8(&mut core, 1),
        CoreSnapshot::ClassAggregated(locs) => {
            put_u8(&mut core, 2);
            put_usize(&mut core, locs.len());
            for cells in &locs {
                put_usize(&mut core, cells.len());
                for &(class, count, n_on) in cells {
                    put_u32(&mut core, class);
                    put_u32(&mut core, count);
                    put_u32(&mut core, n_on);
                }
            }
        }
    }
    w.section(SEC_CORE, &core);

    let mut fp = Vec::new();
    match &st.fault_process {
        None => put_bool(&mut fp, false),
        Some(process) => {
            put_bool(&mut fp, true);
            for word in process.rng_state() {
                put_u64(&mut fp, word);
            }
            put_bool_slice(&mut fp, process.domain_states());
        }
    }
    w.section(SEC_FAULTPROC, &fp);

    let fs = &st.fs;
    let mut fsb = Vec::new();
    put_bool_slice(&mut fsb, &fs.pm_up);
    put_bool_slice(&mut fsb, &fs.vm_degraded);
    put_usize_slice(&mut fsb, &fs.pm_overflow);
    put_usize(&mut fsb, fs.crash_of_vm.len());
    for &c in &fs.crash_of_vm {
        put_opt_usize(&mut fsb, c);
    }
    put_usize(&mut fsb, fs.crash_records.len());
    for r in &fs.crash_records {
        put_usize(&mut fsb, r.pm);
        put_usize(&mut fsb, r.step);
        put_usize(&mut fsb, r.pending);
    }
    put_usize(&mut fsb, fs.retry_queue.len());
    for e in &fs.retry_queue {
        put_usize(&mut fsb, e.vm);
        put_u8(&mut fsb, matches!(e.kind, RetryKind::Evacuation).into());
        put_usize(&mut fsb, e.attempts);
        put_usize(&mut fsb, e.next_step);
    }
    put_usize(&mut fsb, fs.fault_events.len());
    for e in &fs.fault_events {
        put_usize(&mut fsb, e.step);
        put_usize(&mut fsb, e.pm);
        put_u8(&mut fsb, matches!(e.kind, FaultKind::Recovery).into());
    }
    put_usize(&mut fsb, fs.evacuations.len());
    for e in &fs.evacuations {
        put_usize(&mut fsb, e.step);
        put_usize(&mut fsb, e.vm_id);
        put_usize(&mut fsb, e.from_pm);
        put_opt_usize(&mut fsb, e.to_pm);
        put_bool(&mut fsb, e.degraded);
    }
    let rec = &fs.recovery;
    put_usize(&mut fsb, rec.crashes);
    put_usize(&mut fsb, rec.recoveries);
    put_usize_slice(&mut fsb, &rec.time_to_restore);
    put_usize(&mut fsb, rec.unrestored_crashes);
    put_usize(&mut fsb, rec.stranded_vm_steps);
    put_usize(&mut fsb, rec.degraded_admissions);
    put_usize(&mut fsb, rec.degraded_violation_steps);
    w.section(SEC_FAULTSTATE, &fsb);

    let mut place = Vec::new();
    put_usize(&mut place, st.host.len());
    for &h in &st.host {
        put_opt_usize(&mut place, h);
    }
    put_usize(&mut place, st.hosted.len());
    for vs in &st.hosted {
        put_usize_slice(&mut place, vs);
    }
    // Loads are serialized field-exact, never rebuilt on load: the
    // incremental `add` fold and a fresh `rebuild` can differ by ulps,
    // and bit-identity of the resumed run hinges on these exact sums.
    put_usize(&mut place, st.loads.len());
    for l in &st.loads {
        put_usize(&mut place, l.count);
        put_f64(&mut place, l.max_re);
        put_f64(&mut place, l.sum_rb);
        put_f64(&mut place, l.sum_rp);
    }
    w.section(SEC_PLACE, &place);

    let mut dual = Vec::new();
    put_usize(&mut dual, st.dual.len());
    for &(pm, demand, left) in &st.dual {
        put_usize(&mut dual, pm);
        put_f64(&mut dual, demand);
        put_usize(&mut dual, left);
    }
    w.section(SEC_DUAL, &dual);

    let mut acct = Vec::new();
    put_usize_slice(&mut acct, &st.vio_steps);
    put_usize_slice(&mut acct, &st.active_steps);
    put_usize(&mut acct, st.migrations.len());
    for e in &st.migrations {
        put_usize(&mut acct, e.step);
        put_usize(&mut acct, e.vm_id);
        put_usize(&mut acct, e.from_pm);
        put_usize(&mut acct, e.to_pm);
    }
    put_usize(&mut acct, st.failed_migrations);
    put_usize(&mut acct, st.retried_migrations);
    let series: Vec<f64> = st.pms_used_series.points().map(|(_, v)| v).collect();
    put_f64_slice(&mut acct, &series);
    put_usize(&mut acct, st.peak_pms_used);
    put_usize(&mut acct, st.total_violation_steps);
    put_usize_slice(&mut acct, &st.vm_violation_steps);
    put_f64(&mut acct, st.energy);
    put_f64_slice(&mut acct, &st.observed);
    w.section(SEC_ACCT, &acct);

    if let Some(bytes) = rec_bytes {
        let mut rb = Vec::new();
        put_bytes(&mut rb, &bytes);
        w.section(SEC_REC, &rb);
    }

    w.finish()
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

fn bad(msg: impl Into<String>) -> FrameError {
    FrameError::Decode(msg.into())
}

fn read_opt_usize(c: &mut Cursor<'_>) -> Result<Option<usize>, FrameError> {
    let some = c.boolean()?;
    let v = c.usize()?;
    Ok(some.then_some(v))
}

fn read_usize_vec(c: &mut Cursor<'_>, want: Option<usize>) -> Result<Vec<usize>, FrameError> {
    let len = c.seq_len(8)?;
    if want.is_some_and(|w| w != len) {
        return Err(bad(format!("sequence length {len}, expected {want:?}")));
    }
    (0..len).map(|_| c.usize()).collect()
}

fn read_bool_vec(c: &mut Cursor<'_>, want: Option<usize>) -> Result<Vec<bool>, FrameError> {
    let len = c.seq_len(1)?;
    if want.is_some_and(|w| w != len) {
        return Err(bad(format!("sequence length {len}, expected {want:?}")));
    }
    (0..len).map(|_| c.boolean()).collect()
}

fn read_f64_vec(c: &mut Cursor<'_>, want: Option<usize>) -> Result<Vec<f64>, FrameError> {
    let len = c.seq_len(8)?;
    if want.is_some_and(|w| w != len) {
        return Err(bad(format!("sequence length {len}, expected {want:?}")));
    }
    (0..len).map(|_| c.f64()).collect()
}

/// Deserializes and validates a checkpoint file against `sim`,
/// returning the restored [`RunState`] and the recorder snapshot bytes
/// (when the writing run had a stateful recorder attached).
pub(crate) fn decode_state(
    sim: &Simulator<'_>,
    bytes: &[u8],
) -> Result<(RunState, Option<Vec<u8>>), CheckpointError> {
    let n = sim.vms.len();
    let m = sim.pms.len();
    let frames = parse_frames(bytes)?;
    let section = |tag: u32| -> Result<&[u8], CheckpointError> {
        frames
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.as_slice())
            .ok_or_else(|| bad(format!("missing section {tag}")).into())
    };

    let mut c = Cursor::new(section(SEC_META)?);
    let found = c.u64()?;
    c.expect_done()?;
    let expected = fingerprint(sim);
    if found != expected {
        return Err(CheckpointError::FingerprintMismatch { expected, found });
    }

    let mut c = Cursor::new(section(SEC_STEP)?);
    let next_step = c.usize()?;
    c.expect_done()?;
    if next_step == 0 || next_step >= sim.config.steps {
        return Err(bad(format!(
            "snapshot step {next_step} outside (0, {})",
            sim.config.steps
        ))
        .into());
    }

    // Core: a fresh core is built from the specs, then the evolving
    // state is grafted in. `restore_mode` performs the deep structural
    // validation of the class-aggregated counters.
    let mut c = Cursor::new(section(SEC_CORE)?);
    let on = read_bool_vec(&mut c, Some(n))?;
    let snap = match c.u8()? {
        0 => CoreSnapshot::Shared([c.u64()?, c.u64()?, c.u64()?, c.u64()?]),
        1 => CoreSnapshot::PerVm,
        2 => {
            let locs = c.seq_len(8)?;
            let mut all = Vec::with_capacity(locs);
            for _ in 0..locs {
                let cells = c.seq_len(12)?;
                all.push(
                    (0..cells)
                        .map(|_| Ok((c.u32()?, c.u32()?, c.u32()?)))
                        .collect::<Result<Vec<_>, FrameError>>()?,
                );
            }
            CoreSnapshot::ClassAggregated(all)
        }
        t => return Err(bad(format!("unknown core layout tag {t}")).into()),
    };
    c.expect_done()?;
    let mut core = WorkloadCore::new(
        sim.vms,
        m,
        sim.config.seed,
        sim.config.rng_layout,
        sim.config.threads,
    );
    core.set_class_sampler(sim.config.class_sampler == crate::config::ClassSampler::Cached);
    core.restore_mode(snap).map_err(bad)?;
    core.on.copy_from_slice(&on);

    let mut c = Cursor::new(section(SEC_FAULTPROC)?);
    let fault_process = if c.boolean()? {
        let Some(cfg) = sim.config.faults else {
            return Err(bad("snapshot has a fault process, config does not").into());
        };
        let words = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
        let domains = read_bool_vec(&mut c, None)?;
        Some(FaultProcess::restore(cfg, m, words, domains).map_err(bad)?)
    } else {
        if sim.config.faults.is_some() {
            return Err(bad("config has faults, snapshot has no fault process").into());
        }
        None
    };
    c.expect_done()?;

    let mut c = Cursor::new(section(SEC_FAULTSTATE)?);
    let pm_up = read_bool_vec(&mut c, Some(m))?;
    let vm_degraded = read_bool_vec(&mut c, Some(n))?;
    let pm_overflow = read_usize_vec(&mut c, Some(m))?;
    let len = c.seq_len(9)?;
    if len != n {
        return Err(bad(format!("crash_of_vm length {len}, fleet has {n}")).into());
    }
    let crash_of_vm = (0..n)
        .map(|_| read_opt_usize(&mut c))
        .collect::<Result<Vec<_>, _>>()?;
    let crash_records = (0..c.seq_len(24)?)
        .map(|_| {
            Ok(CrashRecord {
                pm: c.usize()?,
                step: c.usize()?,
                pending: c.usize()?,
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    let retry_queue = (0..c.seq_len(25)?)
        .map(|_| {
            Ok(RetryEntry {
                vm: c.usize()?,
                kind: match c.u8()? {
                    0 => RetryKind::Overload,
                    1 => RetryKind::Evacuation,
                    t => return Err(bad(format!("unknown retry kind {t}"))),
                },
                attempts: c.usize()?,
                next_step: c.usize()?,
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    let fault_events = (0..c.seq_len(17)?)
        .map(|_| {
            Ok(FaultEvent {
                step: c.usize()?,
                pm: c.usize()?,
                kind: match c.u8()? {
                    0 => FaultKind::Crash,
                    1 => FaultKind::Recovery,
                    t => return Err(bad(format!("unknown fault kind {t}"))),
                },
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    let evacuations = (0..c.seq_len(34)?)
        .map(|_| {
            Ok(EvacuationEvent {
                step: c.usize()?,
                vm_id: c.usize()?,
                from_pm: c.usize()?,
                to_pm: read_opt_usize(&mut c)?,
                degraded: c.boolean()?,
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    let recovery = RecoveryStats {
        crashes: c.usize()?,
        recoveries: c.usize()?,
        time_to_restore: read_usize_vec(&mut c, None)?,
        unrestored_crashes: c.usize()?,
        stranded_vm_steps: c.usize()?,
        degraded_admissions: c.usize()?,
        degraded_violation_steps: c.usize()?,
    };
    c.expect_done()?;

    // Structural validation of the fault state before trusting it.
    let mut in_retry = vec![false; n];
    for e in &retry_queue {
        if e.vm >= n {
            return Err(bad(format!("retry entry for VM {} out of range", e.vm)).into());
        }
        if in_retry[e.vm] {
            return Err(bad(format!("VM {} queued twice for retry", e.vm)).into());
        }
        in_retry[e.vm] = true;
    }
    for r in &crash_records {
        if r.pm >= m {
            return Err(bad(format!("crash record for PM {} out of range", r.pm)).into());
        }
    }
    for (i, c) in crash_of_vm.iter().enumerate() {
        if let Some(r) = c {
            if *r >= crash_records.len() {
                return Err(bad(format!("VM {i} points at crash record {r} out of range")).into());
            }
        }
    }

    let mut c = Cursor::new(section(SEC_PLACE)?);
    let len = c.seq_len(9)?;
    if len != n {
        return Err(bad(format!("host length {len}, fleet has {n}")).into());
    }
    let host = (0..n)
        .map(|_| read_opt_usize(&mut c))
        .collect::<Result<Vec<_>, _>>()?;
    let len = c.seq_len(8)?;
    if len != m {
        return Err(bad(format!("hosted length {len}, pool has {m}")).into());
    }
    let hosted = (0..m)
        .map(|_| read_usize_vec(&mut c, None))
        .collect::<Result<Vec<_>, _>>()?;
    let len = c.seq_len(32)?;
    if len != m {
        return Err(bad(format!("loads length {len}, pool has {m}")).into());
    }
    let loads = (0..m)
        .map(|_| {
            Ok(PmLoad {
                count: c.usize()?,
                max_re: c.f64()?,
                sum_rb: c.f64()?,
                sum_rp: c.f64()?,
            })
        })
        .collect::<Result<Vec<PmLoad>, FrameError>>()?;
    c.expect_done()?;

    // host and hosted must be exact inverses — including the order of
    // each hosted list, which victim tie-breaking depends on.
    let mut seen = vec![false; n];
    for (j, vs) in hosted.iter().enumerate() {
        for &i in vs {
            if i >= n {
                return Err(bad(format!("hosted VM {i} out of range")).into());
            }
            if seen[i] {
                return Err(bad(format!("VM {i} hosted twice")).into());
            }
            seen[i] = true;
            if host[i] != Some(j) {
                return Err(
                    bad(format!("VM {i} hosted on {j} but host says {:?}", host[i])).into(),
                );
            }
        }
        if loads[j].count != vs.len() {
            return Err(bad(format!(
                "PM {j} load counts {} VMs, hosted list has {}",
                loads[j].count,
                vs.len()
            ))
            .into());
        }
    }
    for (i, h) in host.iter().enumerate() {
        match h {
            Some(j) if *j >= m => {
                return Err(bad(format!("VM {i} hosted on PM {j} out of range")).into())
            }
            Some(_) if !seen[i] => {
                return Err(bad(format!("VM {i} hosted but missing from hosted list")).into())
            }
            _ => {}
        }
    }

    let mut c = Cursor::new(section(SEC_DUAL)?);
    let dual = (0..c.seq_len(24)?)
        .map(|_| Ok((c.usize()?, c.f64()?, c.usize()?)))
        .collect::<Result<Vec<_>, FrameError>>()?;
    c.expect_done()?;

    let mut c = Cursor::new(section(SEC_ACCT)?);
    let vio_steps = read_usize_vec(&mut c, Some(m))?;
    let active_steps = read_usize_vec(&mut c, Some(m))?;
    let migrations = (0..c.seq_len(32)?)
        .map(|_| {
            Ok(MigrationEvent {
                step: c.usize()?,
                vm_id: c.usize()?,
                from_pm: c.usize()?,
                to_pm: c.usize()?,
            })
        })
        .collect::<Result<Vec<_>, FrameError>>()?;
    let failed_migrations = c.usize()?;
    let retried_migrations = c.usize()?;
    let series = read_f64_vec(&mut c, Some(next_step))?;
    let peak_pms_used = c.usize()?;
    let total_violation_steps = c.usize()?;
    let vm_violation_steps = read_usize_vec(&mut c, Some(n))?;
    let energy = c.f64()?;
    let observed = read_f64_vec(&mut c, Some(m))?;
    c.expect_done()?;

    let mut pms_used_series = TimeSeries::new(0.0, sim.config.sigma_secs);
    for v in series {
        pms_used_series.push(v);
    }

    let rec_bytes = match frames.iter().find(|(t, _)| *t == SEC_REC) {
        None => None,
        Some((_, payload)) => {
            let mut c = Cursor::new(payload);
            let bytes = c.bytes()?.to_vec();
            c.expect_done()?;
            Some(bytes)
        }
    };

    Ok((
        RunState {
            core,
            fault_process,
            host,
            hosted,
            loads,
            fs: FaultState {
                pm_up,
                vm_degraded,
                pm_overflow,
                crash_of_vm,
                crash_records,
                retry_queue,
                in_retry,
                fault_events,
                evacuations,
                recovery,
            },
            dual,
            vio_steps,
            active_steps,
            migrations,
            failed_migrations,
            retried_migrations,
            pms_used_series,
            peak_pms_used,
            total_violation_steps,
            vm_violation_steps,
            energy,
            observed,
            next_step,
        },
        rec_bytes,
    ))
}

// ---------------------------------------------------------------------
// The checkpointer.
// ---------------------------------------------------------------------

/// The [`StepHook`] that persists snapshots: every
/// [`CheckpointConfig::every`] completed steps it serializes the
/// [`RunState`] (and the recorder, when stateful), writes it
/// atomically, and rotates old files down to
/// [`CheckpointConfig::keep`]. Write failures are recorded in
/// [`Checkpointer::save_errors`] and never interrupt the run.
pub struct Checkpointer<S: Store> {
    store: S,
    every: usize,
    keep: usize,
    saves: usize,
    save_errors: Vec<(usize, String)>,
}

impl<S: Store> Checkpointer<S> {
    /// Wraps `store` with the given cadence and retention.
    pub fn new(store: S, cfg: &CheckpointConfig) -> Self {
        Self {
            store,
            every: cfg.every,
            keep: cfg.keep,
            saves: 0,
            save_errors: Vec::new(),
        }
    }

    /// File name of the snapshot taken after `step` completed steps.
    fn name_of(step: usize) -> String {
        format!("ckpt-{step:0STEP_DIGITS$}")
    }

    /// Parses a file name produced by [`Self::name_of`].
    fn step_of(name: &str) -> Option<usize> {
        let digits = name.strip_prefix("ckpt-")?;
        if digits.len() != STEP_DIGITS {
            return None;
        }
        digits.parse().ok()
    }

    /// Snapshot file names in the store, sorted ascending by step.
    fn snapshot_names(&self) -> std::io::Result<Vec<String>> {
        let mut names: Vec<String> = self
            .store
            .list()?
            .into_iter()
            .filter(|n| Self::step_of(n).is_some())
            .collect();
        names.sort();
        Ok(names)
    }

    fn save<R: Recorder>(&mut self, sim: &Simulator<'_>, st: &RunState, rec: &R) {
        let bytes = encode_state(sim, st, rec.snapshot_bytes());
        match self
            .store
            .write_atomic(&Self::name_of(st.next_step), &bytes)
        {
            Ok(()) => {
                self.saves += 1;
                self.rotate();
            }
            Err(e) => self.save_errors.push((st.next_step, e.to_string())),
        }
    }

    /// Deletes all but the newest [`Self::keep`] snapshots. Rotation
    /// failures are tolerated like save failures: extra files cost
    /// disk, never correctness.
    fn rotate(&mut self) {
        let Ok(names) = self.snapshot_names() else {
            return;
        };
        let excess = names.len().saturating_sub(self.keep);
        for name in &names[..excess] {
            let _ = self.store.remove(name);
        }
    }

    /// Walks the retained snapshots newest-first and returns the first
    /// that verifies in full against `sim`, alongside the recorder
    /// bytes it carried and the report of everything discarded.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the store cannot be listed;
    /// [`CheckpointError::NoUsableCheckpoint`] when every retained file
    /// fails verification (each with its reason).
    pub(crate) fn load_latest(
        &self,
        sim: &Simulator<'_>,
    ) -> Result<(RunState, Option<Vec<u8>>, RecoveryReport), CheckpointError> {
        let names = self.snapshot_names()?;
        let mut discarded: Vec<(String, String)> = Vec::new();
        for name in names.into_iter().rev() {
            let verdict = self
                .store
                .read(&name)
                .map_err(CheckpointError::from)
                .and_then(|bytes| decode_state(sim, &bytes));
            match verdict {
                Ok((st, rec_bytes)) => {
                    let report = RecoveryReport {
                        loaded: name,
                        step: st.next_step,
                        discarded,
                    };
                    return Ok((st, rec_bytes, report));
                }
                Err(e) => discarded.push((name, e.to_string())),
            }
        }
        Err(CheckpointError::NoUsableCheckpoint { discarded })
    }

    /// The store back, for inspection.
    pub fn into_store(self) -> S {
        self.store
    }
}

impl<S: Store> StepHook for Checkpointer<S> {
    fn after_step<R: Recorder>(&mut self, sim: &Simulator<'_>, st: &RunState, rec: &R) {
        // `next_step` has already been advanced: it equals the number
        // of completed steps. The final step needs no snapshot — the
        // run is finishing anyway.
        if st.next_step.is_multiple_of(self.every) && st.next_step < sim.config.steps {
            self.save(sim, st, rec);
        }
    }
}

// ---------------------------------------------------------------------
// Simulator entry points.
// ---------------------------------------------------------------------

impl Simulator<'_> {
    /// [`run_recorded`](Simulator::run_recorded) with durable
    /// checkpoints: a snapshot lands in `store` every
    /// [`CheckpointConfig::every`] completed steps. The outcome is
    /// `f64::to_bits`-identical to an uncheckpointed run — snapshots
    /// observe the state, never perturb it — and save failures are
    /// tolerated (surfaced in [`CheckpointedRun::save_errors`]).
    ///
    /// Call [`CheckpointConfig::validate`] first to reject bad knobs
    /// as typed errors; this method asserts only `every > 0`.
    pub fn run_with_checkpoints<S: Store, R: Recorder>(
        &self,
        initial: &Placement,
        cfg: &CheckpointConfig,
        store: S,
        rec: &mut R,
    ) -> CheckpointedRun {
        assert!(cfg.every > 0, "checkpoint interval must be positive");
        let st = self.init_state(initial);
        let mut ck = Checkpointer::new(store, cfg);
        let outcome = self.run_from(st, rec, &mut ck);
        CheckpointedRun {
            outcome,
            saves: ck.saves,
            save_errors: ck.save_errors,
        }
    }

    /// Resumes from the newest verifying snapshot in `store` and runs
    /// to the horizon, continuing to checkpoint on the way. The
    /// recorder is restored from the snapshot when both sides support
    /// it ([`Recorder::restore_from_snapshot`]), so journaled events
    /// are neither lost nor duplicated across the seam.
    ///
    /// The snapshot fingerprint covers the config, power model, and
    /// fleet — but not the runtime policy, which is a trait object the
    /// engine cannot hash. Resuming under a different policy than the
    /// one that wrote the snapshot silently changes the remainder of
    /// the run; keeping the policy identical is the caller's contract.
    ///
    /// # Errors
    /// [`CheckpointError`] when the store is unreadable or no retained
    /// snapshot verifies; the report inside
    /// [`CheckpointError::NoUsableCheckpoint`] lists every discard.
    pub fn resume_with_checkpoints<S: Store, R: Recorder>(
        &self,
        cfg: &CheckpointConfig,
        store: S,
        rec: &mut R,
    ) -> Result<(CheckpointedRun, RecoveryReport), CheckpointError> {
        assert!(cfg.every > 0, "checkpoint interval must be positive");
        let mut ck = Checkpointer::new(store, cfg);
        let (st, rec_bytes, report) = ck.load_latest(self)?;
        if let Some(bytes) = rec_bytes {
            rec.restore_from_snapshot(&bytes);
        }
        let outcome = self.run_from(st, rec, &mut ck);
        Ok((
            CheckpointedRun {
                outcome,
                saves: ck.saves,
                save_errors: ck.save_errors,
            },
            report,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::faults::FaultConfig;
    use crate::policy::QueuePolicy;
    use bursty_obs::durable::{FailingStore, MemStore};
    use bursty_obs::{MemoryRecorder, NoopRecorder};
    use bursty_placement::{first_fit, QueueStrategy};
    use bursty_workload::{PmSpec, VmSpec};

    fn fleet() -> (Vec<VmSpec>, Vec<PmSpec>) {
        let vms = (0..30)
            .map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0))
            .collect();
        let pms = (0..30).map(|j| PmSpec::new(j, 100.0)).collect();
        (vms, pms)
    }

    fn config() -> SimConfig {
        SimConfig {
            steps: 60,
            seed: 7,
            faults: Some(FaultConfig {
                mtbf_steps: 25.0,
                mttr_steps: 6.0,
                correlated_group_size: 2,
                seed: 3,
            }),
            ..SimConfig::default()
        }
    }

    fn knobs(every: usize, keep: usize) -> CheckpointConfig {
        CheckpointConfig {
            every,
            keep,
            dir: std::path::PathBuf::new(), // unused with an explicit store
        }
    }

    #[track_caller]
    pub(crate) fn assert_same_outcome(a: &SimOutcome, b: &SimOutcome) {
        assert_eq!(a.energy_joules.to_bits(), b.energy_joules.to_bits());
        assert_eq!(a.cvr_per_pm.len(), b.cvr_per_pm.len());
        for ((ja, ca), (jb, cb)) in a.cvr_per_pm.iter().zip(&b.cvr_per_pm) {
            assert_eq!(ja, jb);
            assert_eq!(ca.to_bits(), cb.to_bits());
        }
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.failed_migrations, b.failed_migrations);
        assert_eq!(a.retried_migrations, b.retried_migrations);
        assert_eq!(a.final_pms_used, b.final_pms_used);
        assert_eq!(a.peak_pms_used, b.peak_pms_used);
        assert_eq!(a.total_violation_steps, b.total_violation_steps);
        assert_eq!(a.vm_violation_steps, b.vm_violation_steps);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.evacuations, b.evacuations);
        assert_eq!(a.recovery, b.recovery);
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_resume_matches_both() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let baseline = sim.run(&placement);
        let run = sim.run_with_checkpoints(
            &placement,
            &knobs(10, 2),
            MemStore::new(),
            &mut NoopRecorder,
        );
        assert_same_outcome(&baseline, &run.outcome);
        assert_eq!(run.saves, 5, "steps 10..=50 each snapshot");
        assert!(run.save_errors.is_empty());

        // Re-run keeping the store, then resume from its newest file:
        // the tail re-executes and the outcome is identical again.
        let mut store = MemStore::new();
        sim.run_with_checkpoints(&placement, &knobs(10, 2), &mut store, &mut NoopRecorder);
        let (resumed, report) = sim
            .resume_with_checkpoints(&knobs(10, 2), store, &mut NoopRecorder)
            .unwrap();
        assert_eq!(report.step, 50);
        assert_eq!(report.loaded, "ckpt-000000000050");
        assert!(report.discarded.is_empty());
        assert_same_outcome(&baseline, &resumed.outcome);
    }

    #[test]
    fn recorder_travels_through_the_checkpoint() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let mut full = MemoryRecorder::new(4096);
        sim.run_recorded(&placement, &mut full);

        let mut store = MemStore::new();
        let mut rec = MemoryRecorder::new(4096);
        sim.run_with_checkpoints(&placement, &knobs(15, 3), &mut store, &mut rec);
        let mut resumed = MemoryRecorder::new(4096);
        sim.resume_with_checkpoints(&knobs(15, 3), store, &mut resumed)
            .unwrap();
        // Events before the snapshot come from the restored journal,
        // events after from the re-run tail — the journal is exactly
        // the uninterrupted run's, neither losing nor duplicating.
        assert_eq!(full.to_jsonl(), resumed.to_jsonl());
    }

    #[test]
    fn rotation_keeps_only_the_newest_snapshots() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let mut store = MemStore::new();
        sim.run_with_checkpoints(&placement, &knobs(10, 2), &mut store, &mut NoopRecorder);
        let names = store.list().unwrap();
        assert_eq!(names, vec!["ckpt-000000000040", "ckpt-000000000050"]);
    }

    #[test]
    fn fingerprint_rejects_a_different_experiment() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let mut store = MemStore::new();
        sim.run_with_checkpoints(&placement, &knobs(10, 2), &mut store, &mut NoopRecorder);

        let other = Simulator::new(
            &vms,
            &pms,
            &policy,
            SimConfig {
                seed: 8,
                ..config()
            },
        );
        let err = other
            .resume_with_checkpoints(&knobs(10, 2), store, &mut NoopRecorder)
            .unwrap_err();
        let CheckpointError::NoUsableCheckpoint { discarded } = err else {
            panic!("want NoUsableCheckpoint");
        };
        assert_eq!(discarded.len(), 2);
        assert!(discarded[0].1.contains("different experiment"));
    }

    #[test]
    fn save_failures_are_tolerated_and_reported() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let baseline = sim.run(&placement);
        // Every write's rename fails: zero snapshots land, every save
        // is reported, and the outcome is untouched.
        let store = FailingStore::new(MemStore::new(), 1, 0, 255, 0);
        let run = sim.run_with_checkpoints(&placement, &knobs(10, 2), store, &mut NoopRecorder);
        assert_same_outcome(&baseline, &run.outcome);
        assert_eq!(run.saves + run.save_errors.len(), 5);
        assert!(!run.save_errors.is_empty());
    }

    #[test]
    fn corrupted_newest_falls_back_to_older_snapshot() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());

        let baseline = sim.run(&placement);
        let mut store = MemStore::new();
        sim.run_with_checkpoints(&placement, &knobs(10, 2), &mut store, &mut NoopRecorder);
        // Flip one bit in the newest snapshot.
        let newest = store.file_mut("ckpt-000000000050").unwrap();
        let mid = newest.len() / 2;
        newest[mid] ^= 0x10;
        let (resumed, report) = sim
            .resume_with_checkpoints(&knobs(10, 2), store, &mut NoopRecorder)
            .unwrap();
        assert_eq!(report.loaded, "ckpt-000000000040");
        assert_eq!(report.discarded.len(), 1);
        assert_eq!(report.discarded[0].0, "ckpt-000000000050");
        assert_same_outcome(&baseline, &resumed.outcome);
    }

    #[test]
    fn empty_store_is_a_typed_error() {
        let (vms, pms) = fleet();
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config());
        let err = sim
            .resume_with_checkpoints(&knobs(10, 2), MemStore::new(), &mut NoopRecorder)
            .unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::NoUsableCheckpoint { ref discarded } if discarded.is_empty()
        ));
    }

    #[test]
    fn file_names_round_trip_and_sort_by_step() {
        type Ck = Checkpointer<MemStore>;
        assert_eq!(Ck::name_of(50), "ckpt-000000000050");
        assert_eq!(Ck::step_of("ckpt-000000000050"), Some(50));
        assert_eq!(Ck::step_of("ckpt-50"), None);
        assert_eq!(Ck::step_of("other"), None);
        assert!(Ck::name_of(99) < Ck::name_of(100));
    }
}
