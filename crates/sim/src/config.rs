//! Simulation configuration.

/// How the migration controller picks which VM to evict from an
/// overloaded PM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// The ON VM with the largest current demand — sheds the most load
    /// per migration (the default, used in all paper-figure experiments).
    #[default]
    LargestOnDemand,
    /// The *smallest* ON VM whose departure still clears the current
    /// overload — minimizes the demand in flight per migration (and, with
    /// demand a proxy for memory, the pre-copy cost). Falls back to the
    /// largest ON demand when no single VM suffices.
    SmallestSufficient,
    /// The VM with the smallest base demand — cheapest tenant to move
    /// regardless of its instantaneous state.
    SmallestBase,
}

/// Parameters of one simulation run. Defaults mirror the paper's §V-D
/// setup: `σ = 30 s` update period, an evaluation period of `100 σ`,
/// `ρ = 0.01`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of update periods to simulate.
    pub steps: usize,
    /// Wall-clock seconds per update period (`σ`). Only affects
    /// energy/time reporting, not the dynamics.
    pub sigma_secs: f64,
    /// CVR threshold `ρ`: a PM whose running violation ratio exceeds this
    /// triggers a live migration (when migration is enabled).
    pub rho: f64,
    /// RNG seed; identical configs and seeds reproduce bit-identical runs.
    pub seed: u64,
    /// Whether the live-migration controller is active (§V-D) or the
    /// system relies on local resizing alone (§V-C).
    pub migrations_enabled: bool,
    /// Update periods during which a migrating VM is accounted on *both*
    /// PMs (live-migration copy overhead). 0 = instantaneous moves.
    pub dual_count_steps: usize,
    /// Which VM an overloaded PM evicts.
    pub victim_policy: VictimPolicy,
    /// CUSUM-style allowance on the migration trigger: a PM migrates only
    /// once its violation count exceeds `ρ · observations + allowance`.
    /// The raw running ratio `violations / observations` sits above `ρ`
    /// after a single violation for the first `1/ρ` periods of a run, so
    /// comparing it to `ρ` directly evicts VMs from plan-compliant PMs on
    /// pure startup noise. With an allowance of `c`, a compliant PM
    /// (violation rate ≤ ρ) crosses the threshold with probability
    /// exponentially small in `c`, while a PM violating at rate `p > ρ`
    /// still triggers within about `c / (p − ρ)` periods.
    pub violation_allowance: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            steps: 100,
            sigma_secs: 30.0,
            rho: 0.01,
            seed: 0,
            migrations_enabled: true,
            dual_count_steps: 0,
            victim_policy: VictimPolicy::default(),
            violation_allowance: 5.0,
        }
    }
}

impl SimConfig {
    /// Validates field ranges.
    ///
    /// # Panics
    /// Panics on `steps == 0`, non-positive `sigma_secs`, `rho ∉ (0,1)`,
    /// or a negative `violation_allowance`.
    pub fn validate(&self) {
        assert!(self.steps > 0, "steps must be positive");
        assert!(self.sigma_secs > 0.0, "sigma must be positive");
        assert!(self.rho > 0.0 && self.rho < 1.0, "rho must be in (0,1)");
        assert!(
            self.violation_allowance >= 0.0,
            "violation allowance must be nonnegative"
        );
    }

    /// Total simulated wall-clock time in seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.steps as f64 * self.sigma_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.steps, 100);
        assert_eq!(c.sigma_secs, 30.0);
        assert_eq!(c.rho, 0.01);
        assert!(c.migrations_enabled);
        assert_eq!(c.horizon_secs(), 3000.0);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "steps")]
    fn zero_steps_invalid() {
        SimConfig {
            steps: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn bad_rho_invalid() {
        SimConfig {
            rho: 1.0,
            ..Default::default()
        }
        .validate();
    }
}
