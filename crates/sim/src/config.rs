//! Simulation configuration.

use crate::faults::FaultConfig;
use std::fmt;

/// How the migration controller picks which VM to evict from an
/// overloaded PM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimPolicy {
    /// The ON VM with the largest current demand — sheds the most load
    /// per migration (the default, used in all paper-figure experiments).
    #[default]
    LargestOnDemand,
    /// The *smallest* ON VM whose departure still clears the current
    /// overload — minimizes the demand in flight per migration (and, with
    /// demand a proxy for memory, the pre-copy cost). Falls back to the
    /// largest ON demand when no single VM suffices.
    SmallestSufficient,
    /// The VM with the smallest base demand — cheapest tenant to move
    /// regardless of its instantaneous state.
    SmallestBase,
}

/// How the engine assigns random-number streams to VM workload chains.
///
/// The layout is part of the *scientific configuration*: it selects which
/// sample path a seed produces, not just how fast the engine runs. Results
/// under either layout are drawn from exactly the same ON-OFF process —
/// only the pairing of seeds to sample paths differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RngLayout {
    /// One serial generator shared by every VM, consumed in VM order each
    /// step — bit-identical to the engine as it existed before layouts
    /// were introduced (frozen by `sim/tests/golden.rs`). Inherently
    /// sequential: [`SimConfig::threads`] is ignored.
    #[default]
    Shared,
    /// One independent counter-based stream per VM, derived from
    /// `(seed, vm index, step)`. Draws are position-addressable, so the
    /// per-step evolution is embarrassingly parallel and the outcome is
    /// `f64::to_bits`-identical for *any* thread count. Sample paths
    /// differ from [`RngLayout::Shared`] for the same seed (different
    /// stream pairing), but their distribution is identical.
    PerVm,
    /// Class-aggregated evolution: one ON-counter per `(PM, VM class)`
    /// cell, stepped with two counter-based binomial draws
    /// (`ON→OFF ~ B(n_on, p_off)`, `OFF→ON ~ B(n_off, p_on)`) keyed on
    /// `(seed, pm, class, step)` — the superposition argument behind the
    /// closed-form MapCal stationary, applied to the hot loop. Per-PM
    /// demand is `counter × class demand`, so the per-step cost scales
    /// with the number of occupied cells, not the fleet size. Outcomes
    /// are `f64::to_bits`-identical for any thread count and invariant
    /// under class enumeration order, but individual VMs no longer own
    /// sample paths: agreement with [`RngLayout::PerVm`] is
    /// *distributional* (same per-PM ON-count law, CVR and energy within
    /// certified Wilson intervals), never bit-exact.
    ClassAggregated,
}

/// Which binomial sampler the class-aggregated hot loop inverts its
/// uniforms through. **Not** part of the scientific configuration: both
/// samplers produce `to_bits`-identical draws (the memoized tables
/// store the exact partial sums of the walk — DESIGN.md §8), so this
/// knob — like [`SimConfig::threads`] — selects throughput, never the
/// sample path, and is excluded from the checkpoint fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClassSampler {
    /// Memoized per-`(n, p)` CDF tables with guide-table lookup —
    /// O(1) expected per draw (the default).
    #[default]
    Cached,
    /// The plain pmf-recurrence inverse-CDF walk — O(E[X] + 1) per
    /// draw. Kept addressable so the two kernels stay benchable
    /// against each other.
    Walk,
}

/// A structurally invalid [`SimConfig`], [`FaultConfig`], or
/// [`CheckpointConfig`], detected before the run instead of surfacing
/// as NaN CVRs, empty outcomes, or a checkpoint directory that turns
/// out unwritable only after hours of simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `steps == 0`: the run would observe nothing.
    ZeroSteps,
    /// `sigma_secs ≤ 0` (or NaN): time cannot stand still or run backward.
    NonPositiveSigma(f64),
    /// `rho ∉ (0, 1)`: the CVR budget is a proper probability.
    RhoOutOfRange(f64),
    /// `violation_allowance < 0` (or NaN).
    NegativeAllowance(f64),
    /// `retry_base_steps == 0`: exponential backoff needs a positive base.
    ZeroRetryBase,
    /// `degraded_epsilon < 0` (or NaN): the overflow margin cannot shrink
    /// capacity.
    NegativeEpsilon(f64),
    /// `mtbf_steps < 1` (or NaN): a PM cannot fail more than once a step.
    FaultMtbfOutOfRange(f64),
    /// `mttr_steps < 1` (or NaN): repairs take at least one step.
    FaultMttrOutOfRange(f64),
    /// `correlated_group_size == 0`: fault domains contain at least one PM.
    ZeroFaultGroup,
    /// `CheckpointConfig::every == 0`: a snapshot interval of zero would
    /// checkpoint before any step completes.
    ZeroCheckpointInterval,
    /// `CheckpointConfig::every ≥ steps`: the first snapshot would land
    /// at or past the horizon, so the run could never resume.
    CheckpointIntervalBeyondHorizon {
        /// The configured snapshot interval.
        every: usize,
        /// The run's step horizon.
        steps: usize,
    },
    /// `CheckpointConfig::keep == 0`: rotation must retain at least one
    /// snapshot or every save would immediately delete itself.
    ZeroCheckpointKeep,
    /// The checkpoint directory could not be created or probed for
    /// writability; carries the offending path and the OS error text.
    CheckpointDirUnwritable {
        /// The directory that rejected the write probe.
        path: String,
        /// The underlying OS error, stringified.
        cause: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroSteps => write!(f, "steps must be positive"),
            Self::NonPositiveSigma(s) => write!(f, "sigma must be positive, got {s}"),
            Self::RhoOutOfRange(r) => write!(f, "rho must be in (0,1), got {r}"),
            Self::NegativeAllowance(a) => {
                write!(f, "violation allowance must be nonnegative, got {a}")
            }
            Self::ZeroRetryBase => write!(f, "retry_base_steps must be positive"),
            Self::NegativeEpsilon(e) => {
                write!(f, "degraded_epsilon must be nonnegative, got {e}")
            }
            Self::FaultMtbfOutOfRange(m) => {
                write!(f, "mtbf_steps must be at least 1, got {m}")
            }
            Self::FaultMttrOutOfRange(m) => {
                write!(f, "mttr_steps must be at least 1, got {m}")
            }
            Self::ZeroFaultGroup => write!(f, "correlated_group_size must be at least 1"),
            Self::ZeroCheckpointInterval => {
                write!(f, "checkpoint interval must be positive")
            }
            Self::CheckpointIntervalBeyondHorizon { every, steps } => write!(
                f,
                "checkpoint interval {every} is not below the {steps}-step horizon; \
                 the first snapshot would never be taken"
            ),
            Self::ZeroCheckpointKeep => {
                write!(f, "checkpoint rotation must keep at least 1 snapshot")
            }
            Self::CheckpointDirUnwritable { path, cause } => {
                write!(f, "checkpoint directory {path:?} is not writable: {cause}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Durable-checkpoint knobs of a run (DESIGN.md §11). Deliberately a
/// separate struct from [`SimConfig`] (which stays `Copy`): snapshots
/// are an I/O concern layered onto the engine, not part of the
/// scientific configuration — the compatibility fingerprint embedded
/// in every snapshot hashes the simulation parameters and fleet only,
/// never these knobs, so resuming with a different interval, retention
/// count, or directory is always legal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Take a snapshot after every `every` completed steps. Must be
    /// positive and below [`SimConfig::steps`] (a snapshot at or past
    /// the horizon would never be written — the run finishes first).
    pub every: usize,
    /// Rotation depth: the newest `keep` snapshots are retained, older
    /// ones deleted after each successful save. Must be at least 1;
    /// values above 1 buy resilience against a torn newest file.
    pub keep: usize,
    /// Directory the snapshot files live in; created on demand.
    pub dir: std::path::PathBuf,
}

impl CheckpointConfig {
    /// A snapshot every `every` steps into `dir`, keeping the newest 2
    /// (one deep enough to survive a torn newest file).
    pub fn new(every: usize, dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            every,
            keep: 2,
            dir: dir.into(),
        }
    }

    /// Validates the knobs against the run's `steps` horizon, probing
    /// the directory for writability (creating it if absent) so an
    /// unwritable volume is a typed error *before* the run, not a
    /// string of failed saves hours in.
    ///
    /// # Errors
    /// [`ConfigError`] on a zero interval, an interval at or past the
    /// horizon, a zero retention count, or a directory that cannot be
    /// created or written (the probe file is removed on success).
    pub fn validate(&self, steps: usize) -> Result<(), ConfigError> {
        if self.every == 0 {
            return Err(ConfigError::ZeroCheckpointInterval);
        }
        if self.every >= steps {
            return Err(ConfigError::CheckpointIntervalBeyondHorizon {
                every: self.every,
                steps,
            });
        }
        if self.keep == 0 {
            return Err(ConfigError::ZeroCheckpointKeep);
        }
        let unwritable = |cause: std::io::Error| ConfigError::CheckpointDirUnwritable {
            path: self.dir.display().to_string(),
            cause: cause.to_string(),
        };
        std::fs::create_dir_all(&self.dir).map_err(unwritable)?;
        let probe = self.dir.join(".bckp-probe");
        std::fs::write(&probe, b"probe").map_err(unwritable)?;
        std::fs::remove_file(&probe).map_err(unwritable)?;
        Ok(())
    }
}

/// Parameters of one simulation run. Defaults mirror the paper's §V-D
/// setup: `σ = 30 s` update period, an evaluation period of `100 σ`,
/// `ρ = 0.01`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of update periods to simulate.
    pub steps: usize,
    /// Wall-clock seconds per update period (`σ`). Only affects
    /// energy/time reporting, not the dynamics.
    pub sigma_secs: f64,
    /// CVR threshold `ρ`: a PM whose running violation ratio exceeds this
    /// triggers a live migration (when migration is enabled).
    pub rho: f64,
    /// RNG seed; identical configs and seeds reproduce bit-identical runs.
    pub seed: u64,
    /// Whether the live-migration controller is active (§V-D) or the
    /// system relies on local resizing alone (§V-C).
    pub migrations_enabled: bool,
    /// Update periods during which a migrating VM is accounted on *both*
    /// PMs (live-migration copy overhead). 0 = instantaneous moves.
    pub dual_count_steps: usize,
    /// Which VM an overloaded PM evicts.
    pub victim_policy: VictimPolicy,
    /// CUSUM-style allowance on the migration trigger: a PM migrates only
    /// once its violation count exceeds `ρ · observations + allowance`.
    /// The raw running ratio `violations / observations` sits above `ρ`
    /// after a single violation for the first `1/ρ` periods of a run, so
    /// comparing it to `ρ` directly evicts VMs from plan-compliant PMs on
    /// pure startup noise. With an allowance of `c`, a compliant PM
    /// (violation rate ≤ ρ) crosses the threshold with probability
    /// exponentially small in `c`, while a PM violating at rate `p > ρ`
    /// still triggers within about `c / (p − ρ)` periods.
    pub violation_allowance: f64,
    /// Base delay (in steps) of the migration retry queue: attempt `a`
    /// of a deferred placement waits `retry_base_steps · 2^a` steps.
    pub retry_base_steps: usize,
    /// Retry budget. For overload migrations the entry is abandoned after
    /// this many failed re-attempts (the trigger re-detects a persisting
    /// overload anyway); for crash evacuations the *backoff exponent*
    /// saturates here but the entry stays queued — a displaced VM is
    /// never silently dropped. `0` disables retrying entirely.
    pub max_retries: usize,
    /// Overflow margin `ε` of degraded-mode admission: when a displaced VM
    /// fits nowhere under the active policy, admission is re-tried with
    /// every capacity inflated to `(1 + ε)·C` before the VM is queued.
    /// Violations on a PM hosting such an overflow admission are tagged
    /// degraded, not burstiness. Only exercised by the fault path.
    pub degraded_epsilon: f64,
    /// PM crash/recovery model; `None` (the default) reproduces the
    /// fault-free engine bit for bit.
    pub faults: Option<FaultConfig>,
    /// How workload RNG streams are laid out across VMs. The default
    /// [`RngLayout::Shared`] preserves the historical serial stream;
    /// [`RngLayout::PerVm`] enables deterministic parallel evolution;
    /// [`RngLayout::ClassAggregated`] collapses same-class VMs on a PM
    /// into binomial counter cells for class-heavy fleets at scale.
    pub rng_layout: RngLayout,
    /// Worker threads for the [`RngLayout::PerVm`] and
    /// [`RngLayout::ClassAggregated`] hot paths. `0` means "use the
    /// machine's available parallelism". Ignored under
    /// [`RngLayout::Shared`], and forced to 1 inside
    /// [`crate::replicate_seeds`] workers (replication-level parallelism
    /// already owns the cores). Any value yields bit-identical outcomes.
    pub threads: usize,
    /// Binomial sampler of the [`RngLayout::ClassAggregated`] hot loop.
    /// Like `threads`, purely a throughput knob: both samplers draw
    /// bit-identical values.
    pub class_sampler: ClassSampler,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            steps: 100,
            sigma_secs: 30.0,
            rho: 0.01,
            seed: 0,
            migrations_enabled: true,
            dual_count_steps: 0,
            victim_policy: VictimPolicy::default(),
            violation_allowance: 5.0,
            retry_base_steps: 2,
            max_retries: 5,
            degraded_epsilon: 0.1,
            faults: None,
            rng_layout: RngLayout::default(),
            threads: 1,
            class_sampler: ClassSampler::default(),
        }
    }
}

impl SimConfig {
    /// Validates field ranges, returning the first violation found.
    ///
    /// # Errors
    /// [`ConfigError`] on `steps == 0`, non-positive `sigma_secs`,
    /// `rho ∉ (0,1)`, a negative `violation_allowance` or
    /// `degraded_epsilon`, `retry_base_steps == 0`, or an invalid
    /// [`FaultConfig`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.steps == 0 {
            return Err(ConfigError::ZeroSteps);
        }
        if self.sigma_secs.is_nan() || self.sigma_secs <= 0.0 {
            return Err(ConfigError::NonPositiveSigma(self.sigma_secs));
        }
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(ConfigError::RhoOutOfRange(self.rho));
        }
        if self.violation_allowance.is_nan() || self.violation_allowance < 0.0 {
            return Err(ConfigError::NegativeAllowance(self.violation_allowance));
        }
        if self.retry_base_steps == 0 {
            return Err(ConfigError::ZeroRetryBase);
        }
        if self.degraded_epsilon.is_nan() || self.degraded_epsilon < 0.0 {
            return Err(ConfigError::NegativeEpsilon(self.degraded_epsilon));
        }
        if let Some(faults) = &self.faults {
            faults.validate()?;
        }
        Ok(())
    }

    /// Total simulated wall-clock time in seconds.
    pub fn horizon_secs(&self) -> f64 {
        self.steps as f64 * self.sigma_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SimConfig::default();
        assert_eq!(c.steps, 100);
        assert_eq!(c.sigma_secs, 30.0);
        assert_eq!(c.rho, 0.01);
        assert!(c.migrations_enabled);
        assert_eq!(c.horizon_secs(), 3000.0);
        assert!(c.faults.is_none(), "faults are off by default");
        c.validate().unwrap();
    }

    #[test]
    fn zero_steps_invalid() {
        let err = SimConfig {
            steps: 0,
            ..Default::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroSteps);
        assert!(err.to_string().contains("steps"));
    }

    #[test]
    fn bad_rho_invalid() {
        for rho in [0.0, 1.0, -0.5, f64::NAN] {
            let err = SimConfig {
                rho,
                ..Default::default()
            }
            .validate()
            .unwrap_err();
            assert!(
                matches!(err, ConfigError::RhoOutOfRange(_)),
                "rho {rho}: {err}"
            );
            assert!(err.to_string().contains("rho"));
        }
    }

    #[test]
    fn bad_sigma_and_allowance_and_retry() {
        assert_eq!(
            SimConfig {
                sigma_secs: 0.0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::NonPositiveSigma(0.0))
        );
        assert_eq!(
            SimConfig {
                violation_allowance: -1.0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::NegativeAllowance(-1.0))
        );
        assert_eq!(
            SimConfig {
                retry_base_steps: 0,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::ZeroRetryBase)
        );
        assert_eq!(
            SimConfig {
                degraded_epsilon: -0.1,
                ..Default::default()
            }
            .validate(),
            Err(ConfigError::NegativeEpsilon(-0.1))
        );
    }

    #[test]
    fn checkpoint_knobs_are_validated() {
        let tmp = std::env::temp_dir().join(format!("bckp-cfg-{}", std::process::id()));
        assert_eq!(
            CheckpointConfig::new(0, &tmp).validate(100),
            Err(ConfigError::ZeroCheckpointInterval)
        );
        assert_eq!(
            CheckpointConfig::new(100, &tmp).validate(100),
            Err(ConfigError::CheckpointIntervalBeyondHorizon {
                every: 100,
                steps: 100
            })
        );
        assert_eq!(
            CheckpointConfig {
                keep: 0,
                ..CheckpointConfig::new(10, &tmp)
            }
            .validate(100),
            Err(ConfigError::ZeroCheckpointKeep)
        );
        // A writable directory validates (and is created on demand)...
        CheckpointConfig::new(10, &tmp).validate(100).unwrap();
        assert!(tmp.is_dir());
        std::fs::remove_dir_all(&tmp).unwrap();
        // ...while a path under a regular file cannot be created.
        let err = CheckpointConfig::new(10, "/dev/null/ckpts")
            .validate(100)
            .unwrap_err();
        match &err {
            ConfigError::CheckpointDirUnwritable { path, .. } => {
                assert!(path.contains("/dev/null/ckpts"), "path {path}");
            }
            other => panic!("want CheckpointDirUnwritable, got {other:?}"),
        }
        assert!(err.to_string().contains("not writable"));
    }

    #[test]
    fn invalid_fault_config_is_caught() {
        let cfg = SimConfig {
            faults: Some(FaultConfig {
                mtbf_steps: 0.5,
                ..FaultConfig::default()
            }),
            ..Default::default()
        };
        assert_eq!(cfg.validate(), Err(ConfigError::FaultMtbfOutOfRange(0.5)));
    }
}
