//! The discrete-event engine.
//!
//! Time is measured in update periods (σ). VM state switches land on
//! integer boundaries (sojourns are geometric, sampled directly — exact
//! for the ON-OFF chain); the controller samples the system at
//! `t = k + 0.5`, so every sample observes the post-switch state of
//! period `k`, exactly like the time-stepped engine's ordering.

use crate::des::event::Event;
use crate::des::queue::EventQueue;
use crate::energy::PowerModel;
use crate::events::MigrationEvent;
use crate::policy::{PmRuntime, RuntimePolicy};
use bursty_metrics::TimeSeries;
use bursty_placement::{Placement, PmLoad};
use bursty_workload::{PmSpec, VmSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DES configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesConfig {
    /// Number of update periods to simulate.
    pub steps: usize,
    /// Seconds per update period (reporting only).
    pub sigma_secs: f64,
    /// CVR threshold `ρ` for migration triggering.
    pub rho: f64,
    /// RNG seed.
    pub seed: u64,
    /// Whether live migration is active.
    pub migrations_enabled: bool,
    /// Migration copy duration in periods; while copying, the VM's demand
    /// is charged on *both* PMs. May be fractional.
    pub migration_duration: f64,
    /// CUSUM-style trigger allowance, mirroring
    /// [`SimConfig::violation_allowance`](crate::SimConfig): migrate only
    /// once violations exceed `ρ · samples + allowance`, so the noisy
    /// early running ratio cannot evict VMs from compliant PMs.
    pub violation_allowance: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        Self {
            steps: 100,
            sigma_secs: 30.0,
            rho: 0.01,
            seed: 0,
            migrations_enabled: true,
            migration_duration: 0.0,
            violation_allowance: 5.0,
        }
    }
}

/// What a DES run produced (mirrors the stepped engine's outcome).
#[derive(Debug, Clone)]
pub struct DesOutcome {
    /// `(pm, CVR)` per ever-active PM.
    pub cvr_per_pm: Vec<(usize, f64)>,
    /// Migrations in time order (`step` = the sampling period that
    /// triggered them).
    pub migrations: Vec<MigrationEvent>,
    /// Migrations with no feasible target.
    pub failed_migrations: usize,
    /// PMs in use at each sample.
    pub pms_used_series: TimeSeries,
    /// PMs in use at the final sample.
    pub final_pms_used: usize,
    /// Total violating PM-samples.
    pub total_violation_steps: usize,
    /// Integrated energy, joules.
    pub energy_joules: f64,
}

impl DesOutcome {
    /// Mean CVR over ever-active PMs.
    pub fn mean_cvr(&self) -> f64 {
        if self.cvr_per_pm.is_empty() {
            return 0.0;
        }
        self.cvr_per_pm.iter().map(|(_, c)| c).sum::<f64>() / self.cvr_per_pm.len() as f64
    }
}

/// The discrete-event simulator.
pub struct DesSimulator<'a> {
    vms: &'a [VmSpec],
    pms: &'a [PmSpec],
    policy: &'a dyn RuntimePolicy,
    power: PowerModel,
    config: DesConfig,
}

impl<'a> DesSimulator<'a> {
    /// Creates a DES over the given fleet/pool/policy.
    pub fn new(
        vms: &'a [VmSpec],
        pms: &'a [PmSpec],
        policy: &'a dyn RuntimePolicy,
        config: DesConfig,
    ) -> Self {
        assert!(config.steps > 0, "steps must be positive");
        assert!(config.rho > 0.0 && config.rho < 1.0, "rho must be in (0,1)");
        assert!(
            config.migration_duration >= 0.0,
            "duration must be nonnegative"
        );
        assert!(
            config.violation_allowance >= 0.0,
            "violation allowance must be nonnegative"
        );
        Self {
            vms,
            pms,
            policy,
            power: PowerModel::default(),
            config,
        }
    }

    /// Overrides the power model.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Runs from `initial` (every VM starts OFF, as in the stepped engine).
    ///
    /// # Panics
    /// Panics on an incomplete placement or count mismatches.
    pub fn run(&self, initial: &Placement) -> DesOutcome {
        assert_eq!(
            initial.n_vms(),
            self.vms.len(),
            "placement/VM count mismatch"
        );
        assert_eq!(initial.n_pms, self.pms.len(), "placement/PM count mismatch");
        assert!(
            initial.is_complete(),
            "initial placement must place every VM"
        );

        let n = self.vms.len();
        let m = self.pms.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0xDE5);

        let mut on = vec![false; n];
        let mut host: Vec<usize> = initial
            .assignment
            .iter()
            .map(|a| a.expect("complete placement"))
            .collect();
        let mut hosted: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &j) in host.iter().enumerate() {
            hosted[j].push(i);
        }
        let mut loads: Vec<PmLoad> = hosted
            .iter()
            .map(|vs| PmLoad::rebuild(vs.iter().map(|&i| &self.vms[i])))
            .collect();
        // Copy charges: (pm, demand) active during a migration.
        let mut copies: Vec<(usize, f64)> = Vec::new();

        let mut queue: EventQueue<Event> = EventQueue::new();
        // Initial switch schedule: geometric OFF-sojourns from t = 0.
        for (i, vm) in self.vms.iter().enumerate() {
            let dt = geometric(vm.p_on, &mut rng);
            queue.schedule(dt, Event::StateSwitch { vm: i });
        }
        for k in 0..self.config.steps {
            queue.schedule(k as f64 + 0.5, Event::Sample);
        }
        queue.schedule(self.config.steps as f64 + 0.25, Event::End);

        let mut vio = vec![0usize; m];
        let mut active = vec![0usize; m];
        let mut migrations = Vec::new();
        let mut failed_migrations = 0usize;
        let mut pms_used_series = TimeSeries::new(0.0, self.config.sigma_secs);
        let mut total_violation_steps = 0usize;
        let mut energy = 0.0;
        let mut sample_index = 0usize;

        while let Some((time, event)) = queue.pop() {
            match event {
                Event::StateSwitch { vm } => {
                    on[vm] = !on[vm];
                    let p = if on[vm] {
                        self.vms[vm].p_off
                    } else {
                        self.vms[vm].p_on
                    };
                    queue.schedule_in(geometric(p, &mut rng), Event::StateSwitch { vm });
                }
                Event::MigrationComplete { vm: _, from } => {
                    // Release the first matching copy charge on `from`.
                    if let Some(pos) = copies.iter().position(|&(pm, _)| pm == from) {
                        copies.swap_remove(pos);
                    }
                }
                Event::Sample => {
                    let step = sample_index;
                    sample_index += 1;
                    // Observed demand per PM.
                    let mut observed = vec![0.0f64; m];
                    for (i, &j) in host.iter().enumerate() {
                        observed[j] += self.vms[i].demand(on[i]);
                    }
                    for &(pm, demand) in &copies {
                        observed[pm] += demand;
                    }
                    // Violations + migration control.
                    for j in 0..m {
                        if loads[j].is_empty() {
                            continue;
                        }
                        active[j] += 1;
                        if observed[j] > self.pms[j].capacity + 1e-9 {
                            vio[j] += 1;
                            total_violation_steps += 1;
                            if self.config.migrations_enabled
                                && vio[j] as f64
                                    > self.config.rho * active[j] as f64
                                        + self.config.violation_allowance
                            {
                                let migrated = self.try_migrate(
                                    j,
                                    step,
                                    time,
                                    &mut host,
                                    &mut hosted,
                                    &mut loads,
                                    &mut observed,
                                    &on,
                                    &mut copies,
                                    &mut queue,
                                    &mut migrations,
                                );
                                if !migrated {
                                    failed_migrations += 1;
                                }
                            }
                        }
                    }
                    let used = loads.iter().filter(|l| !l.is_empty()).count();
                    pms_used_series.push(used as f64);
                    for j in 0..m {
                        if !loads[j].is_empty() {
                            let util = observed[j] / self.pms[j].capacity;
                            energy += self.power.energy(util, self.config.sigma_secs);
                        }
                    }
                }
                Event::End => break,
            }
        }

        let cvr_per_pm = (0..m)
            .filter(|&j| active[j] > 0)
            .map(|j| (j, vio[j] as f64 / active[j] as f64))
            .collect();
        let final_pms_used = loads.iter().filter(|l| !l.is_empty()).count();
        DesOutcome {
            cvr_per_pm,
            migrations,
            failed_migrations,
            pms_used_series,
            final_pms_used,
            total_violation_steps,
            energy_joules: energy,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn try_migrate(
        &self,
        source: usize,
        step: usize,
        time: f64,
        host: &mut [usize],
        hosted: &mut [Vec<usize>],
        loads: &mut [PmLoad],
        observed: &mut [f64],
        on: &[bool],
        copies: &mut Vec<(usize, f64)>,
        queue: &mut EventQueue<Event>,
        migrations: &mut Vec<MigrationEvent>,
    ) -> bool {
        // Victim: largest-demand ON VM, falling back to largest demand.
        let victim = hosted[source].iter().copied().max_by(|&a, &b| {
            let key = |i: usize| (on[i] as u8, self.vms[i].demand(on[i]));
            let (ka, kb) = (key(a), key(b));
            ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        });
        let Some(victim) = victim else { return false };
        let vm = &self.vms[victim];
        let vm_demand = vm.demand(on[victim]);
        let admit = |j: usize, loads: &[PmLoad], observed: &[f64]| {
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            self.policy.admits(vm, vm_demand, &pm, self.pms[j].capacity)
        };
        let target = (0..self.pms.len())
            .find(|&j| j != source && !loads[j].is_empty() && admit(j, loads, observed))
            .or_else(|| {
                (0..self.pms.len())
                    .find(|&j| j != source && loads[j].is_empty() && admit(j, loads, observed))
            });
        let Some(target) = target else { return false };

        hosted[source].retain(|&i| i != victim);
        hosted[target].push(victim);
        host[victim] = target;
        loads[source] = PmLoad::rebuild(hosted[source].iter().map(|&i| &self.vms[i]));
        loads[target].add(vm);
        observed[source] -= vm_demand;
        observed[target] += vm_demand;
        if self.config.migration_duration > 0.0 {
            // Copy overhead stays on the source until the transfer ends.
            copies.push((source, vm_demand));
            observed[source] += vm_demand;
            queue.schedule(
                time + self.config.migration_duration,
                Event::MigrationComplete {
                    vm: victim,
                    from: source,
                },
            );
        }
        migrations.push(MigrationEvent {
            step,
            vm_id: vm.id,
            from_pm: source,
            to_pm: target,
        });
        true
    }
}

/// Samples a geometric sojourn on `{1, 2, …}` with success probability
/// `p` — the exact distribution of the ON-OFF chain's state-holding time.
fn geometric<R: Rng + ?Sized>(p: f64, rng: &mut R) -> f64 {
    debug_assert!(p > 0.0 && p <= 1.0);
    if p >= 1.0 {
        return 1.0;
    }
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).ceil().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::engine::Simulator;
    use crate::policy::{ObservedPolicy, QueuePolicy};
    use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};

    fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 0.01, 0.09, r_b, r_e)
    }

    fn farm(count: usize, cap: f64) -> Vec<PmSpec> {
        (0..count).map(|j| PmSpec::new(j, cap)).collect()
    }

    #[test]
    fn geometric_sampler_has_right_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = 0.09;
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| geometric(p, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.1, "mean {mean}");
        assert_eq!(geometric(1.0, &mut rng), 1.0);
    }

    #[test]
    fn des_and_stepped_agree_on_cvr_without_migration() {
        // Same placement, long horizon, no migration: the two engines use
        // different RNG mechanics, so agreement is statistical.
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);

        let stepped = Simulator::new(
            &vms,
            &pms,
            &policy,
            SimConfig {
                steps: 40_000,
                seed: 1,
                migrations_enabled: false,
                ..Default::default()
            },
        )
        .run(&placement);
        let des = DesSimulator::new(
            &vms,
            &pms,
            &policy,
            DesConfig {
                steps: 40_000,
                seed: 1,
                migrations_enabled: false,
                ..Default::default()
            },
        )
        .run(&placement);

        assert!(
            (stepped.mean_cvr() - des.mean_cvr()).abs() < 0.003,
            "stepped {} vs DES {}",
            stepped.mean_cvr(),
            des.mean_cvr()
        );
    }

    #[test]
    fn des_reproduces_rb_vs_queue_migration_gap() {
        let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(200, 100.0);

        let qs = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let q_placement = first_fit(&vms, &pms, &qs).unwrap();
        let q_policy = QueuePolicy::new(qs);
        let q = DesSimulator::new(
            &vms,
            &pms,
            &q_policy,
            DesConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .run(&q_placement);

        let b_placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let b_policy = ObservedPolicy::rb();
        let b = DesSimulator::new(
            &vms,
            &pms,
            &b_policy,
            DesConfig {
                seed: 2,
                ..Default::default()
            },
        )
        .run(&b_placement);

        assert!(
            b.migrations.len() > 5 * q.migrations.len().max(1),
            "RB {} vs QUEUE {}",
            b.migrations.len(),
            q.migrations.len()
        );
        assert!(b.final_pms_used > b_placement.pms_used());
    }

    #[test]
    fn migration_duration_charges_source() {
        // With a long copy duration, violations cannot decrease.
        let vms: Vec<VmSpec> = (0..40).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(120, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let fast = DesSimulator::new(
            &vms,
            &pms,
            &policy,
            DesConfig {
                seed: 3,
                migration_duration: 0.0,
                ..Default::default()
            },
        )
        .run(&placement);
        let slow = DesSimulator::new(
            &vms,
            &pms,
            &policy,
            DesConfig {
                seed: 3,
                migration_duration: 3.0,
                ..Default::default()
            },
        )
        .run(&placement);
        assert!(
            slow.total_violation_steps >= fast.total_violation_steps,
            "copy overhead cannot reduce violations: {} vs {}",
            slow.total_violation_steps,
            fast.total_violation_steps
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let vms: Vec<VmSpec> = (0..32).map(|i| vm(i, 10.0, 8.0)).collect();
        let pms = farm(100, 90.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run = |seed| {
            DesSimulator::new(
                &vms,
                &pms,
                &policy,
                DesConfig {
                    seed,
                    ..Default::default()
                },
            )
            .run(&placement)
        };
        let (a, b) = (run(7), run(7));
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.total_violation_steps, b.total_violation_steps);
    }

    #[test]
    fn series_and_samples_line_up() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(2, 50.0);
        let placement = Placement {
            assignment: vec![Some(0)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let out = DesSimulator::new(
            &vms,
            &pms,
            &policy,
            DesConfig {
                steps: 25,
                seed: 1,
                ..Default::default()
            },
        )
        .run(&placement);
        assert_eq!(out.pms_used_series.len(), 25);
        assert_eq!(out.final_pms_used, 1);
        assert_eq!(out.cvr_per_pm.len(), 1);
        assert_eq!(out.cvr_per_pm[0].1, 0.0, "one VM can never overflow 50");
    }

    #[test]
    #[should_panic(expected = "place every VM")]
    fn incomplete_placement_rejected() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(1, 50.0);
        let placement = Placement::empty(1, 1);
        let policy = ObservedPolicy::rb();
        let _ = DesSimulator::new(&vms, &pms, &policy, DesConfig::default()).run(&placement);
    }
}
