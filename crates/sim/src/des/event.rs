//! DES event types.

/// An event in the discrete-event engine. Times are in update periods
/// (σ units) but need not be integers — migration completions land at
/// fractional times when the copy duration is fractional.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// VM `vm` toggles its ON/OFF state.
    StateSwitch {
        /// Index of the VM (position in the spec slice).
        vm: usize,
    },
    /// Periodic metrics sample (violation check, PMs-used, energy).
    Sample,
    /// A live migration of `vm` from `from` finishes; the copy load on
    /// the source ends.
    MigrationComplete {
        /// Index of the migrating VM.
        vm: usize,
        /// Source PM the copy charge is released from.
        from: usize,
    },
    /// End of the simulation horizon.
    End,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable_payloads() {
        let a = Event::StateSwitch { vm: 3 };
        let b = Event::StateSwitch { vm: 3 };
        assert_eq!(a, b);
        assert_ne!(a, Event::Sample);
        assert_ne!(
            Event::MigrationComplete { vm: 1, from: 0 },
            Event::MigrationComplete { vm: 1, from: 2 }
        );
    }
}
