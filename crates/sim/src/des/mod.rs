//! A discrete-event simulation (DES) engine — an independent substrate
//! implementation used to cross-validate the time-stepped engine and to
//! model finer-grained effects (explicit migration durations).
//!
//! Where the time-stepped engine advances every VM each period, the DES
//! schedules *events*: per-VM state switches at geometrically-sampled
//! times (the ON-OFF chain's sojourns are geometric, so sampling the
//! sojourn directly is exact), periodic metric samples at every σ
//! boundary, and migration completions after a configurable copy
//! duration. The two engines implement the same semantics by different
//! mechanisms; `tests` (and `tests/paper_shapes.rs` upstream) check they
//! agree statistically.

pub mod engine;
pub mod event;
pub mod queue;

pub use engine::{DesConfig, DesOutcome, DesSimulator};
pub use event::Event;
pub use queue::EventQueue;
