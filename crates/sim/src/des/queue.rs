//! The event queue: a time-ordered priority queue with FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An entry in the queue: time plus a monotone sequence number so that
/// events scheduled earlier fire first among equal times (deterministic
/// replay requires a total order).
struct Entry<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0.0,
        }
    }

    /// Current simulation time (the time of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    /// Panics when scheduling in the past or at a non-finite time.
    pub fn schedule(&mut self, time: f64, payload: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.heap.push(Entry {
            time,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` after now.
    pub fn schedule_in(&mut self, delay: f64, payload: E) {
        assert!(delay >= 0.0, "delay must be nonnegative");
        self.schedule(self.now + delay, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        Some((entry.time, entry.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5.0, 1);
        q.schedule(5.0, 2);
        q.schedule(5.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(2.5, ());
        q.pop();
        assert_eq!(q.now(), 2.5);
        q.schedule_in(1.5, ());
        assert_eq!(q.pop(), Some((4.0, ())));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(4.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
