//! PM power/energy accounting.
//!
//! The paper uses "PMs used at the end of the evaluation period" as its
//! energy proxy. We additionally integrate a standard linear server power
//! model — idle power plus a utilization-proportional dynamic part — so the
//! proxy can be converted to joules.

/// Linear server power model: `P(u) = idle + (peak − idle) · u` for
/// utilization `u ∈ [0, 1]`; an unused (powered-off) PM draws nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Power at zero utilization, watts.
    pub idle_watts: f64,
    /// Power at full utilization, watts.
    pub peak_watts: f64,
}

impl Default for PowerModel {
    /// A typical commodity server: 150 W idle, 250 W at full load.
    fn default() -> Self {
        Self {
            idle_watts: 150.0,
            peak_watts: 250.0,
        }
    }
}

impl PowerModel {
    /// Creates a model.
    ///
    /// # Panics
    /// Panics if `idle_watts < 0` or `peak_watts < idle_watts`.
    pub fn new(idle_watts: f64, peak_watts: f64) -> Self {
        assert!(idle_watts >= 0.0, "idle power must be nonnegative");
        assert!(peak_watts >= idle_watts, "peak power must be ≥ idle power");
        Self {
            idle_watts,
            peak_watts,
        }
    }

    /// Instantaneous power draw at utilization `u` (clamped to `[0, 1]` —
    /// an overloaded PM cannot draw more than its peak).
    pub fn power(&self, utilization: f64) -> f64 {
        let u = utilization.clamp(0.0, 1.0);
        self.idle_watts + (self.peak_watts - self.idle_watts) * u
    }

    /// Energy (joules) one PM consumes over `secs` at utilization `u`.
    pub fn energy(&self, utilization: f64, secs: f64) -> f64 {
        self.power(utilization) * secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints() {
        let m = PowerModel::new(100.0, 200.0);
        assert_eq!(m.power(0.0), 100.0);
        assert_eq!(m.power(1.0), 200.0);
        assert_eq!(m.power(0.5), 150.0);
    }

    #[test]
    fn clamps_overload() {
        let m = PowerModel::default();
        assert_eq!(m.power(1.5), m.power(1.0));
        assert_eq!(m.power(-0.2), m.power(0.0));
    }

    #[test]
    fn energy_integrates_power() {
        let m = PowerModel::new(100.0, 200.0);
        assert_eq!(m.energy(0.5, 30.0), 150.0 * 30.0);
    }

    #[test]
    fn idle_dominates_energy_motivates_consolidation() {
        // Two half-loaded PMs draw more than one fully-loaded PM — the
        // economic argument for consolidation in one assert.
        let m = PowerModel::default();
        assert!(2.0 * m.power(0.5) > m.power(1.0));
    }

    #[test]
    #[should_panic(expected = "peak power")]
    fn rejects_peak_below_idle() {
        let _ = PowerModel::new(200.0, 100.0);
    }
}
