//! The time-stepped simulation engine.

use crate::config::SimConfig;
use crate::energy::PowerModel;
use crate::events::MigrationEvent;
use crate::policy::{PmRuntime, RuntimePolicy};
use bursty_metrics::TimeSeries;
use bursty_placement::{Placement, PmLoad};
use bursty_workload::{PmSpec, VmSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// What one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// `(pm index, CVR)` for every PM that hosted at least one VM at some
    /// point; CVR is violations over the steps the PM was active.
    pub cvr_per_pm: Vec<(usize, f64)>,
    /// All live migrations, in time order.
    pub migrations: Vec<MigrationEvent>,
    /// Migrations for which no target PM could be found (pool exhausted);
    /// the VM stayed put and the violation persisted.
    pub failed_migrations: usize,
    /// Number of non-empty PMs after each update period.
    pub pms_used_series: TimeSeries,
    /// PMs in use at the end of the evaluation period (the paper's energy
    /// proxy, Fig. 9(b)).
    pub final_pms_used: usize,
    /// Peak concurrent PMs in use.
    pub peak_pms_used: usize,
    /// Total PM-step capacity violations.
    pub total_violation_steps: usize,
    /// Per-VM SLA exposure: how many steps each VM spent on a PM that was
    /// violating its capacity (indexed like the input fleet). The basis
    /// for tenant-fairness analysis: RB's violations concentrate on
    /// whoever shares a PM with the spikers.
    pub vm_violation_steps: Vec<usize>,
    /// Integrated energy over the run, joules.
    pub energy_joules: f64,
}

impl SimOutcome {
    /// Total number of migrations (Fig. 9(a)).
    pub fn total_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Mean CVR over PMs that were ever active (0 if none).
    pub fn mean_cvr(&self) -> f64 {
        if self.cvr_per_pm.is_empty() {
            return 0.0;
        }
        self.cvr_per_pm.iter().map(|(_, c)| c).sum::<f64>() / self.cvr_per_pm.len() as f64
    }

    /// Worst per-PM CVR (0 if none).
    pub fn max_cvr(&self) -> f64 {
        self.cvr_per_pm.iter().map(|&(_, c)| c).fold(0.0, f64::max)
    }
}

/// A configured simulator, ready to run from an initial placement.
///
/// # Examples
/// ```
/// use bursty_placement::{first_fit, QueueStrategy};
/// use bursty_sim::{QueuePolicy, SimConfig, Simulator};
/// use bursty_workload::{PmSpec, VmSpec};
///
/// let vms: Vec<VmSpec> =
///     (0..14).map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0)).collect();
/// let pms: Vec<PmSpec> = (0..14).map(|j| PmSpec::new(j, 100.0)).collect();
/// let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
/// let placement = first_fit(&vms, &pms, &strategy).unwrap();
///
/// let policy = QueuePolicy::new(strategy);
/// let cfg = SimConfig { steps: 500, seed: 7, ..SimConfig::default() };
/// let outcome = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
/// assert!(outcome.mean_cvr() <= 0.02);       // performance constraint
/// assert!(outcome.total_migrations() <= 2);  // reservation absorbs spikes
/// ```
pub struct Simulator<'a> {
    vms: &'a [VmSpec],
    pms: &'a [PmSpec],
    policy: &'a dyn RuntimePolicy,
    power: PowerModel,
    config: SimConfig,
}

/// Tolerance when comparing aggregate demand to capacity, so exact-fit
/// packings are not flagged by floating-point noise.
const CAP_EPS: f64 = 1e-9;

impl<'a> Simulator<'a> {
    /// Creates a simulator. `pms` should include spare (initially empty)
    /// machines — the pool the migration controller can power on.
    pub fn new(
        vms: &'a [VmSpec],
        pms: &'a [PmSpec],
        policy: &'a dyn RuntimePolicy,
        config: SimConfig,
    ) -> Self {
        config.validate();
        Self {
            vms,
            pms,
            policy,
            power: PowerModel::default(),
            config,
        }
    }

    /// Overrides the power model.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Runs the simulation from `initial` and returns the outcome.
    ///
    /// Every VM starts OFF (the initial placement is made at the normal
    /// workload level, paper §III: the capacity constraint is imposed at
    /// `t = 0`).
    ///
    /// # Panics
    /// Panics if `initial` is incomplete or inconsistent with the specs.
    pub fn run(&self, initial: &Placement) -> SimOutcome {
        assert_eq!(
            initial.n_vms(),
            self.vms.len(),
            "placement/VM count mismatch"
        );
        assert_eq!(initial.n_pms, self.pms.len(), "placement/PM count mismatch");
        assert!(
            initial.is_complete(),
            "initial placement must place every VM"
        );

        let n = self.vms.len();
        let m = self.pms.len();
        let mut rng = StdRng::seed_from_u64(self.config.seed);

        // Runtime state.
        let mut on = vec![false; n];
        let mut host: Vec<usize> = initial
            .assignment
            .iter()
            .map(|a| a.expect("complete placement"))
            .collect();
        let mut hosted: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, &j) in host.iter().enumerate() {
            hosted[j].push(i);
        }
        let mut loads: Vec<PmLoad> = hosted
            .iter()
            .map(|vs| PmLoad::rebuild(vs.iter().map(|&i| &self.vms[i])))
            .collect();

        // Live-migration copy overhead: (pm, demand, steps left) entries
        // that keep charging the source PM.
        let mut dual: Vec<(usize, f64, usize)> = Vec::new();

        // Accounting.
        let mut vio_steps = vec![0usize; m];
        let mut active_steps = vec![0usize; m];
        let mut migrations = Vec::new();
        let mut failed_migrations = 0usize;
        let mut pms_used_series = TimeSeries::new(0.0, self.config.sigma_secs);
        let mut peak_pms_used = 0usize;
        let mut total_violation_steps = 0usize;
        let mut vm_violation_steps = vec![0usize; n];
        let mut energy = 0.0;

        let mut observed = vec![0.0f64; m];
        for step in 0..self.config.steps {
            // 1. Workload evolution (state switches happen at interval
            //    boundaries, paper §IV-B).
            for (i, vm) in self.vms.iter().enumerate() {
                let state = if on[i] {
                    bursty_markov::VmState::On
                } else {
                    bursty_markov::VmState::Off
                };
                on[i] = vm.chain().step(state, &mut rng).is_on();
            }

            // 2. Local resizing: allocation == demand, so the observed PM
            //    load is the sum of current demands (plus copy overhead).
            observed.iter_mut().for_each(|o| *o = 0.0);
            for (i, &j) in host.iter().enumerate() {
                observed[j] += self.vms[i].demand(on[i]);
            }
            for &(j, demand, _) in &dual {
                observed[j] += demand;
            }

            // 3. Violation tracking.
            let mut overloaded = Vec::new();
            for j in 0..m {
                if loads[j].is_empty() {
                    continue;
                }
                active_steps[j] += 1;
                if observed[j] > self.pms[j].capacity + CAP_EPS {
                    vio_steps[j] += 1;
                    total_violation_steps += 1;
                    for &i in &hosted[j] {
                        vm_violation_steps[i] += 1;
                    }
                    overloaded.push(j);
                }
            }

            // 4. Live migration: a PM whose violation count exceeds the
            //    compliant budget ρ·t plus the CUSUM allowance sheds one
            //    VM (at most one per PM per period). The allowance keeps
            //    startup noise — where a single violation puts the running
            //    ratio above ρ — from evicting VMs off compliant PMs.
            if self.config.migrations_enabled {
                for &j in &overloaded {
                    let budget =
                        self.config.rho * active_steps[j] as f64 + self.config.violation_allowance;
                    if vio_steps[j] as f64 <= budget {
                        continue; // tolerated fluctuation
                    }
                    let overload = observed[j] - self.pms[j].capacity;
                    let Some(victim) = self.pick_victim(&hosted[j], &on, overload) else {
                        continue;
                    };
                    let vm = &self.vms[victim];
                    let vm_demand = vm.demand(on[victim]);
                    match self.pick_target(j, vm, vm_demand, &loads, &observed) {
                        Some(target) => {
                            // Move the VM.
                            hosted[j].retain(|&i| i != victim);
                            hosted[target].push(victim);
                            host[victim] = target;
                            loads[j] = PmLoad::rebuild(hosted[j].iter().map(|&i| &self.vms[i]));
                            loads[target].add(vm);
                            observed[j] -= vm_demand;
                            observed[target] += vm_demand;
                            if self.config.dual_count_steps > 0 {
                                dual.push((j, vm_demand, self.config.dual_count_steps));
                            }
                            migrations.push(MigrationEvent {
                                step,
                                vm_id: vm.id,
                                from_pm: j,
                                to_pm: target,
                            });
                        }
                        None => failed_migrations += 1,
                    }
                }
            }

            // 5. Bookkeeping.
            dual.iter_mut().for_each(|e| e.2 -= 1);
            dual.retain(|e| e.2 > 0);
            let used = loads.iter().filter(|l| !l.is_empty()).count();
            peak_pms_used = peak_pms_used.max(used);
            pms_used_series.push(used as f64);
            for j in 0..m {
                if !loads[j].is_empty() {
                    let util = observed[j] / self.pms[j].capacity;
                    energy += self.power.energy(util, self.config.sigma_secs);
                }
            }
        }

        let cvr_per_pm = (0..m)
            .filter(|&j| active_steps[j] > 0)
            .map(|j| (j, vio_steps[j] as f64 / active_steps[j] as f64))
            .collect();
        let final_pms_used = loads.iter().filter(|l| !l.is_empty()).count();
        SimOutcome {
            cvr_per_pm,
            migrations,
            failed_migrations,
            pms_used_series,
            final_pms_used,
            peak_pms_used,
            total_violation_steps,
            vm_violation_steps,
            energy_joules: energy,
        }
    }

    /// Victim selection per the configured [`VictimPolicy`].
    ///
    /// [`VictimPolicy`]: crate::config::VictimPolicy
    fn pick_victim(&self, hosted: &[usize], on: &[bool], overload: f64) -> Option<usize> {
        use crate::config::VictimPolicy;
        if hosted.is_empty() {
            return None;
        }
        let largest_on = || {
            hosted.iter().copied().max_by(|&a, &b| {
                let key = |i: usize| (on[i] as u8, self.vms[i].demand(on[i]));
                let (ka, kb) = (key(a), key(b));
                ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
            })
        };
        match self.config.victim_policy {
            VictimPolicy::LargestOnDemand => largest_on(),
            VictimPolicy::SmallestSufficient => hosted
                .iter()
                .copied()
                .filter(|&i| on[i] && self.vms[i].demand(true) >= overload)
                .min_by(|&a, &b| {
                    self.vms[a]
                        .demand(true)
                        .total_cmp(&self.vms[b].demand(true))
                })
                .or_else(largest_on),
            VictimPolicy::SmallestBase => hosted
                .iter()
                .copied()
                .min_by(|&a, &b| self.vms[a].r_b.total_cmp(&self.vms[b].r_b)),
        }
    }

    /// Target selection: first *active* PM (other than the source) the
    /// policy admits the VM on, else the first empty PM in the pool.
    fn pick_target(
        &self,
        source: usize,
        vm: &VmSpec,
        vm_demand: f64,
        loads: &[PmLoad],
        observed: &[f64],
    ) -> Option<usize> {
        let admit = |j: usize| {
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            self.policy.admits(vm, vm_demand, &pm, self.pms[j].capacity)
        };
        let active = (0..self.pms.len()).find(|&j| j != source && !loads[j].is_empty() && admit(j));
        active.or_else(|| {
            (0..self.pms.len()).find(|&j| j != source && loads[j].is_empty() && admit(j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ObservedPolicy, QueuePolicy};
    use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};

    fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 0.01, 0.09, r_b, r_e)
    }

    fn farm(count: usize, cap: f64) -> Vec<PmSpec> {
        (0..count).map(|j| PmSpec::new(j, cap)).collect()
    }

    fn config(steps: usize, seed: u64, migrations: bool) -> SimConfig {
        SimConfig {
            steps,
            seed,
            migrations_enabled: migrations,
            ..Default::default()
        }
    }

    #[test]
    fn queue_placement_respects_rho_without_migration() {
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config(20_000, 1, false));
        let out = sim.run(&placement);
        // Mean CVR must honor ρ with margin; individual PMs may exceed it
        // slightly (the paper observes the same).
        assert!(out.mean_cvr() <= 0.012, "mean CVR {}", out.mean_cvr());
        assert!(out.max_cvr() <= 0.05, "max CVR {}", out.max_cvr());
        assert!(out.migrations.is_empty());
    }

    #[test]
    fn base_placement_violates_massively_without_migration() {
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let sim = Simulator::new(&vms, &pms, &policy, config(5_000, 1, false));
        let out = sim.run(&placement);
        // 10 VMs per PM at Σ R_b = C: any spike violates. Pr[≥1 ON] ≈ 65%.
        assert!(out.mean_cvr() > 0.3, "mean CVR {}", out.mean_cvr());
    }

    #[test]
    fn queue_incurs_far_fewer_migrations_than_rb() {
        let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(200, 100.0);

        let qs = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let q_placement = first_fit(&vms, &pms, &qs).unwrap();
        let q_policy = QueuePolicy::new(qs);
        let q_out = Simulator::new(&vms, &pms, &q_policy, config(100, 7, true)).run(&q_placement);

        let b_placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let b_policy = ObservedPolicy::rb();
        let b_out = Simulator::new(&vms, &pms, &b_policy, config(100, 7, true)).run(&b_placement);

        assert!(
            b_out.total_migrations() > 5 * q_out.total_migrations().max(1),
            "RB {} vs QUEUE {}",
            b_out.total_migrations(),
            q_out.total_migrations()
        );
    }

    #[test]
    fn rb_pm_count_grows_from_overtight_packing() {
        let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(200, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let initial = placement.pms_used();
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(100, 3, true)).run(&placement);
        assert!(
            out.final_pms_used > initial,
            "RB must spill to extra PMs: {} vs initial {initial}",
            out.final_pms_used
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let vms: Vec<VmSpec> = (0..32).map(|i| vm(i, 10.0, 8.0)).collect();
        let pms = farm(100, 90.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run =
            |seed| Simulator::new(&vms, &pms, &policy, config(80, seed, true)).run(&placement);
        let (a, b) = (run(11), run(11));
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_pms_used, b.final_pms_used);
        assert_eq!(a.total_violation_steps, b.total_violation_steps);
        let c = run(12);
        // Different seed, different sample path (overwhelmingly likely).
        assert!(a.migrations != c.migrations || a.total_violation_steps != c.total_violation_steps);
    }

    #[test]
    fn energy_scales_with_pms_used() {
        let vms: Vec<VmSpec> = (0..10).map(|i| vm(i, 10.0, 5.0)).collect();
        let pms = farm(20, 100.0);
        // One PM for everything vs one VM per PM.
        let consolidated = Placement {
            assignment: vec![Some(0); 10],
            n_pms: 20,
        };
        let spread = Placement {
            assignment: (0..10).map(Some).collect(),
            n_pms: 20,
        };
        let policy = ObservedPolicy::rb();
        let cfg = config(50, 5, false);
        let e1 = Simulator::new(&vms, &pms, &policy, cfg)
            .run(&consolidated)
            .energy_joules;
        let e2 = Simulator::new(&vms, &pms, &policy, cfg)
            .run(&spread)
            .energy_joules;
        assert!(e2 > 3.0 * e1, "spread {e2} vs consolidated {e1}");
    }

    #[test]
    fn pool_exhaustion_counts_failed_migrations() {
        // Overloaded tiny farm with zero spare capacity anywhere.
        let vms: Vec<VmSpec> = (0..8).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(1, 80.0);
        let placement = Placement {
            assignment: vec![Some(0); 8],
            n_pms: 1,
        };
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(2_000, 2, true)).run(&placement);
        assert_eq!(out.total_migrations(), 0, "nowhere to go");
        assert!(out.failed_migrations > 0);
    }

    #[test]
    fn series_lengths_match_steps() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(2, 50.0);
        let placement = Placement {
            assignment: vec![Some(0)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(37, 1, true)).run(&placement);
        assert_eq!(out.pms_used_series.len(), 37);
        assert_eq!(out.final_pms_used, 1);
        assert_eq!(out.peak_pms_used, 1);
        assert_eq!(out.cvr_per_pm.len(), 1);
    }

    #[test]
    #[should_panic(expected = "place every VM")]
    fn incomplete_placement_rejected() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(1, 50.0);
        let placement = Placement::empty(1, 1);
        let policy = ObservedPolicy::rb();
        let _ = Simulator::new(&vms, &pms, &policy, config(5, 1, false)).run(&placement);
    }

    #[test]
    fn vm_violation_exposure_sums_to_pm_accounting() {
        let vms: Vec<VmSpec> = (0..30).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(30, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(2_000, 4, false)).run(&placement);
        // Each violating PM-step exposes exactly its hosted VMs: with the
        // static 10-per-PM packing, Σ per-VM exposure = 10 × PM-steps.
        let total_exposure: usize = out.vm_violation_steps.iter().sum();
        assert_eq!(total_exposure, 10 * out.total_violation_steps);
        assert!(out.vm_violation_steps.iter().any(|&v| v > 0));
        assert_eq!(out.vm_violation_steps.len(), vms.len());
    }

    #[test]
    fn victim_policies_all_run_and_differ() {
        use crate::config::VictimPolicy;
        // Heterogeneous sizes so the policies actually pick differently.
        let vms: Vec<VmSpec> = (0..40)
            .map(|i| vm(i, 6.0 + (i % 5) as f64 * 3.0, 4.0 + (i % 3) as f64 * 8.0))
            .collect();
        let pms = farm(120, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run = |vp: VictimPolicy| {
            let cfg = SimConfig {
                steps: 100,
                seed: 13,
                victim_policy: vp,
                ..Default::default()
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let largest = run(VictimPolicy::LargestOnDemand);
        let smallest = run(VictimPolicy::SmallestSufficient);
        let base = run(VictimPolicy::SmallestBase);
        // All three stay structurally sound and actually migrate.
        for out in [&largest, &smallest, &base] {
            assert!(out.total_migrations() > 0);
            for e in &out.migrations {
                assert_ne!(e.from_pm, e.to_pm);
            }
        }
        // Policy choice changes the event stream for this fleet/seed.
        assert!(
            largest.migrations != smallest.migrations || largest.migrations != base.migrations,
            "policies should not coincide on a heterogeneous fleet"
        );
        // SmallestSufficient moves less demand per migration on average.
        let moved = |out: &SimOutcome| -> f64 {
            out.migrations
                .iter()
                .map(|e| vms[e.vm_id].r_p())
                .sum::<f64>()
                / out.total_migrations().max(1) as f64
        };
        assert!(
            moved(&smallest) <= moved(&largest) + 1e-9,
            "smallest-sufficient should move lighter VMs: {} vs {}",
            moved(&smallest),
            moved(&largest)
        );
    }

    #[test]
    fn dual_count_charges_source_during_copy() {
        // With a long dual-count window, migrations inflate the source's
        // observed load, measurably increasing violation pressure.
        let vms: Vec<VmSpec> = (0..40).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(120, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let base_cfg = config(100, 9, true);
        let dual_cfg = SimConfig {
            dual_count_steps: 3,
            ..base_cfg
        };
        let plain = Simulator::new(&vms, &pms, &policy, base_cfg).run(&placement);
        let dual = Simulator::new(&vms, &pms, &policy, dual_cfg).run(&placement);
        assert!(
            dual.total_violation_steps >= plain.total_violation_steps,
            "copy overhead cannot reduce violations: {} vs {}",
            dual.total_violation_steps,
            plain.total_violation_steps
        );
    }
}
