//! The time-stepped simulation engine.

use crate::config::SimConfig;
use crate::energy::PowerModel;
use crate::events::{EvacuationEvent, FaultEvent, FaultKind, MigrationEvent};
use crate::faults::FaultProcess;
use crate::policy::{DegradedAdmission, PmRuntime, RuntimePolicy};
use crate::workload_core::WorkloadCore;
use bursty_metrics::TimeSeries;
use bursty_obs::{Counter, Event, Gauge, HistId, NoopRecorder, Recorder, RetryCause};
use bursty_placement::{evacuate_batch_recorded, HeadroomIndex, Placement, PmLoad};
use bursty_workload::{PmSpec, VmSpec};

/// Recovery and degradation accounting of one run. All fields stay zero
/// when [`SimConfig::faults`] is `None` and no migration ever fails.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryStats {
    /// PM crash transitions.
    pub crashes: usize,
    /// PM recovery transitions.
    pub recoveries: usize,
    /// Steps from each displacing crash until its last displaced VM was
    /// re-placed (0 = the whole batch landed within the crash step). One
    /// entry per crash that displaced at least one VM and was fully
    /// restored before the run ended.
    pub time_to_restore: Vec<usize>,
    /// Crashes whose displaced VMs were not all re-placed by the end of
    /// the run: their VMs are still in the retry queue — queued, not lost.
    pub unrestored_crashes: usize,
    /// VM-steps spent displaced, waiting in the retry queue.
    pub stranded_vm_steps: usize,
    /// Displaced VMs admitted only through the degraded-mode overflow
    /// margin `(1 + ε)·C`.
    pub degraded_admissions: usize,
    /// PM-step violations on PMs currently hosting a degraded admission —
    /// SLA exposure attributable to failures rather than to burstiness.
    pub degraded_violation_steps: usize,
}

impl RecoveryStats {
    /// Mean steps to restore a displacing crash; `None` when no crash was
    /// fully restored.
    pub fn mean_time_to_restore(&self) -> Option<f64> {
        if self.time_to_restore.is_empty() {
            None
        } else {
            Some(
                self.time_to_restore.iter().sum::<usize>() as f64
                    / self.time_to_restore.len() as f64,
            )
        }
    }
}

/// What one simulation run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// `(pm index, CVR)` for every PM that hosted at least one VM at some
    /// point; CVR is violations over the steps the PM was active.
    pub cvr_per_pm: Vec<(usize, f64)>,
    /// All live migrations, in time order (including those that succeeded
    /// on a retry-queue re-attempt).
    pub migrations: Vec<MigrationEvent>,
    /// Trigger-time migrations for which no target PM could be found (pool
    /// exhausted); the VM stayed put, the violation persisted, and — when
    /// [`SimConfig::max_retries`] is positive — a retry-queue entry was
    /// scheduled with exponential backoff.
    pub failed_migrations: usize,
    /// Migrations that succeeded only on a retry-queue re-attempt, after
    /// the trigger-time attempt found no admitting PM.
    pub retried_migrations: usize,
    /// Number of non-empty PMs after each update period.
    pub pms_used_series: TimeSeries,
    /// PMs in use at the end of the evaluation period (the paper's energy
    /// proxy, Fig. 9(b)).
    pub final_pms_used: usize,
    /// Peak concurrent PMs in use.
    pub peak_pms_used: usize,
    /// Total PM-step capacity violations (burstiness and degraded-mode
    /// combined; see [`SimOutcome::burstiness_violation_steps`]).
    pub total_violation_steps: usize,
    /// Per-VM SLA exposure: how many steps each VM spent on a PM that was
    /// violating its capacity (indexed like the input fleet). The basis
    /// for tenant-fairness analysis: RB's violations concentrate on
    /// whoever shares a PM with the spikers.
    pub vm_violation_steps: Vec<usize>,
    /// Integrated energy over the run, joules.
    pub energy_joules: f64,
    /// PM crash/recovery transitions, in time order (empty without
    /// [`SimConfig::faults`]).
    pub fault_events: Vec<FaultEvent>,
    /// Displaced-VM re-placement attempts, in time order. A VM that found
    /// no PM appears with `to_pm: None` and again with `Some` once a
    /// retry lands it.
    pub evacuations: Vec<EvacuationEvent>,
    /// Failure-recovery accounting.
    pub recovery: RecoveryStats,
}

impl SimOutcome {
    /// Total number of migrations (Fig. 9(a)).
    pub fn total_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Mean CVR over PMs that were ever active (0 if none).
    pub fn mean_cvr(&self) -> f64 {
        if self.cvr_per_pm.is_empty() {
            return 0.0;
        }
        self.cvr_per_pm.iter().map(|(_, c)| c).sum::<f64>() / self.cvr_per_pm.len() as f64
    }

    /// Worst per-PM CVR (0 if none).
    pub fn max_cvr(&self) -> f64 {
        self.cvr_per_pm.iter().map(|&(_, c)| c).fold(0.0, f64::max)
    }

    /// Violation steps not attributable to failures: the total minus
    /// [`RecoveryStats::degraded_violation_steps`].
    pub fn burstiness_violation_steps(&self) -> usize {
        self.total_violation_steps - self.recovery.degraded_violation_steps
    }
}

/// Why a VM sits in the retry queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RetryKind {
    /// A trigger-time migration off an over-budget PM found no target;
    /// the VM is still hosted there. Abandoned after
    /// [`SimConfig::max_retries`] failed re-attempts (the trigger
    /// re-detects a persisting overload anyway).
    Overload,
    /// The VM was displaced by a PM crash and no PM admitted it. Never
    /// abandoned: the backoff exponent saturates but the entry stays until
    /// the VM lands somewhere.
    Evacuation,
}

/// One deferred placement attempt.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryEntry {
    pub(crate) vm: usize,
    pub(crate) kind: RetryKind,
    /// Failed re-attempts so far (0 right after the initial failure).
    pub(crate) attempts: usize,
    /// First step at which the entry is due again.
    pub(crate) next_step: usize,
}

/// Restoration bookkeeping for one displacing crash.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CrashRecord {
    pub(crate) pm: usize,
    pub(crate) step: usize,
    /// Displaced VMs still waiting for a new home.
    pub(crate) pending: usize,
}

/// Mutable fault/recovery state of a run, bundled so the evacuation
/// helpers can borrow it alongside the placement state.
pub(crate) struct FaultState {
    pub(crate) pm_up: Vec<bool>,
    /// Whether each VM currently occupies a degraded-mode admission.
    pub(crate) vm_degraded: Vec<bool>,
    /// Degraded admissions currently hosted per PM.
    pub(crate) pm_overflow: Vec<usize>,
    /// For a displaced VM, the crash record it belongs to.
    pub(crate) crash_of_vm: Vec<Option<usize>>,
    pub(crate) crash_records: Vec<CrashRecord>,
    pub(crate) retry_queue: Vec<RetryEntry>,
    /// Per-VM membership flag for `retry_queue` — the O(1) replacement
    /// for scanning the queue on every failed migration. Invariant:
    /// `in_retry[i]` iff some entry with `vm == i` is in `retry_queue`
    /// (a VM never holds two entries: overload retries are deduplicated
    /// on push, and a displaced VM's overload entry is dropped before
    /// its evacuation entry is queued).
    pub(crate) in_retry: Vec<bool>,
    pub(crate) fault_events: Vec<FaultEvent>,
    pub(crate) evacuations: Vec<EvacuationEvent>,
    pub(crate) recovery: RecoveryStats,
}

impl FaultState {
    pub(crate) fn new(n: usize, m: usize) -> Self {
        Self {
            pm_up: vec![true; m],
            vm_degraded: vec![false; n],
            pm_overflow: vec![0; m],
            crash_of_vm: vec![None; n],
            crash_records: Vec::new(),
            retry_queue: Vec::new(),
            in_retry: vec![false; n],
            fault_events: Vec::new(),
            evacuations: Vec::new(),
            recovery: RecoveryStats::default(),
        }
    }

    /// Adds a retry entry for a VM not currently queued, maintaining the
    /// `in_retry` flag. The debug assertion is the duplicate-entry
    /// regression guard: it re-runs the old O(queue) scan in test builds
    /// to certify the flag never drifts from actual queue membership.
    fn enqueue_retry(&mut self, entry: RetryEntry) {
        debug_assert!(
            !self.in_retry[entry.vm] && !self.retry_queue.iter().any(|r| r.vm == entry.vm),
            "VM {} already has a retry entry",
            entry.vm
        );
        self.in_retry[entry.vm] = true;
        self.retry_queue.push(entry);
    }
}

/// Per-step headroom indexes over the PM pool for migration target
/// selection, split into *active* (hosting at least one VM) and *empty*
/// PMs so [`Simulator::pick_target`] keeps its two-phase first-fit
/// semantics. Built lazily at the first target query of a step — the
/// violation trigger fires rarely, so most steps never pay the O(m)
/// build — and point-updated after each move within the step. Down PMs
/// carry `NEG_INFINITY` in both indexes and are never probed.
struct TargetFinder {
    active: HeadroomIndex,
    empty: HeadroomIndex,
}

impl TargetFinder {
    fn build(sim: &Simulator<'_>, loads: &[PmLoad], observed: &[f64], pm_up: &[bool]) -> Self {
        let mut active = vec![f64::NEG_INFINITY; loads.len()];
        let mut empty = vec![f64::NEG_INFINITY; loads.len()];
        for j in 0..loads.len() {
            if !pm_up[j] {
                continue;
            }
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            let h = sim.policy.headroom(&pm, sim.pms[j].capacity);
            if loads[j].is_empty() {
                empty[j] = h;
            } else {
                active[j] = h;
            }
        }
        Self {
            active: HeadroomIndex::new(&active),
            empty: HeadroomIndex::new(&empty),
        }
    }

    /// Re-derives PM `j`'s entries after its load or observed demand
    /// changed (it may have crossed the active/empty boundary).
    fn refresh(
        &mut self,
        sim: &Simulator<'_>,
        j: usize,
        loads: &[PmLoad],
        observed: &[f64],
        pm_up: &[bool],
    ) {
        let (mut a, mut e) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        if pm_up[j] {
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            let h = sim.policy.headroom(&pm, sim.pms[j].capacity);
            if loads[j].is_empty() {
                e = h;
            } else {
                a = h;
            }
        }
        self.active.update(j, a);
        self.empty.update(j, e);
    }
}

/// A configured simulator, ready to run from an initial placement.
///
/// # Examples
/// ```
/// use bursty_placement::{first_fit, QueueStrategy};
/// use bursty_sim::{QueuePolicy, SimConfig, Simulator};
/// use bursty_workload::{PmSpec, VmSpec};
///
/// let vms: Vec<VmSpec> =
///     (0..14).map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0)).collect();
/// let pms: Vec<PmSpec> = (0..14).map(|j| PmSpec::new(j, 100.0)).collect();
/// let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
/// let placement = first_fit(&vms, &pms, &strategy).unwrap();
///
/// let policy = QueuePolicy::new(strategy);
/// let cfg = SimConfig { steps: 500, seed: 7, ..SimConfig::default() };
/// let outcome = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
/// assert!(outcome.mean_cvr() <= 0.02);       // performance constraint
/// assert!(outcome.total_migrations() <= 2);  // reservation absorbs spikes
/// ```
pub struct Simulator<'a> {
    pub(crate) vms: &'a [VmSpec],
    pub(crate) pms: &'a [PmSpec],
    pub(crate) policy: &'a dyn RuntimePolicy,
    pub(crate) power: PowerModel,
    pub(crate) config: SimConfig,
}

/// The complete mutable state of a run between two step boundaries —
/// everything [`Simulator::step_once`] reads or writes. Bundling it in
/// one struct is what makes the engine checkpointable: a durable
/// snapshot is a serialization of `RunState` (plus the recorder), and
/// resume is [`Simulator::run_from`] on a restored value. Constructed
/// by [`Simulator::init_state`]; never leaves the crate.
pub(crate) struct RunState {
    pub(crate) core: WorkloadCore,
    pub(crate) fault_process: Option<FaultProcess>,
    /// `host[i] == None` marks a displaced (stranded) VM waiting in the
    /// retry queue after a crash.
    pub(crate) host: Vec<Option<usize>>,
    pub(crate) hosted: Vec<Vec<usize>>,
    pub(crate) loads: Vec<PmLoad>,
    pub(crate) fs: FaultState,
    /// Live-migration copy overhead: (pm, demand, steps left) entries
    /// that keep charging the source PM.
    pub(crate) dual: Vec<(usize, f64, usize)>,
    pub(crate) vio_steps: Vec<usize>,
    pub(crate) active_steps: Vec<usize>,
    pub(crate) migrations: Vec<MigrationEvent>,
    pub(crate) failed_migrations: usize,
    pub(crate) retried_migrations: usize,
    pub(crate) pms_used_series: TimeSeries,
    pub(crate) peak_pms_used: usize,
    pub(crate) total_violation_steps: usize,
    pub(crate) vm_violation_steps: Vec<usize>,
    pub(crate) energy: f64,
    /// Per-PM observed demand of the *last completed* step. Read by the
    /// next step's fault/evacuation phase before the workload evolves,
    /// so it is genuine run state, not scratch.
    pub(crate) observed: Vec<f64>,
    /// The next step to execute (== completed steps so far).
    pub(crate) next_step: usize,
}

/// A callback the engine drives after every completed step — the seam
/// the checkpointer hangs off. [`NoopHook`] is the zero-cost default:
/// its empty body inlines away, so [`Simulator::run`] compiles to the
/// same loop it was before the seam existed.
pub(crate) trait StepHook {
    fn after_step<R: Recorder>(&mut self, sim: &Simulator<'_>, st: &RunState, rec: &R);
}

/// The do-nothing [`StepHook`] of plain (non-checkpointed) runs.
pub(crate) struct NoopHook;

impl StepHook for NoopHook {
    #[inline(always)]
    fn after_step<R: Recorder>(&mut self, _: &Simulator<'_>, _: &RunState, _: &R) {}
}

/// Tolerance when comparing aggregate demand to capacity, so exact-fit
/// packings are not flagged by floating-point noise.
const CAP_EPS: f64 = 1e-9;

impl<'a> Simulator<'a> {
    /// Creates a simulator. `pms` should include spare (initially empty)
    /// machines — the pool the migration controller can power on.
    ///
    /// # Panics
    /// Panics when `config` fails [`SimConfig::validate`]; call it first
    /// to handle the [`crate::ConfigError`] as a value.
    pub fn new(
        vms: &'a [VmSpec],
        pms: &'a [PmSpec],
        policy: &'a dyn RuntimePolicy,
        config: SimConfig,
    ) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid SimConfig: {e}"));
        Self {
            vms,
            pms,
            policy,
            power: PowerModel::default(),
            config,
        }
    }

    /// Overrides the power model.
    pub fn with_power_model(mut self, power: PowerModel) -> Self {
        self.power = power;
        self
    }

    /// Backoff delay before re-attempt number `attempts + 1`:
    /// `retry_base_steps · 2^attempts`, with the exponent saturated at
    /// [`SimConfig::max_retries`] (and 16, against shift overflow).
    fn backoff(&self, attempts: usize) -> usize {
        let exp = attempts.min(self.config.max_retries).min(16) as u32;
        self.config.retry_base_steps.saturating_mul(1usize << exp)
    }

    /// Runs the simulation from `initial` and returns the outcome.
    ///
    /// Every VM starts OFF (the initial placement is made at the normal
    /// workload level, paper §III: the capacity constraint is imposed at
    /// `t = 0`).
    ///
    /// # Panics
    /// Panics if `initial` is incomplete or inconsistent with the specs.
    pub fn run(&self, initial: &Placement) -> SimOutcome {
        self.run_recorded(initial, &mut NoopRecorder)
    }

    /// [`run`](Self::run) with an observability [`Recorder`] attached:
    /// counters, gauges and histograms accumulate at each decision point,
    /// typed [`Event`]s flow into the recorder's journal, and — when the
    /// recorder requests it — cumulative per-PM CVR inputs are sampled on
    /// a fixed step interval.
    ///
    /// The recorder is *write-only*: no recorder method can influence
    /// control flow, RNG draws or any `f64` the simulation computes, so
    /// `run_recorded(p, &mut any_recorder)` returns a [`SimOutcome`]
    /// bit-identical to `run(p)` (differentially proptested in
    /// `tests/obs_differential.rs`). With [`NoopRecorder`]
    /// (`R::ENABLED == false`) every instrumentation site monomorphizes to
    /// nothing — [`run`](Self::run) *is* this function at zero cost.
    ///
    /// # Panics
    /// Panics if `initial` is incomplete or inconsistent with the specs.
    pub fn run_recorded<R: Recorder>(&self, initial: &Placement, rec: &mut R) -> SimOutcome {
        let st = self.init_state(initial);
        self.run_from(st, rec, &mut NoopHook)
    }

    /// Builds the step-0 [`RunState`] from an initial placement.
    ///
    /// # Panics
    /// Panics if `initial` is incomplete or inconsistent with the specs.
    pub(crate) fn init_state(&self, initial: &Placement) -> RunState {
        assert_eq!(
            initial.n_vms(),
            self.vms.len(),
            "placement/VM count mismatch"
        );
        assert_eq!(initial.n_pms, self.pms.len(), "placement/PM count mismatch");
        assert!(
            initial.is_complete(),
            "initial placement must place every VM"
        );

        let n = self.vms.len();
        let m = self.pms.len();
        let fault_process = self.config.faults.map(|cfg| FaultProcess::new(cfg, m));

        // The structure-of-arrays hot path: flattened chain parameters,
        // per-VM ON/OFF state, and the configured RNG layout.
        let mut core = WorkloadCore::new(
            self.vms,
            m,
            self.config.seed,
            self.config.rng_layout,
            self.config.threads,
        );
        core.set_class_sampler(self.config.class_sampler == crate::config::ClassSampler::Cached);

        let host: Vec<Option<usize>> = initial
            .assignment
            .iter()
            .map(|a| Some(a.expect("complete placement")))
            .collect();
        let mut hosted: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, j) in host.iter().enumerate() {
            hosted[j.expect("fresh placement")].push(i);
        }
        // Class-aggregated layout only: build the (PM, class) counters
        // from the initial placement. A no-op for the other layouts.
        core.class_init(&host);
        let loads: Vec<PmLoad> = hosted
            .iter()
            .map(|vs| PmLoad::rebuild(vs.iter().map(|&i| &self.vms[i])))
            .collect();

        RunState {
            core,
            fault_process,
            host,
            hosted,
            loads,
            fs: FaultState::new(n, m),
            dual: Vec::new(),
            vio_steps: vec![0usize; m],
            active_steps: vec![0usize; m],
            migrations: Vec::new(),
            failed_migrations: 0,
            retried_migrations: 0,
            pms_used_series: TimeSeries::new(0.0, self.config.sigma_secs),
            peak_pms_used: 0,
            total_violation_steps: 0,
            vm_violation_steps: vec![0usize; n],
            energy: 0.0,
            observed: vec![0.0f64; m],
            next_step: 0,
        }
    }

    /// Drives `st` to the horizon, invoking `hook` after every completed
    /// step, then closes out the run. `run_recorded` is exactly this
    /// with [`NoopHook`]; the checkpointer enters here with a restored
    /// mid-run state.
    pub(crate) fn run_from<R: Recorder, H: StepHook>(
        &self,
        mut st: RunState,
        rec: &mut R,
        hook: &mut H,
    ) -> SimOutcome {
        while st.next_step < self.config.steps {
            self.step_once(&mut st, rec);
            hook.after_step(self, &st, rec);
        }
        self.finish(st, rec)
    }

    /// Executes exactly one simulation step — the body of the historical
    /// `run_recorded` loop, verbatim (the golden pins certify the
    /// extraction changed no operation order).
    fn step_once<R: Recorder>(&self, st: &mut RunState, rec: &mut R) {
        let m = self.pms.len();
        let step = st.next_step;
        let RunState {
            core,
            fault_process,
            host,
            hosted,
            loads,
            fs,
            dual,
            vio_steps,
            active_steps,
            migrations,
            failed_migrations,
            retried_migrations,
            pms_used_series,
            peak_pms_used,
            total_violation_steps,
            vm_violation_steps,
            energy,
            observed,
            next_step,
        } = st;
        {
            // Migration-target headroom indexes, built lazily inside any
            // step that actually attempts a migration (observed demand —
            // and with it every headroom — changes each step, so the
            // indexes cannot carry over).
            let mut finder: Option<TargetFinder> = None;
            // 0. Fault transitions, then immediate batch evacuation of the
            //    VMs the crashes displaced. Driven by the dedicated fault
            //    RNG stream, so the workload sample paths below are
            //    untouched whether or not faults are configured.
            if let Some(process) = fault_process.as_mut() {
                let events = process.step(step);
                let mut displaced: Vec<usize> = Vec::new();
                for e in &events {
                    match e.kind {
                        FaultKind::Crash => {
                            fs.recovery.crashes += 1;
                            fs.pm_up[e.pm] = false;
                            fs.pm_overflow[e.pm] = 0;
                            dual.retain(|d| d.0 != e.pm);
                            // Class mode: fix the members' ON flags from
                            // the counters, then merge the PM's cells
                            // into the limbo pool.
                            core.class_crash(e.pm, &hosted[e.pm]);
                            let evicted = std::mem::take(&mut hosted[e.pm]);
                            loads[e.pm] = PmLoad::empty();
                            observed[e.pm] = 0.0;
                            rec.counter_inc(Counter::Crashes);
                            rec.counter_add(Counter::DisplacedVms, evicted.len() as u64);
                            if R::ENABLED {
                                rec.record_event(Event::Crash {
                                    step: step as u64,
                                    pm: e.pm,
                                    displaced: evicted.len(),
                                });
                            }
                            if evicted.is_empty() {
                                continue;
                            }
                            let record = fs.crash_records.len();
                            fs.crash_records.push(CrashRecord {
                                pm: e.pm,
                                step,
                                pending: evicted.len(),
                            });
                            for &i in &evicted {
                                host[i] = None;
                                fs.crash_of_vm[i] = Some(record);
                                fs.vm_degraded[i] = false;
                            }
                            displaced.extend(evicted);
                        }
                        FaultKind::Recovery => {
                            fs.recovery.recoveries += 1;
                            fs.pm_up[e.pm] = true;
                            rec.counter_inc(Counter::Recoveries);
                            if R::ENABLED {
                                rec.record_event(Event::Recovery {
                                    step: step as u64,
                                    pm: e.pm,
                                });
                            }
                        }
                    }
                }
                fs.fault_events.extend(events);
                // Displaced VMs abandon any pending overload retry — the
                // evacuation path owns them now.
                if !displaced.is_empty() && !fs.retry_queue.is_empty() {
                    let queue = std::mem::take(&mut fs.retry_queue);
                    for r in queue {
                        if r.kind == RetryKind::Overload && host[r.vm].is_none() {
                            fs.in_retry[r.vm] = false;
                            rec.counter_inc(Counter::RetryCancelled);
                            if R::ENABLED {
                                rec.record_event(Event::RetryCancelled {
                                    step: step as u64,
                                    vm: self.vms[r.vm].id,
                                });
                            }
                        } else {
                            fs.retry_queue.push(r);
                        }
                    }
                }
                if !displaced.is_empty() {
                    rec.record_value(HistId::EvacuationBatchSize, displaced.len() as u64);
                    let unplaced = self.evacuate_displaced(
                        step, &displaced, core, host, hosted, loads, observed, fs, rec,
                    );
                    for i in unplaced {
                        let from_pm = fs.crash_records
                            [fs.crash_of_vm[i].expect("displaced VM has a crash record")]
                        .pm;
                        fs.evacuations.push(EvacuationEvent {
                            step,
                            vm_id: self.vms[i].id,
                            from_pm,
                            to_pm: None,
                            degraded: false,
                        });
                        let delay = self.backoff(0);
                        rec.counter_inc(Counter::RetryEnqueued);
                        rec.record_value(HistId::RetryBackoffSteps, delay as u64);
                        if R::ENABLED {
                            rec.record_event(Event::Evacuation {
                                step: step as u64,
                                vm: self.vms[i].id,
                                from: from_pm,
                                to: None,
                                degraded: false,
                            });
                            rec.record_event(Event::RetryEnqueued {
                                step: step as u64,
                                vm: self.vms[i].id,
                                cause: RetryCause::Evacuation,
                                attempts: 0,
                                due_step: (step + delay) as u64,
                            });
                        }
                        fs.enqueue_retry(RetryEntry {
                            vm: i,
                            kind: RetryKind::Evacuation,
                            attempts: 0,
                            next_step: step + delay,
                        });
                    }
                }
            }

            // 1.+2. Workload evolution (state switches happen at interval
            //    boundaries, paper §IV-B) and local resizing (allocation
            //    == demand, so observed PM load is the sum of current
            //    demands). Every VM's chain advances — including stranded
            //    ones — so the RNG streams are identical regardless of
            //    fault and migration decisions. Draw order and summation
            //    order per layout are the core's determinism contract
            //    (DESIGN.md §8).
            core.step(step as u64, host, observed);
            for &(j, demand, _) in dual.iter() {
                observed[j] += demand;
            }

            // 3. Violation tracking. Violations on PMs currently hosting a
            //    degraded admission are additionally tagged as
            //    failure-attributable.
            let mut overloaded = Vec::new();
            for j in 0..m {
                if loads[j].is_empty() {
                    continue;
                }
                active_steps[j] += 1;
                if observed[j] > self.pms[j].capacity + CAP_EPS {
                    vio_steps[j] += 1;
                    *total_violation_steps += 1;
                    rec.counter_inc(Counter::ViolationSteps);
                    if fs.pm_overflow[j] > 0 {
                        fs.recovery.degraded_violation_steps += 1;
                        rec.counter_inc(Counter::DegradedViolationSteps);
                    }
                    if R::ENABLED {
                        rec.record_event(Event::Violation {
                            step: step as u64,
                            pm: j,
                            observed: observed[j],
                            capacity: self.pms[j].capacity,
                            degraded: fs.pm_overflow[j] > 0,
                        });
                    }
                    for &i in &hosted[j] {
                        vm_violation_steps[i] += 1;
                    }
                    overloaded.push(j);
                }
            }
            if R::ENABLED && !overloaded.is_empty() {
                rec.record_value(HistId::ViolationsPerStep, overloaded.len() as u64);
            }

            // 4. Live migration: a PM whose violation count exceeds the
            //    compliant budget ρ·t plus the CUSUM allowance sheds one
            //    VM (at most one per PM per period). The allowance keeps
            //    startup noise — where a single violation puts the running
            //    ratio above ρ — from evicting VMs off compliant PMs.
            if self.config.migrations_enabled {
                for &j in &overloaded {
                    let budget =
                        self.config.rho * active_steps[j] as f64 + self.config.violation_allowance;
                    if vio_steps[j] as f64 <= budget {
                        continue; // tolerated fluctuation
                    }
                    let overload = observed[j] - self.pms[j].capacity;
                    // Class mode: re-materialize this PM's per-VM ON
                    // flags from its counters before reading them.
                    core.class_sync_pm(j, &hosted[j]);
                    let Some(victim) = self.pick_victim(&hosted[j], &core.on, overload) else {
                        continue;
                    };
                    let vm = &self.vms[victim];
                    let vm_demand = vm.demand(core.on[victim]);
                    match self.pick_target(
                        &mut finder,
                        j,
                        vm,
                        vm_demand,
                        loads,
                        observed,
                        &fs.pm_up,
                    ) {
                        Some(target) => {
                            // Move the VM.
                            core.class_move(victim, Some(j), Some(target));
                            hosted[j].retain(|&i| i != victim);
                            hosted[target].push(victim);
                            host[victim] = Some(target);
                            loads[j] = PmLoad::rebuild(hosted[j].iter().map(|&i| &self.vms[i]));
                            loads[target].add(vm);
                            observed[j] -= vm_demand;
                            observed[target] += vm_demand;
                            if let Some(f) = finder.as_mut() {
                                f.refresh(self, j, loads, observed, &fs.pm_up);
                                f.refresh(self, target, loads, observed, &fs.pm_up);
                            }
                            if fs.vm_degraded[victim] {
                                // Normal admission elsewhere ends the
                                // degraded occupancy.
                                fs.vm_degraded[victim] = false;
                                fs.pm_overflow[j] -= 1;
                            }
                            if self.config.dual_count_steps > 0 {
                                dual.push((j, vm_demand, self.config.dual_count_steps));
                            }
                            migrations.push(MigrationEvent {
                                step,
                                vm_id: vm.id,
                                from_pm: j,
                                to_pm: target,
                            });
                            rec.counter_inc(Counter::Migrations);
                            if R::ENABLED {
                                rec.record_event(Event::Migration {
                                    step: step as u64,
                                    vm: vm.id,
                                    from: j,
                                    to: target,
                                    retried: false,
                                });
                            }
                        }
                        None => {
                            *failed_migrations += 1;
                            rec.counter_inc(Counter::FailedMigrations);
                            if R::ENABLED {
                                rec.record_event(Event::MigrationFailed {
                                    step: step as u64,
                                    vm: vm.id,
                                    pm: j,
                                });
                            }
                            if self.config.max_retries > 0 && !fs.in_retry[victim] {
                                let delay = self.backoff(0);
                                rec.counter_inc(Counter::RetryEnqueued);
                                rec.record_value(HistId::RetryBackoffSteps, delay as u64);
                                if R::ENABLED {
                                    rec.record_event(Event::RetryEnqueued {
                                        step: step as u64,
                                        vm: vm.id,
                                        cause: RetryCause::Overload,
                                        attempts: 0,
                                        due_step: (step + delay) as u64,
                                    });
                                }
                                fs.enqueue_retry(RetryEntry {
                                    vm: victim,
                                    kind: RetryKind::Overload,
                                    attempts: 0,
                                    next_step: step + delay,
                                });
                            }
                        }
                    }
                }
            }

            // 5. Retry queue: due overload entries re-attempt a single
            //    placement; due evacuation entries re-attempt as a batch
            //    (normal admission first, then the degraded margin).
            if fs.retry_queue.iter().any(|r| r.next_step <= step) {
                let queue = std::mem::take(&mut fs.retry_queue);
                let mut due_overload = Vec::new();
                let mut due_evac: Vec<RetryEntry> = Vec::new();
                for e in queue {
                    if e.next_step > step {
                        // Not due: stays queued, membership flag unchanged.
                        fs.retry_queue.push(e);
                    } else {
                        // Popped for processing; only another failure below
                        // re-queues it (and re-raises the flag).
                        fs.in_retry[e.vm] = false;
                        if e.kind == RetryKind::Overload {
                            due_overload.push(e);
                        } else {
                            due_evac.push(e);
                        }
                    }
                }

                for mut e in due_overload {
                    // Displaced meanwhile: the evacuation path owns it.
                    let Some(j) = host[e.vm] else {
                        rec.counter_inc(Counter::RetryCancelled);
                        if R::ENABLED {
                            rec.record_event(Event::RetryCancelled {
                                step: step as u64,
                                vm: self.vms[e.vm].id,
                            });
                        }
                        continue;
                    };
                    let budget =
                        self.config.rho * active_steps[j] as f64 + self.config.violation_allowance;
                    if vio_steps[j] as f64 <= budget {
                        rec.counter_inc(Counter::RetryCancelled);
                        if R::ENABLED {
                            rec.record_event(Event::RetryCancelled {
                                step: step as u64,
                                vm: self.vms[e.vm].id,
                            });
                        }
                        continue; // overload cleared itself; cancel
                    }
                    let vm = &self.vms[e.vm];
                    core.class_sync_pm(j, &hosted[j]);
                    let vm_demand = vm.demand(core.on[e.vm]);
                    match self.pick_target(
                        &mut finder,
                        j,
                        vm,
                        vm_demand,
                        loads,
                        observed,
                        &fs.pm_up,
                    ) {
                        Some(target) => {
                            core.class_move(e.vm, Some(j), Some(target));
                            hosted[j].retain(|&i| i != e.vm);
                            hosted[target].push(e.vm);
                            host[e.vm] = Some(target);
                            loads[j] = PmLoad::rebuild(hosted[j].iter().map(|&i| &self.vms[i]));
                            loads[target].add(vm);
                            observed[j] -= vm_demand;
                            observed[target] += vm_demand;
                            if let Some(f) = finder.as_mut() {
                                f.refresh(self, j, loads, observed, &fs.pm_up);
                                f.refresh(self, target, loads, observed, &fs.pm_up);
                            }
                            if fs.vm_degraded[e.vm] {
                                fs.vm_degraded[e.vm] = false;
                                fs.pm_overflow[j] -= 1;
                            }
                            if self.config.dual_count_steps > 0 {
                                dual.push((j, vm_demand, self.config.dual_count_steps));
                            }
                            migrations.push(MigrationEvent {
                                step,
                                vm_id: vm.id,
                                from_pm: j,
                                to_pm: target,
                            });
                            *retried_migrations += 1;
                            rec.counter_inc(Counter::Migrations);
                            rec.counter_inc(Counter::RetriedMigrations);
                            rec.counter_inc(Counter::RetryLandedOverload);
                            if R::ENABLED {
                                rec.record_event(Event::Migration {
                                    step: step as u64,
                                    vm: vm.id,
                                    from: j,
                                    to: target,
                                    retried: true,
                                });
                            }
                        }
                        None => {
                            e.attempts += 1;
                            if e.attempts < self.config.max_retries {
                                let delay = self.backoff(e.attempts);
                                e.next_step = step + delay;
                                rec.counter_inc(Counter::RetryReenqueued);
                                rec.record_value(HistId::RetryBackoffSteps, delay as u64);
                                if R::ENABLED {
                                    rec.record_event(Event::RetryEnqueued {
                                        step: step as u64,
                                        vm: vm.id,
                                        cause: RetryCause::Overload,
                                        attempts: e.attempts as u32,
                                        due_step: e.next_step as u64,
                                    });
                                }
                                fs.enqueue_retry(e);
                            } else {
                                // Abandoned; the trigger re-detects a
                                // persisting overload (the VM is hosted).
                                rec.counter_inc(Counter::RetryAbandoned);
                                if R::ENABLED {
                                    rec.record_event(Event::RetryAbandoned {
                                        step: step as u64,
                                        vm: vm.id,
                                        attempts: e.attempts as u32,
                                    });
                                }
                            }
                        }
                    }
                }

                if !due_evac.is_empty() {
                    let vms_due: Vec<usize> = due_evac.iter().map(|e| e.vm).collect();
                    // Class mode: the limbo counters have evolved since
                    // these VMs were displaced — refresh their flags.
                    core.class_sync_displaced(host);
                    let unplaced = self.evacuate_displaced(
                        step, &vms_due, core, host, hosted, loads, observed, fs, rec,
                    );
                    rec.counter_add(
                        Counter::RetryLandedEvacuation,
                        (vms_due.len() - unplaced.len()) as u64,
                    );
                    for i in unplaced {
                        let attempts = due_evac
                            .iter()
                            .find(|e| e.vm == i)
                            .expect("unplaced VM came from the due batch")
                            .attempts
                            + 1;
                        let delay = self.backoff(attempts);
                        rec.counter_inc(Counter::RetryReenqueued);
                        rec.record_value(HistId::RetryBackoffSteps, delay as u64);
                        if R::ENABLED {
                            rec.record_event(Event::RetryEnqueued {
                                step: step as u64,
                                vm: self.vms[i].id,
                                cause: RetryCause::Evacuation,
                                attempts: attempts as u32,
                                due_step: (step + delay) as u64,
                            });
                        }
                        fs.enqueue_retry(RetryEntry {
                            vm: i,
                            kind: RetryKind::Evacuation,
                            attempts,
                            next_step: step + delay,
                        });
                    }
                }
            }

            // 6. Bookkeeping.
            dual.iter_mut().for_each(|e| e.2 -= 1);
            dual.retain(|e| e.2 > 0);
            // Used count and energy in one pass over the PMs (both read
            // post-migration state, so neither can fold into the
            // violation loop above).
            let mut used = 0usize;
            for j in 0..m {
                if !loads[j].is_empty() {
                    used += 1;
                    let util = observed[j] / self.pms[j].capacity;
                    *energy += self.power.energy(util, self.config.sigma_secs);
                }
            }
            *peak_pms_used = (*peak_pms_used).max(used);
            pms_used_series.push(used as f64);
            if fault_process.is_some() {
                let stranded = host.iter().filter(|h| h.is_none()).count();
                fs.recovery.stranded_vm_steps += stranded;
                rec.counter_add(Counter::StrandedVmSteps, stranded as u64);
            }
            rec.counter_inc(Counter::Steps);
            if R::ENABLED {
                if rec.wants_step_events() {
                    rec.record_event(Event::Step {
                        step: step as u64,
                        pms_used: used,
                        violations: overloaded.len(),
                    });
                }
                if let Some(every) = rec.cvr_sample_interval() {
                    if (step + 1).is_multiple_of(every) {
                        rec.sample_cvr(step as u64, vio_steps, active_steps);
                    }
                }
            }
        }
        *next_step += 1;
    }

    /// Closes out a finished run: final CVR sample, residual retry
    /// counters, end-of-run gauges, and the assembled [`SimOutcome`].
    fn finish<R: Recorder>(&self, st: RunState, rec: &mut R) -> SimOutcome {
        let m = self.pms.len();
        let RunState {
            core,
            loads,
            mut fs,
            vio_steps,
            active_steps,
            migrations,
            failed_migrations,
            retried_migrations,
            pms_used_series,
            peak_pms_used,
            total_violation_steps,
            vm_violation_steps,
            energy,
            ..
        } = st;

        fs.recovery.unrestored_crashes = fs.crash_records.iter().filter(|r| r.pending > 0).count();

        if R::ENABLED {
            // Close out the recorder: a final CVR sample when the horizon
            // did not land on the sampling grid, residual retry-queue
            // depths, and the end-of-run gauges.
            if let Some(every) = rec.cvr_sample_interval() {
                if self.config.steps > 0 && !self.config.steps.is_multiple_of(every) {
                    rec.sample_cvr((self.config.steps - 1) as u64, &vio_steps, &active_steps);
                }
            }
            for e in &fs.retry_queue {
                rec.counter_inc(match e.kind {
                    RetryKind::Overload => Counter::RetryResidualOverload,
                    RetryKind::Evacuation => Counter::RetryResidualEvacuation,
                });
            }
            rec.gauge_set(
                Gauge::FinalPmsUsed,
                loads.iter().filter(|l| !l.is_empty()).count() as f64,
            );
            rec.gauge_set(Gauge::PeakPmsUsed, peak_pms_used as f64);
            rec.gauge_set(Gauge::EnergyJoules, energy);
            // Class-aggregated sampler-cache counters (zero under the
            // other layouts, and left unrecorded to keep traces sparse).
            if let Some(stats) = core.class_cache_stats() {
                rec.counter_add(Counter::BinomialTableHits, stats.hits);
                rec.counter_add(Counter::BinomialTableMisses, stats.misses);
                rec.counter_add(Counter::BinomialTableEvictions, stats.evictions);
            }
        }

        let cvr_per_pm = (0..m)
            .filter(|&j| active_steps[j] > 0)
            .map(|j| (j, vio_steps[j] as f64 / active_steps[j] as f64))
            .collect();
        let final_pms_used = loads.iter().filter(|l| !l.is_empty()).count();
        SimOutcome {
            cvr_per_pm,
            migrations,
            failed_migrations,
            retried_migrations,
            pms_used_series,
            final_pms_used,
            peak_pms_used,
            total_violation_steps,
            vm_violation_steps,
            energy_joules: energy,
            fault_events: fs.fault_events,
            evacuations: fs.evacuations,
            recovery: fs.recovery,
        }
    }

    /// Re-places a batch of displaced VMs: one pass under the active
    /// policy, then — for whatever is left — one pass through the
    /// [`DegradedAdmission`] overflow margin. Successful placements emit
    /// [`EvacuationEvent`]s and settle their crash records; the returned
    /// VMs found no PM under either rule.
    #[allow(clippy::too_many_arguments)]
    fn evacuate_displaced<R: Recorder>(
        &self,
        step: usize,
        displaced: &[usize],
        core: &mut WorkloadCore,
        host: &mut [Option<usize>],
        hosted: &mut [Vec<usize>],
        loads: &mut [PmLoad],
        observed: &mut [f64],
        fs: &mut FaultState,
        rec: &mut R,
    ) -> Vec<usize> {
        let leftover = self.evacuate_pass(
            step,
            displaced,
            self.policy,
            false,
            core,
            host,
            hosted,
            loads,
            observed,
            fs,
            rec,
        );
        if leftover.is_empty() || self.config.degraded_epsilon <= 0.0 {
            return leftover;
        }
        let degraded = DegradedAdmission::new(self.policy, self.config.degraded_epsilon);
        self.evacuate_pass(
            step, &leftover, &degraded, true, core, host, hosted, loads, observed, fs, rec,
        )
    }

    /// One admission pass of [`Self::evacuate_displaced`] under `policy`,
    /// driven by [`evacuate_batch`] over a fresh [`HeadroomIndex`] (down
    /// PMs enter as `NEG_INFINITY` and are never probed).
    #[allow(clippy::too_many_arguments)]
    fn evacuate_pass<R: Recorder>(
        &self,
        step: usize,
        displaced: &[usize],
        policy: &dyn RuntimePolicy,
        degraded: bool,
        core: &mut WorkloadCore,
        host: &mut [Option<usize>],
        hosted: &mut [Vec<usize>],
        loads: &mut [PmLoad],
        observed: &mut [f64],
        fs: &mut FaultState,
        rec: &mut R,
    ) -> Vec<usize> {
        let demands: Vec<f64> = displaced
            .iter()
            .map(|&i| policy.demand_measure(&self.vms[i], self.vms[i].demand(core.on[i])))
            .collect();
        let headrooms: Vec<f64> = (0..self.pms.len())
            .map(|j| {
                if !fs.pm_up[j] {
                    return f64::NEG_INFINITY;
                }
                let pm = PmRuntime {
                    load: loads[j],
                    observed: observed[j],
                };
                policy.headroom(&pm, self.pms[j].capacity)
            })
            .collect();
        let mut index = HeadroomIndex::new(&headrooms);
        let out = evacuate_batch_recorded(&demands, &mut index, rec, |j, slot| {
            let i = displaced[slot];
            let vm = &self.vms[i];
            let vm_demand = vm.demand(core.on[i]);
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            if !policy.admits(vm, vm_demand, &pm, self.pms[j].capacity) {
                return None;
            }
            core.class_move(i, None, Some(j));
            hosted[j].push(i);
            host[i] = Some(j);
            loads[j].add(vm);
            observed[j] += vm_demand;
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            Some(policy.headroom(&pm, self.pms[j].capacity))
        });
        for &(slot, j) in &out.placed {
            let i = displaced[slot];
            let record = fs.crash_of_vm[i]
                .take()
                .expect("displaced VM has a crash record");
            fs.evacuations.push(EvacuationEvent {
                step,
                vm_id: self.vms[i].id,
                from_pm: fs.crash_records[record].pm,
                to_pm: Some(j),
                degraded,
            });
            rec.counter_inc(if degraded {
                Counter::EvacuationsDegraded
            } else {
                Counter::EvacuationsPlaced
            });
            if R::ENABLED {
                rec.record_event(Event::Evacuation {
                    step: step as u64,
                    vm: self.vms[i].id,
                    from: fs.crash_records[record].pm,
                    to: Some(j),
                    degraded,
                });
                if degraded {
                    rec.record_event(Event::Admission {
                        step: step as u64,
                        vm: self.vms[i].id,
                        pm: j,
                        degraded: true,
                    });
                }
            }
            if degraded {
                fs.vm_degraded[i] = true;
                fs.pm_overflow[j] += 1;
                fs.recovery.degraded_admissions += 1;
            }
            fs.crash_records[record].pending -= 1;
            if fs.crash_records[record].pending == 0 {
                fs.recovery
                    .time_to_restore
                    .push(step - fs.crash_records[record].step);
            }
        }
        out.unplaced.iter().map(|&slot| displaced[slot]).collect()
    }

    /// Victim selection per the configured [`VictimPolicy`].
    ///
    /// [`VictimPolicy`]: crate::config::VictimPolicy
    fn pick_victim(&self, hosted: &[usize], on: &[bool], overload: f64) -> Option<usize> {
        use crate::config::VictimPolicy;
        if hosted.is_empty() {
            return None;
        }
        let largest_on = || {
            hosted.iter().copied().max_by(|&a, &b| {
                let key = |i: usize| (on[i] as u8, self.vms[i].demand(on[i]));
                let (ka, kb) = (key(a), key(b));
                ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
            })
        };
        match self.config.victim_policy {
            VictimPolicy::LargestOnDemand => largest_on(),
            VictimPolicy::SmallestSufficient => hosted
                .iter()
                .copied()
                .filter(|&i| on[i] && self.vms[i].demand(true) >= overload)
                .min_by(|&a, &b| {
                    self.vms[a]
                        .demand(true)
                        .total_cmp(&self.vms[b].demand(true))
                })
                .or_else(largest_on),
            VictimPolicy::SmallestBase => hosted
                .iter()
                .copied()
                .min_by(|&a, &b| self.vms[a].r_b.total_cmp(&self.vms[b].r_b)),
        }
    }

    /// Target selection: first *active* up PM (other than the source) the
    /// policy admits the VM on, else the first empty up PM in the pool.
    ///
    /// Candidates come from the per-step [`TargetFinder`] headroom
    /// indexes rather than a linear scan over all m PMs: a PM whose
    /// headroom is below `demand_measure(vm)` cannot admit the VM (the
    /// [`RuntimePolicy`] headroom contract), so `first_at_least` skips
    /// straight to the next plausible index and the full `admits` check
    /// runs only there. By that contract the result is identical to the
    /// linear scan — certified by the differential test
    /// `indexed_target_selection_matches_linear_scan` and by the golden
    /// pins, whose constants predate the index.
    #[allow(clippy::too_many_arguments)]
    fn pick_target(
        &self,
        finder: &mut Option<TargetFinder>,
        source: usize,
        vm: &VmSpec,
        vm_demand: f64,
        loads: &[PmLoad],
        observed: &[f64],
        pm_up: &[bool],
    ) -> Option<usize> {
        let f = finder.get_or_insert_with(|| TargetFinder::build(self, loads, observed, pm_up));
        let threshold = self.policy.demand_measure(vm, vm_demand);
        let admit = |j: usize| {
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            self.policy.admits(vm, vm_demand, &pm, self.pms[j].capacity)
        };
        for index in [&f.active, &f.empty] {
            let mut from = 0;
            while let Some(j) = index.first_at_least(from, threshold) {
                if j != source && admit(j) {
                    return Some(j);
                }
                from = j + 1;
            }
        }
        None
    }

    /// Reference implementation of [`Self::pick_target`]: the pre-index
    /// linear scan over every PM, kept as the oracle for the
    /// differential test.
    #[cfg(test)]
    fn pick_target_linear(
        &self,
        source: usize,
        vm: &VmSpec,
        vm_demand: f64,
        loads: &[PmLoad],
        observed: &[f64],
        pm_up: &[bool],
    ) -> Option<usize> {
        let admit = |j: usize| {
            let pm = PmRuntime {
                load: loads[j],
                observed: observed[j],
            };
            self.policy.admits(vm, vm_demand, &pm, self.pms[j].capacity)
        };
        let active = (0..self.pms.len())
            .find(|&j| j != source && pm_up[j] && !loads[j].is_empty() && admit(j));
        active.or_else(|| {
            (0..self.pms.len())
                .find(|&j| j != source && pm_up[j] && loads[j].is_empty() && admit(j))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;
    use crate::policy::{ObservedPolicy, QueuePolicy};
    use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};

    fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 0.01, 0.09, r_b, r_e)
    }

    fn farm(count: usize, cap: f64) -> Vec<PmSpec> {
        (0..count).map(|j| PmSpec::new(j, cap)).collect()
    }

    fn config(steps: usize, seed: u64, migrations: bool) -> SimConfig {
        SimConfig {
            steps,
            seed,
            migrations_enabled: migrations,
            ..Default::default()
        }
    }

    #[test]
    fn queue_placement_respects_rho_without_migration() {
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit(&vms, &pms, &strategy).unwrap();
        let policy = QueuePolicy::new(strategy);
        let sim = Simulator::new(&vms, &pms, &policy, config(20_000, 1, false));
        let out = sim.run(&placement);
        // Mean CVR must honor ρ with margin; individual PMs may exceed it
        // slightly (the paper observes the same).
        assert!(out.mean_cvr() <= 0.012, "mean CVR {}", out.mean_cvr());
        assert!(out.max_cvr() <= 0.05, "max CVR {}", out.max_cvr());
        assert!(out.migrations.is_empty());
    }

    #[test]
    fn base_placement_violates_massively_without_migration() {
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let sim = Simulator::new(&vms, &pms, &policy, config(5_000, 1, false));
        let out = sim.run(&placement);
        // 10 VMs per PM at Σ R_b = C: any spike violates. Pr[≥1 ON] ≈ 65%.
        assert!(out.mean_cvr() > 0.3, "mean CVR {}", out.mean_cvr());
    }

    #[test]
    fn queue_incurs_far_fewer_migrations_than_rb() {
        let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(200, 100.0);

        let qs = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let q_placement = first_fit(&vms, &pms, &qs).unwrap();
        let q_policy = QueuePolicy::new(qs);
        let q_out = Simulator::new(&vms, &pms, &q_policy, config(100, 7, true)).run(&q_placement);

        let b_placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let b_policy = ObservedPolicy::rb();
        let b_out = Simulator::new(&vms, &pms, &b_policy, config(100, 7, true)).run(&b_placement);

        assert!(
            b_out.total_migrations() > 5 * q_out.total_migrations().max(1),
            "RB {} vs QUEUE {}",
            b_out.total_migrations(),
            q_out.total_migrations()
        );
    }

    #[test]
    fn rb_pm_count_grows_from_overtight_packing() {
        let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(200, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let initial = placement.pms_used();
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(100, 3, true)).run(&placement);
        assert!(
            out.final_pms_used > initial,
            "RB must spill to extra PMs: {} vs initial {initial}",
            out.final_pms_used
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let vms: Vec<VmSpec> = (0..32).map(|i| vm(i, 10.0, 8.0)).collect();
        let pms = farm(100, 90.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run =
            |seed| Simulator::new(&vms, &pms, &policy, config(80, seed, true)).run(&placement);
        let (a, b) = (run(11), run(11));
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.final_pms_used, b.final_pms_used);
        assert_eq!(a.total_violation_steps, b.total_violation_steps);
        let c = run(12);
        // Different seed, different sample path (overwhelmingly likely).
        assert!(a.migrations != c.migrations || a.total_violation_steps != c.total_violation_steps);
    }

    #[test]
    fn energy_scales_with_pms_used() {
        let vms: Vec<VmSpec> = (0..10).map(|i| vm(i, 10.0, 5.0)).collect();
        let pms = farm(20, 100.0);
        // One PM for everything vs one VM per PM.
        let consolidated = Placement {
            assignment: vec![Some(0); 10],
            n_pms: 20,
        };
        let spread = Placement {
            assignment: (0..10).map(Some).collect(),
            n_pms: 20,
        };
        let policy = ObservedPolicy::rb();
        let cfg = config(50, 5, false);
        let e1 = Simulator::new(&vms, &pms, &policy, cfg)
            .run(&consolidated)
            .energy_joules;
        let e2 = Simulator::new(&vms, &pms, &policy, cfg)
            .run(&spread)
            .energy_joules;
        assert!(e2 > 3.0 * e1, "spread {e2} vs consolidated {e1}");
    }

    #[test]
    fn pool_exhaustion_counts_failed_migrations() {
        // Overloaded tiny farm with zero spare capacity anywhere.
        let vms: Vec<VmSpec> = (0..8).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(1, 80.0);
        let placement = Placement {
            assignment: vec![Some(0); 8],
            n_pms: 1,
        };
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(2_000, 2, true)).run(&placement);
        assert_eq!(out.total_migrations(), 0, "nowhere to go");
        assert!(out.failed_migrations > 0);
        assert_eq!(out.retried_migrations, 0, "retries fail on a 1-PM farm");
    }

    #[test]
    fn series_lengths_match_steps() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(2, 50.0);
        let placement = Placement {
            assignment: vec![Some(0)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(37, 1, true)).run(&placement);
        assert_eq!(out.pms_used_series.len(), 37);
        assert_eq!(out.final_pms_used, 1);
        assert_eq!(out.peak_pms_used, 1);
        assert_eq!(out.cvr_per_pm.len(), 1);
    }

    #[test]
    #[should_panic(expected = "place every VM")]
    fn incomplete_placement_rejected() {
        let vms = vec![vm(0, 5.0, 5.0)];
        let pms = farm(1, 50.0);
        let placement = Placement::empty(1, 1);
        let policy = ObservedPolicy::rb();
        let _ = Simulator::new(&vms, &pms, &policy, config(5, 1, false)).run(&placement);
    }

    #[test]
    fn vm_violation_exposure_sums_to_pm_accounting() {
        let vms: Vec<VmSpec> = (0..30).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(30, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(2_000, 4, false)).run(&placement);
        // Each violating PM-step exposes exactly its hosted VMs: with the
        // static 10-per-PM packing, Σ per-VM exposure = 10 × PM-steps.
        let total_exposure: usize = out.vm_violation_steps.iter().sum();
        assert_eq!(total_exposure, 10 * out.total_violation_steps);
        assert!(out.vm_violation_steps.iter().any(|&v| v > 0));
        assert_eq!(out.vm_violation_steps.len(), vms.len());
    }

    #[test]
    fn victim_policies_all_run_and_differ() {
        use crate::config::VictimPolicy;
        // Heterogeneous sizes so the policies actually pick differently.
        let vms: Vec<VmSpec> = (0..40)
            .map(|i| vm(i, 6.0 + (i % 5) as f64 * 3.0, 4.0 + (i % 3) as f64 * 8.0))
            .collect();
        let pms = farm(120, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run = |vp: VictimPolicy| {
            let cfg = SimConfig {
                steps: 100,
                seed: 13,
                victim_policy: vp,
                ..Default::default()
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let largest = run(VictimPolicy::LargestOnDemand);
        let smallest = run(VictimPolicy::SmallestSufficient);
        let base = run(VictimPolicy::SmallestBase);
        // All three stay structurally sound and actually migrate.
        for out in [&largest, &smallest, &base] {
            assert!(out.total_migrations() > 0);
            for e in &out.migrations {
                assert_ne!(e.from_pm, e.to_pm);
            }
        }
        // Policy choice changes the event stream for this fleet/seed.
        assert!(
            largest.migrations != smallest.migrations || largest.migrations != base.migrations,
            "policies should not coincide on a heterogeneous fleet"
        );
        // SmallestSufficient moves less demand per migration on average.
        let moved = |out: &SimOutcome| -> f64 {
            out.migrations
                .iter()
                .map(|e| vms[e.vm_id].r_p())
                .sum::<f64>()
                / out.total_migrations().max(1) as f64
        };
        assert!(
            moved(&smallest) <= moved(&largest) + 1e-9,
            "smallest-sufficient should move lighter VMs: {} vs {}",
            moved(&smallest),
            moved(&largest)
        );
    }

    #[test]
    fn dual_count_charges_source_during_copy() {
        // With a long dual-count window, migrations inflate the source's
        // observed load, measurably increasing violation pressure.
        let vms: Vec<VmSpec> = (0..40).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(120, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let base_cfg = config(100, 9, true);
        let dual_cfg = SimConfig {
            dual_count_steps: 3,
            ..base_cfg
        };
        let plain = Simulator::new(&vms, &pms, &policy, base_cfg).run(&placement);
        let dual = Simulator::new(&vms, &pms, &policy, dual_cfg).run(&placement);
        assert!(
            dual.total_violation_steps >= plain.total_violation_steps,
            "copy overhead cannot reduce violations: {} vs {}",
            dual.total_violation_steps,
            plain.total_violation_steps
        );
    }

    // ---- fault injection and recovery ----

    /// A VM that switches ON at the first step and (effectively) never
    /// switches OFF — deterministic demand, for scenario construction.
    /// (`p_off = 0` is rejected by [`VmSpec::new`], so use a probability
    /// far below anything a fixed-seed run of this length can sample.)
    fn pinned_on(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 1.0, 1e-12, r_b, r_e)
    }

    #[test]
    fn fault_free_runs_have_empty_fault_accounting() {
        let vms: Vec<VmSpec> = (0..16).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(40, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let out = Simulator::new(&vms, &pms, &policy, config(500, 6, true)).run(&placement);
        assert!(out.fault_events.is_empty());
        assert!(out.evacuations.is_empty());
        assert_eq!(out.recovery, RecoveryStats::default());
        assert_eq!(out.burstiness_violation_steps(), out.total_violation_steps);
    }

    #[test]
    fn faulty_runs_are_deterministic_and_workload_stream_is_unperturbed() {
        let vms: Vec<VmSpec> = (0..24).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(60, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let faulty = SimConfig {
            faults: Some(FaultConfig {
                mtbf_steps: 120.0,
                mttr_steps: 20.0,
                ..Default::default()
            }),
            ..config(600, 21, true)
        };
        let a = Simulator::new(&vms, &pms, &policy, faulty).run(&placement);
        let b = Simulator::new(&vms, &pms, &policy, faulty).run(&placement);
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.evacuations, b.evacuations);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.recovery, b.recovery);
        assert_eq!(a.energy_joules.to_bits(), b.energy_joules.to_bits());
        assert!(a.recovery.crashes > 0, "MTBF 120 over 600 steps must crash");

        // A different fault seed reshuffles the schedule but must not touch
        // the workload RNG: the ON-OFF sample paths stay the same, which we
        // can observe through a placement-independent statistic on a run
        // without migrations (violations depend only on demands).
        let frozen = |fault_seed| {
            let cfg = SimConfig {
                migrations_enabled: false,
                faults: Some(FaultConfig {
                    mtbf_steps: 1e12, // effectively never crashes
                    seed: fault_seed,
                    ..Default::default()
                }),
                ..config(600, 21, false)
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let (x, y) = (frozen(1), frozen(2));
        assert_eq!(x.total_violation_steps, y.total_violation_steps);
        assert_eq!(x.vm_violation_steps, y.vm_violation_steps);
    }

    #[test]
    fn crashes_with_ample_capacity_restore_instantly() {
        let vms: Vec<VmSpec> = (0..12).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(60, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            faults: Some(FaultConfig {
                mtbf_steps: 80.0,
                mttr_steps: 15.0,
                ..Default::default()
            }),
            ..config(800, 5, true)
        };
        let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
        assert!(out.recovery.crashes > 0);
        assert!(
            !out.evacuations.is_empty(),
            "crashes on a populated fleet must displace VMs"
        );
        // 60 PMs for 12 small VMs: every displaced VM lands immediately.
        assert!(out.evacuations.iter().all(|e| e.to_pm.is_some()));
        assert_eq!(out.recovery.unrestored_crashes, 0);
        assert!(out.recovery.time_to_restore.iter().all(|&t| t == 0));
        assert_eq!(out.recovery.mean_time_to_restore(), Some(0.0));
        assert_eq!(out.recovery.stranded_vm_steps, 0);
        assert_eq!(out.recovery.degraded_admissions, 0);
        // Evacuations never target a crashed-and-still-down PM.
        for e in &out.evacuations {
            assert_ne!(e.to_pm, Some(e.from_pm), "landed back on the crash step");
        }
    }

    #[test]
    fn displaced_vms_are_queued_never_dropped_when_pool_is_exhausted() {
        // Two PMs, both nearly full of always-ON tenants; no spares. A
        // crash strands VMs: nothing admits them until the PM recovers.
        let vms: Vec<VmSpec> = (0..4).map(|i| pinned_on(i, 45.0, 0.0)).collect();
        let pms = farm(2, 100.0);
        let placement = Placement {
            assignment: vec![Some(0), Some(0), Some(1), Some(1)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let mut found = None;
        for fault_seed in 0..300 {
            let cfg = SimConfig {
                degraded_epsilon: 0.0, // no overflow margin: strand outright
                faults: Some(FaultConfig {
                    mtbf_steps: 60.0,
                    mttr_steps: 12.0,
                    seed: fault_seed,
                    ..Default::default()
                }),
                ..config(200, 3, false)
            };
            let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
            if out.recovery.crashes > 0 && out.recovery.stranded_vm_steps > 0 {
                found = Some(out);
                break;
            }
        }
        let out = found.expect("some fault seed must strand a VM");
        // The stranded VMs entered the retry queue (queued-with-None
        // events), and every eventual landing is a later Some event.
        assert!(out.evacuations.iter().any(|e| e.to_pm.is_none()));
        let displaced_total: usize = out
            .fault_events
            .iter()
            .filter(|e| e.kind == FaultKind::Crash)
            .count(); // upper bound context only; the real check follows
        let _ = displaced_total;
        // Conservation: every crash record is either fully restored or
        // still counted as unrestored — no displaced VM vanishes.
        let displacing_crashes =
            out.recovery.time_to_restore.len() + out.recovery.unrestored_crashes;
        assert!(displacing_crashes > 0);
        // Any restored crash on this starved farm took at least one step.
        assert!(out.recovery.time_to_restore.iter().all(|&t| t > 0));
    }

    #[test]
    fn degraded_admission_spills_into_overflow_margin_and_tags_violations() {
        // Two PMs at 90/100 observed with always-ON tenants. A crash of
        // one PM displaces two 45-demand VMs; the survivor admits one only
        // through the ε = 0.5 margin (90 + 45 = 135 ≤ 150), the other is
        // queued until the crashed PM returns.
        let vms: Vec<VmSpec> = (0..4).map(|i| pinned_on(i, 45.0, 0.0)).collect();
        let pms = farm(2, 100.0);
        let placement = Placement {
            assignment: vec![Some(0), Some(0), Some(1), Some(1)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let mut found = None;
        for fault_seed in 0..300 {
            let cfg = SimConfig {
                degraded_epsilon: 0.5,
                faults: Some(FaultConfig {
                    mtbf_steps: 60.0,
                    mttr_steps: 12.0,
                    seed: fault_seed,
                    ..Default::default()
                }),
                ..config(200, 3, false)
            };
            let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
            if out.recovery.degraded_admissions > 0 && out.recovery.degraded_violation_steps > 0 {
                found = Some(out);
                break;
            }
        }
        let out = found.expect("some fault seed must exercise the degraded margin");
        assert!(out
            .evacuations
            .iter()
            .any(|e| e.degraded && e.to_pm.is_some()));
        // Degraded exposure is reported separately from burstiness.
        assert!(out.recovery.degraded_violation_steps <= out.total_violation_steps);
        assert_eq!(
            out.burstiness_violation_steps() + out.recovery.degraded_violation_steps,
            out.total_violation_steps
        );
    }

    #[test]
    fn pending_overload_migrant_lands_on_later_freed_pm_via_retry_queue() {
        // PM 0 hosts a permanent 60-demand tenant plus a burster that
        // overloads it; PM 1 hosts an oscillating tenant that sometimes
        // leaves room. With retries disabled, the trigger only re-attempts
        // while PM 0 is *currently* violating, so for some seeds the
        // migration never happens; the retry queue re-attempts on its own
        // backoff schedule and lands the migrant on PM 1 once it frees up.
        let vms = vec![
            pinned_on(0, 30.0, 30.0),               // B: ON forever, demand 60
            VmSpec::new(1, 0.05, 0.15, 5.0, 40.0),  // A: bursty trigger, 5→45
            VmSpec::new(2, 0.30, 0.05, 30.0, 30.0), // C: PM 1 occupant, 30→60
        ];
        let pms = farm(2, 100.0);
        let placement = Placement {
            assignment: vec![Some(0), Some(0), Some(1)],
            n_pms: 2,
        };
        let policy = ObservedPolicy::rb();
        let run = |seed: u64, max_retries: usize| {
            let cfg = SimConfig {
                steps: 120,
                seed,
                max_retries,
                retry_base_steps: 2,
                ..Default::default()
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let mut witnessed = false;
        for seed in 0..1000 {
            let without = run(seed, 0);
            if without.total_migrations() > 0 || without.failed_migrations == 0 {
                continue; // trigger alone solved (or never fired) this path
            }
            let with = run(seed, 10);
            if with.total_migrations() == 0 {
                continue; // PM 1 never freed up at a retry instant
            }
            // The retry queue — and only it — placed the migrant, onto the
            // later-freed PM 1.
            assert!(with.retried_migrations > 0, "seed {seed}");
            assert_eq!(with.migrations[0].to_pm, 1, "seed {seed}");
            assert_eq!(with.migrations[0].from_pm, 0, "seed {seed}");
            witnessed = true;
            break;
        }
        assert!(
            witnessed,
            "no seed in 0..1000 separated trigger-retry from queue-retry"
        );
    }

    #[test]
    fn max_retries_zero_reproduces_the_legacy_drop() {
        let vms: Vec<VmSpec> = (0..8).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(1, 80.0);
        let placement = Placement {
            assignment: vec![Some(0); 8],
            n_pms: 1,
        };
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            max_retries: 0,
            ..config(2_000, 2, true)
        };
        let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
        assert_eq!(out.total_migrations(), 0);
        assert_eq!(out.retried_migrations, 0);
        assert!(out.failed_migrations > 0);
    }

    #[test]
    fn repeated_failed_migrations_never_duplicate_retry_entries() {
        // A single overcommitted PM with no escape target: the trigger
        // fails a migration on (nearly) every violating step, each
        // failure tries to enqueue the victim, and retries themselves
        // keep failing and re-enqueueing until the budget runs out. The
        // `debug_assert` in `FaultState::enqueue_retry` cross-checks the
        // `in_retry` flag against an actual queue scan on every push, so
        // this run is the regression proof that the O(1) flag never lets
        // a VM hold two entries.
        let vms: Vec<VmSpec> = (0..10).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(1, 80.0);
        let placement = Placement {
            assignment: vec![Some(0); 10],
            n_pms: 1,
        };
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            retry_base_steps: 1,
            max_retries: 4,
            ..config(3_000, 11, true)
        };
        let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
        assert!(
            out.failed_migrations > 100,
            "scenario must exercise the dedup path heavily, got {}",
            out.failed_migrations
        );
        assert_eq!(out.total_migrations(), 0);
    }

    #[test]
    fn indexed_target_selection_matches_linear_scan() {
        // Heterogeneous pool: varying capacities, occupancy, up/down
        // state, plus source exclusion — swept across two policies and
        // every VM as the migrant. The indexed path must agree with the
        // linear oracle exactly, per the RuntimePolicy headroom contract.
        let vms: Vec<VmSpec> = (0..40)
            .map(|i| {
                VmSpec::new(
                    i,
                    0.02 + (i % 5) as f64 * 0.015,
                    0.08,
                    6.0 + (i % 4) as f64,
                    9.0,
                )
            })
            .collect();
        let pms: Vec<PmSpec> = (0..24)
            .map(|j| PmSpec::new(j, 40.0 + (j % 7) as f64 * 12.0))
            .collect();
        let mut hosted: Vec<Vec<usize>> = vec![Vec::new(); pms.len()];
        for (i, vm) in vms.iter().enumerate() {
            // Pack unevenly and leave PMs 5, 11, 17, 23 empty.
            let j = (i * 7 + i / 3) % pms.len();
            let j = if j % 6 == 5 { (j + 1) % pms.len() } else { j };
            hosted[j].push(vm.id);
        }
        let loads: Vec<PmLoad> = hosted
            .iter()
            .map(|vs| PmLoad::rebuild(vs.iter().map(|&i| &vms[i])))
            .collect();
        let observed: Vec<f64> = hosted
            .iter()
            .map(|vs| vs.iter().map(|&i| vms[i].demand(i % 2 == 0)).sum())
            .collect();
        let pm_up: Vec<bool> = (0..pms.len()).map(|j| j % 9 != 4).collect();

        let rb = ObservedPolicy::rb();
        let queue = QueuePolicy::new(QueueStrategy::build(16, 0.02, 0.08, 0.01));
        let policies: [&dyn crate::policy::RuntimePolicy; 2] = [&rb, &queue];
        for (p, policy) in policies.iter().enumerate() {
            let sim = Simulator::new(&vms, &pms, *policy, config(10, 1, true));
            for (i, vm) in vms.iter().enumerate() {
                for source in [0usize, 7, 23] {
                    for &on in &[false, true] {
                        let demand = vm.demand(on);
                        let mut finder = None;
                        let fast = sim.pick_target(
                            &mut finder,
                            source,
                            vm,
                            demand,
                            &loads,
                            &observed,
                            &pm_up,
                        );
                        let slow =
                            sim.pick_target_linear(source, vm, demand, &loads, &observed, &pm_up);
                        assert_eq!(fast, slow, "policy {p}, vm {i}, source {source}, on {on}");
                    }
                }
            }
        }
    }

    #[test]
    fn pervm_layout_outcomes_are_thread_count_invariant() {
        use crate::config::RngLayout;
        // Full engine runs (migrations + faults) must agree to the bit
        // across thread counts under RngLayout::PerVm, including with a
        // fleet larger than one chunk.
        let vms: Vec<VmSpec> = (0..700).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(900, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run = |threads: usize| {
            let cfg = SimConfig {
                steps: 120,
                seed: 13,
                rng_layout: RngLayout::PerVm,
                threads,
                faults: Some(FaultConfig {
                    mtbf_steps: 200.0,
                    mttr_steps: 30.0,
                    ..Default::default()
                }),
                ..Default::default()
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let base = run(1);
        assert!(base.total_migrations() > 0, "scenario must be non-trivial");
        for threads in [2usize, 8] {
            let other = run(threads);
            assert_eq!(base.total_migrations(), other.total_migrations());
            assert_eq!(base.failed_migrations, other.failed_migrations);
            assert_eq!(base.final_pms_used, other.final_pms_used);
            assert_eq!(base.total_violation_steps, other.total_violation_steps);
            assert_eq!(
                base.energy_joules.to_bits(),
                other.energy_joules.to_bits(),
                "energy bits diverged at {threads} threads"
            );
            assert_eq!(base.vm_violation_steps, other.vm_violation_steps);
            assert_eq!(base.fault_events.len(), other.fault_events.len());
            assert_eq!(base.evacuations.len(), other.evacuations.len());
        }
    }

    #[test]
    fn pervm_layout_differs_from_shared_but_same_law() {
        use crate::config::RngLayout;
        // Same seed, different layout: a different sample path (the
        // pairing of streams to VMs changed) drawn from the same process.
        let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
        let pms = farm(48, 100.0);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let run = |layout: RngLayout| {
            let cfg = SimConfig {
                rng_layout: layout,
                ..config(4_000, 3, false)
            };
            Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
        };
        let shared = run(RngLayout::Shared);
        let pervm = run(RngLayout::PerVm);
        assert_ne!(
            shared.energy_joules.to_bits(),
            pervm.energy_joules.to_bits(),
            "layouts must select different sample paths"
        );
        // Identical stationary law: long-run mean CVRs in the same band.
        assert!(
            (shared.mean_cvr() - pervm.mean_cvr()).abs() < 0.1 * shared.mean_cvr().max(0.01),
            "shared {} vs per-vm {}",
            shared.mean_cvr(),
            pervm.mean_cvr()
        );
    }
}
