//! Event records emitted by the simulator.

/// One live-migration event (the raw data behind Figs. 9(a) and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationEvent {
    /// Update period at which the migration happened.
    pub step: usize,
    /// Id of the migrated VM.
    pub vm_id: usize,
    /// Source PM index.
    pub from_pm: usize,
    /// Target PM index.
    pub to_pm: usize,
}

/// Direction of a PM fault transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The PM went down; its hosted VMs were displaced.
    Crash,
    /// The PM came back up (empty) and rejoined the target pool.
    Recovery,
}

/// One PM crash or recovery, emitted by the fault process
/// ([`crate::faults::FaultProcess`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Update period of the transition.
    pub step: usize,
    /// The affected PM.
    pub pm: usize,
    /// Crash or recovery.
    pub kind: FaultKind,
}

/// One displaced VM's re-placement attempt after a PM crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvacuationEvent {
    /// Update period of the attempt.
    pub step: usize,
    /// Id of the displaced VM.
    pub vm_id: usize,
    /// The crashed PM it was displaced from.
    pub from_pm: usize,
    /// Where it landed, or `None` when no PM admitted it and it entered
    /// the retry queue (it will re-attempt with exponential backoff; a
    /// later successful attempt emits a second event with `Some`).
    pub to_pm: Option<usize>,
    /// Whether the placement needed the degraded-mode overflow margin
    /// (admission at `(1 + ε)·C` after every normal admission refused).
    pub degraded: bool,
}

/// Bins migration events into per-step counts over `steps` periods —
/// cumulated, this is the Fig.-10 curve.
pub fn migrations_per_step(events: &[MigrationEvent], steps: usize) -> Vec<u32> {
    let mut counts = vec![0u32; steps];
    for e in events {
        if e.step < steps {
            counts[e.step] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_by_step() {
        let events = [
            MigrationEvent {
                step: 0,
                vm_id: 1,
                from_pm: 0,
                to_pm: 1,
            },
            MigrationEvent {
                step: 0,
                vm_id: 2,
                from_pm: 0,
                to_pm: 2,
            },
            MigrationEvent {
                step: 3,
                vm_id: 1,
                from_pm: 1,
                to_pm: 0,
            },
        ];
        assert_eq!(migrations_per_step(&events, 5), vec![2, 0, 0, 1, 0]);
    }

    #[test]
    fn out_of_range_events_are_dropped() {
        let events = [MigrationEvent {
            step: 9,
            vm_id: 0,
            from_pm: 0,
            to_pm: 1,
        }];
        assert_eq!(migrations_per_step(&events, 5), vec![0; 5]);
    }

    #[test]
    fn empty_events_empty_bins() {
        assert_eq!(migrations_per_step(&[], 3), vec![0, 0, 0]);
    }
}
