//! PM crash/recovery model: a two-state (up/down) chain per fault domain.
//!
//! Each fault domain — a single PM, or a rack of
//! [`FaultConfig::correlated_group_size`] consecutive PMs — alternates
//! between *up* and *down* states with geometric holding times: while up it
//! crashes each step with probability `1 / mtbf_steps`, while down it
//! recovers with probability `1 / mttr_steps`. The chain is driven by its
//! own RNG stream, seeded from [`FaultConfig::seed`], so a fault schedule
//! is a pure function of `(config, fleet size, steps)` — reproducible and
//! completely orthogonal to the workload seed: turning faults on or off, or
//! re-seeding them, never perturbs the VMs' ON-OFF sample paths.
//!
//! The long-run availability of a domain is
//! `mtbf / (mtbf + mttr)`; with the defaults (MTBF 1000σ, MTTR 50σ) a PM is
//! up ≈ 95% of the time, a deliberately harsh regime for studying whether
//! burstiness reservations double as failure headroom.

use crate::config::ConfigError;
use crate::events::{FaultEvent, FaultKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the PM failure process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Mean steps between failures of one fault domain (geometric, so the
    /// per-step crash probability is `1 / mtbf_steps`). Must be ≥ 1.
    pub mtbf_steps: f64,
    /// Mean steps to repair (geometric; per-step recovery probability
    /// `1 / mttr_steps`). Must be ≥ 1.
    pub mttr_steps: f64,
    /// PMs per fault domain: `1` gives independent per-PM failures; `g > 1`
    /// groups consecutive PMs (`[0..g)`, `[g..2g)`, …) into rack-level
    /// domains that crash and recover together.
    pub correlated_group_size: usize,
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            mtbf_steps: 1000.0,
            mttr_steps: 50.0,
            correlated_group_size: 1,
            seed: 0x0fa171,
        }
    }
}

impl FaultConfig {
    /// Validates field ranges.
    ///
    /// # Errors
    /// [`ConfigError`] when a mean holding time is below one step or the
    /// group size is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mtbf_steps.is_nan() || self.mtbf_steps < 1.0 {
            return Err(ConfigError::FaultMtbfOutOfRange(self.mtbf_steps));
        }
        if self.mttr_steps.is_nan() || self.mttr_steps < 1.0 {
            return Err(ConfigError::FaultMttrOutOfRange(self.mttr_steps));
        }
        if self.correlated_group_size == 0 {
            return Err(ConfigError::ZeroFaultGroup);
        }
        Ok(())
    }

    /// Long-run fraction of time a fault domain is up,
    /// `MTBF / (MTBF + MTTR)`.
    pub fn availability(&self) -> f64 {
        self.mtbf_steps / (self.mtbf_steps + self.mttr_steps)
    }
}

/// The evolving failure state of a fleet of `m` PMs.
#[derive(Debug, Clone)]
pub struct FaultProcess {
    config: FaultConfig,
    rng: StdRng,
    /// Up/down per fault domain.
    domain_up: Vec<bool>,
    m: usize,
}

impl FaultProcess {
    /// Creates the process over `m` PMs; every domain starts up.
    ///
    /// # Panics
    /// Panics on an invalid configuration (callers reach this through
    /// [`crate::SimConfig::validate`], which reports the error as a value).
    pub fn new(config: FaultConfig, m: usize) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid FaultConfig: {e}"));
        let domains = m.div_ceil(config.correlated_group_size);
        Self {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            domain_up: vec![true; domains],
            m,
        }
    }

    /// Whether PM `j` is currently up.
    pub fn is_up(&self, j: usize) -> bool {
        self.domain_up[j / self.config.correlated_group_size]
    }

    /// Advances the chain one step and returns the per-PM transitions, in
    /// ascending PM order. A domain crash emits one [`FaultKind::Crash`]
    /// event per member PM (and symmetrically for recoveries).
    pub fn step(&mut self, step: usize) -> Vec<FaultEvent> {
        let p_crash = 1.0 / self.config.mtbf_steps;
        let p_recover = 1.0 / self.config.mttr_steps;
        let g = self.config.correlated_group_size;
        let mut events = Vec::new();
        for (d, up) in self.domain_up.iter_mut().enumerate() {
            let flip = if *up {
                self.rng.gen::<f64>() < p_crash
            } else {
                self.rng.gen::<f64>() < p_recover
            };
            if !flip {
                continue;
            }
            let kind = if *up {
                FaultKind::Crash
            } else {
                FaultKind::Recovery
            };
            *up = !*up;
            for pm in d * g..((d + 1) * g).min(self.m) {
                events.push(FaultEvent { step, pm, kind });
            }
        }
        events
    }

    /// The generator's xoshiro256++ word state, for durable snapshots.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Current up/down state per fault domain (not per PM), for durable
    /// snapshots.
    pub fn domain_states(&self) -> &[bool] {
        &self.domain_up
    }

    /// Rebuilds a mid-run process from snapshot parts. The restored
    /// process continues the exact event stream: `restore` at step `t`
    /// followed by `step(t..)` equals an uninterrupted run.
    ///
    /// # Errors
    /// A message when the config is invalid, the domain count disagrees
    /// with `(config, m)`, or the RNG state is the impossible all-zero
    /// word vector.
    pub fn restore(
        config: FaultConfig,
        m: usize,
        rng_state: [u64; 4],
        domain_up: Vec<bool>,
    ) -> Result<Self, String> {
        config.validate().map_err(|e| format!("{e}"))?;
        let domains = m.div_ceil(config.correlated_group_size);
        if domain_up.len() != domains {
            return Err(format!(
                "snapshot has {} domains, config implies {domains}",
                domain_up.len()
            ));
        }
        let rng = StdRng::from_state(rng_state)
            .ok_or_else(|| "all-zero RNG state is not reachable from any seed".to_string())?;
        Ok(Self {
            config,
            rng,
            domain_up,
            m,
        })
    }

    /// The full fault schedule over `steps` periods as a flat event list —
    /// a pure function of the configuration and fleet size, used by the
    /// determinism checks and available for offline analysis.
    pub fn schedule(config: FaultConfig, m: usize, steps: usize) -> Vec<FaultEvent> {
        let mut process = Self::new(config, m);
        (0..steps).flat_map(|t| process.step(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_mostly_available() {
        let cfg = FaultConfig::default();
        cfg.validate().unwrap();
        assert!((cfg.availability() - 1000.0 / 1050.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_parameters() {
        let bad_mtbf = FaultConfig {
            mtbf_steps: 0.0,
            ..Default::default()
        };
        assert_eq!(
            bad_mtbf.validate(),
            Err(ConfigError::FaultMtbfOutOfRange(0.0))
        );
        let bad_mttr = FaultConfig {
            mttr_steps: f64::NAN,
            ..Default::default()
        };
        assert!(matches!(
            bad_mttr.validate(),
            Err(ConfigError::FaultMttrOutOfRange(_))
        ));
        let bad_group = FaultConfig {
            correlated_group_size: 0,
            ..Default::default()
        };
        assert_eq!(bad_group.validate(), Err(ConfigError::ZeroFaultGroup));
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let cfg = FaultConfig {
            mtbf_steps: 50.0,
            mttr_steps: 10.0,
            ..Default::default()
        };
        let a = FaultProcess::schedule(cfg, 20, 500);
        let b = FaultProcess::schedule(cfg, 20, 500);
        assert_eq!(a, b, "same seed must give a byte-identical schedule");
        assert!(!a.is_empty(), "MTBF 50 over 500 steps must produce crashes");
        let c = FaultProcess::schedule(
            FaultConfig {
                seed: cfg.seed + 1,
                ..cfg
            },
            20,
            500,
        );
        assert_ne!(a, c, "different seed, different schedule");
    }

    #[test]
    fn snapshot_restore_resumes_the_exact_event_stream() {
        let cfg = FaultConfig {
            mtbf_steps: 40.0,
            mttr_steps: 8.0,
            correlated_group_size: 3,
            ..Default::default()
        };
        let mut a = FaultProcess::new(cfg, 11);
        for t in 0..250 {
            a.step(t);
        }
        let mut b =
            FaultProcess::restore(cfg, 11, a.rng_state(), a.domain_states().to_vec()).unwrap();
        for t in 250..500 {
            assert_eq!(a.step(t), b.step(t), "divergence at step {t}");
        }
        // Wrong domain count and the degenerate RNG state are rejected.
        assert!(FaultProcess::restore(cfg, 11, a.rng_state(), vec![true; 2]).is_err());
        assert!(FaultProcess::restore(cfg, 11, [0; 4], a.domain_states().to_vec()).is_err());
    }

    #[test]
    fn crashes_and_recoveries_alternate_per_pm() {
        let cfg = FaultConfig {
            mtbf_steps: 20.0,
            mttr_steps: 5.0,
            ..Default::default()
        };
        let events = FaultProcess::schedule(cfg, 10, 2000);
        for pm in 0..10 {
            let mut expect = FaultKind::Crash;
            for e in events.iter().filter(|e| e.pm == pm) {
                assert_eq!(e.kind, expect, "PM {pm} transitions must alternate");
                expect = match expect {
                    FaultKind::Crash => FaultKind::Recovery,
                    FaultKind::Recovery => FaultKind::Crash,
                };
            }
        }
    }

    #[test]
    fn empirical_availability_tracks_the_model() {
        let cfg = FaultConfig {
            mtbf_steps: 100.0,
            mttr_steps: 25.0,
            ..Default::default()
        };
        let mut process = FaultProcess::new(cfg, 50);
        let steps = 20_000;
        let mut up_steps = 0usize;
        for t in 0..steps {
            process.step(t);
            up_steps += (0..50).filter(|&j| process.is_up(j)).count();
        }
        let observed = up_steps as f64 / (steps * 50) as f64;
        assert!(
            (observed - cfg.availability()).abs() < 0.02,
            "observed availability {observed} vs model {}",
            cfg.availability()
        );
    }

    #[test]
    fn correlated_groups_fail_together() {
        let cfg = FaultConfig {
            mtbf_steps: 30.0,
            mttr_steps: 10.0,
            correlated_group_size: 4,
            ..Default::default()
        };
        let mut process = FaultProcess::new(cfg, 10);
        let mut saw_crash = false;
        for t in 0..1000 {
            for e in process.step(t) {
                // Every member of the domain shares the post-event state.
                let d = e.pm / 4;
                for pm in d * 4..((d + 1) * 4).min(10) {
                    assert_eq!(
                        process.is_up(pm),
                        e.kind == FaultKind::Recovery,
                        "group member {pm} must share domain state"
                    );
                }
                saw_crash |= e.kind == FaultKind::Crash;
            }
            // A partial trailing group (PMs 8, 9) still maps to a domain.
            let _ = process.is_up(9);
        }
        assert!(saw_crash);
    }

    #[test]
    fn group_events_cover_all_members() {
        let cfg = FaultConfig {
            mtbf_steps: 10.0,
            mttr_steps: 5.0,
            correlated_group_size: 3,
            ..Default::default()
        };
        let events = FaultProcess::schedule(cfg, 7, 300);
        // Events at one (step, kind) for a domain must list each member.
        for e in &events {
            let d = e.pm / 3;
            let members: Vec<usize> = (d * 3..((d + 1) * 3).min(7)).collect();
            for &pm in &members {
                assert!(
                    events
                        .iter()
                        .any(|x| x.step == e.step && x.kind == e.kind && x.pm == pm),
                    "domain {d} event at step {} missing member {pm}",
                    e.step
                );
            }
        }
    }
}
