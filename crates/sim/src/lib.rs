//! A deterministic, time-stepped data-center simulator — the substrate
//! standing in for the paper's Xen Cloud Platform testbed.
//!
//! The simulator advances in update periods of `σ` (the paper uses 30 s):
//! each step every VM's ON-OFF chain evolves, *local resizing* instantly
//! matches each VM's allocation to its demand, capacity violations are
//! tracked per PM, and (optionally) the *live-migration* controller moves a
//! VM off any PM whose running capacity-violation ratio exceeds `ρ`.
//!
//! The controller's target selection is where burstiness-awareness enters:
//!
//! * [`policy::QueuePolicy`] admits by the paper's Eq. 17 (spec-based
//!   reservation — it knows every VM's `R_e`);
//! * [`policy::ObservedPolicy`] admits by *currently observed* demand, the
//!   behaviour of a scheduler "unaware of workload burstiness" — this is
//!   what produces the paper's *idle deception* and *cycle migration*
//!   phenomena for RB/RB-EX;
//! * [`policy::PeakPolicy`] admits by peak demand (never violates).
//!
//! [`runner`] fans replications out across threads and aggregates
//! mean/min/max, matching the paper's 10-repetition methodology (Fig. 9).

#[doc(hidden)]
pub mod bench_api;
pub mod checkpoint;
pub mod config;
pub mod des;
pub mod energy;
pub mod engine;
pub mod events;
pub mod faults;
pub mod migration_cost;
pub mod multidim;
pub mod policy;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod stabilization;
mod workload_core;

pub use checkpoint::{CheckpointError, CheckpointedRun, Checkpointer, RecoveryReport};
pub use config::{CheckpointConfig, ClassSampler, ConfigError, RngLayout, SimConfig, VictimPolicy};
pub use energy::PowerModel;
pub use engine::{RecoveryStats, SimOutcome, Simulator};
pub use events::{EvacuationEvent, FaultEvent, FaultKind, MigrationEvent};
pub use faults::{FaultConfig, FaultProcess};
pub use migration_cost::{precopy_cost, MigrationCost, MigrationParams};
pub use policy::{
    DegradedAdmission, ObservedPolicy, PeakPolicy, PmRuntime, QueuePolicy, RuntimePolicy,
};
pub use runner::{replicate, replicate_seeds, run_indexed};
pub use scenario::{run_churn, ChurnConfig, ChurnOutcome};
pub use stabilization::{detect_stabilization, Stabilization};
