//! Pre-copy live-migration cost model.
//!
//! The paper motivates reservation by the cost of live migration, citing
//! Voorsluys et al.'s measurement study ("in a nearly oversubscribed
//! system significant downtime is observed … which also incurs noticeable
//! CPU usage on the host"). This module implements the standard pre-copy
//! iteration model those costs come from, so the simulator's migration
//! counts can be converted into seconds of migration time, seconds of
//! downtime, and bytes moved.
//!
//! Model: round 0 transfers the VM's whole memory `M` at bandwidth `B`;
//! while a round runs, the guest dirties pages at rate `D`; round `i+1`
//! transfers what round `i` left dirty. Rounds continue until the residual
//! set fits the downtime target or the round cap is hit, then the VM is
//! paused and the residual is copied (the downtime).

/// Parameters of one migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationParams {
    /// VM memory footprint, MiB.
    pub memory_mib: f64,
    /// Page dirty rate, MiB/s.
    pub dirty_rate_mibs: f64,
    /// Available migration bandwidth, MiB/s.
    pub bandwidth_mibs: f64,
    /// Stop pre-copy once the residual would take at most this long to
    /// copy (the downtime target), seconds.
    pub downtime_target_secs: f64,
    /// Maximum pre-copy rounds before forcing the stop-and-copy.
    pub max_rounds: u32,
}

impl Default for MigrationParams {
    /// Defaults in the range of the paper's era: 1 GiB VM, 50 MiB/s
    /// dirtying, 1 GbE (~110 MiB/s) transport, 300 ms downtime target.
    fn default() -> Self {
        Self {
            memory_mib: 1024.0,
            dirty_rate_mibs: 50.0,
            bandwidth_mibs: 110.0,
            downtime_target_secs: 0.3,
            max_rounds: 30,
        }
    }
}

/// The predicted cost of one migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationCost {
    /// Total wall-clock migration time (pre-copy + stop-and-copy), s.
    pub total_secs: f64,
    /// Stop-and-copy downtime, s.
    pub downtime_secs: f64,
    /// Bytes moved across all rounds, MiB.
    pub transferred_mib: f64,
    /// Pre-copy rounds executed.
    pub rounds: u32,
    /// Whether the downtime target was met (false = the dirty rate beat
    /// the bandwidth and the round cap forced a long stop-and-copy).
    pub converged: bool,
}

/// Evaluates the pre-copy model.
///
/// # Examples
/// ```
/// use bursty_sim::{precopy_cost, MigrationParams};
///
/// let cost = precopy_cost(MigrationParams::default());
/// // A busy 1 GiB VM over 1 GbE: seconds of total time, sub-second
/// // downtime once pre-copy converges.
/// assert!(cost.converged);
/// assert!(cost.total_secs > 9.0);
/// assert!(cost.downtime_secs <= 0.3);
/// ```
///
/// # Panics
/// Panics on non-positive memory/bandwidth or a negative dirty rate.
pub fn precopy_cost(p: MigrationParams) -> MigrationCost {
    assert!(p.memory_mib > 0.0, "memory must be positive");
    assert!(p.bandwidth_mibs > 0.0, "bandwidth must be positive");
    assert!(p.dirty_rate_mibs >= 0.0, "dirty rate must be nonnegative");
    assert!(
        p.downtime_target_secs > 0.0,
        "downtime target must be positive"
    );

    let ratio = p.dirty_rate_mibs / p.bandwidth_mibs;
    let residual_target = p.downtime_target_secs * p.bandwidth_mibs;

    let mut residual = p.memory_mib;
    let mut transferred = 0.0;
    let mut precopy_time = 0.0;
    let mut rounds = 0u32;
    // Round 0 always transfers the full memory image.
    loop {
        let round_time = residual / p.bandwidth_mibs;
        transferred += residual;
        precopy_time += round_time;
        rounds += 1;
        residual = p.dirty_rate_mibs * round_time; // dirtied during the round
                                                   // With ratio ≥ 1 further rounds cannot shrink the residual, so a
                                                   // first full copy is all pre-copy can usefully do.
        if residual <= residual_target || rounds >= p.max_rounds || ratio >= 1.0 {
            break;
        }
    }
    let downtime = residual / p.bandwidth_mibs;
    MigrationCost {
        total_secs: precopy_time + downtime,
        downtime_secs: downtime,
        transferred_mib: transferred + residual,
        rounds,
        converged: downtime <= p.downtime_target_secs + 1e-9,
    }
}

/// Aggregates the cost of `migrations` identical migrations — the bridge
/// from the simulator's counts (Fig. 9(a)) to seconds and bytes.
pub fn total_cost(migrations: usize, params: MigrationParams) -> MigrationCost {
    let one = precopy_cost(params);
    MigrationCost {
        total_secs: one.total_secs * migrations as f64,
        downtime_secs: one.downtime_secs * migrations as f64,
        transferred_mib: one.transferred_mib * migrations as f64,
        rounds: one.rounds,
        converged: one.converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_vm_migrates_in_one_round() {
        let cost = precopy_cost(MigrationParams {
            dirty_rate_mibs: 0.0,
            ..Default::default()
        });
        assert_eq!(cost.rounds, 1);
        assert!(cost.converged);
        assert!(cost.downtime_secs < 1e-9);
        // 1024 MiB over 110 MiB/s ≈ 9.3 s.
        assert!((cost.total_secs - 1024.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn busy_vm_needs_multiple_rounds_but_converges() {
        let cost = precopy_cost(MigrationParams::default());
        assert!(cost.rounds > 1);
        assert!(cost.converged, "ratio 0.45 < 1 must converge: {cost:?}");
        assert!(cost.downtime_secs <= 0.3 + 1e-9);
        // Geometric series: total transfer ≈ M / (1 − D/B).
        let expect = 1024.0 / (1.0 - 50.0 / 110.0);
        assert!(
            cost.transferred_mib < expect * 1.05,
            "transferred {} vs series bound {expect}",
            cost.transferred_mib
        );
    }

    #[test]
    fn dirty_rate_above_bandwidth_never_converges() {
        let cost = precopy_cost(MigrationParams {
            dirty_rate_mibs: 200.0,
            bandwidth_mibs: 110.0,
            ..Default::default()
        });
        assert!(!cost.converged);
        // Downtime is the whole dirtied residual of one full-copy round.
        assert!(cost.downtime_secs > 1.0);
    }

    #[test]
    fn round_cap_bounds_the_precopy() {
        let cost = precopy_cost(MigrationParams {
            dirty_rate_mibs: 109.0, // ratio 0.9909: converges very slowly
            max_rounds: 5,
            ..Default::default()
        });
        assert_eq!(cost.rounds, 5);
        assert!(!cost.converged);
    }

    #[test]
    fn faster_network_cuts_total_time() {
        let slow = precopy_cost(MigrationParams::default());
        let fast = precopy_cost(MigrationParams {
            bandwidth_mibs: 1100.0, // 10 GbE
            ..Default::default()
        });
        assert!(fast.total_secs < slow.total_secs / 5.0);
        assert!(fast.converged);
    }

    #[test]
    fn total_cost_scales_linearly() {
        let one = precopy_cost(MigrationParams::default());
        let many = total_cost(38, MigrationParams::default());
        assert!((many.total_secs - 38.0 * one.total_secs).abs() < 1e-9);
        assert!((many.transferred_mib - 38.0 * one.transferred_mib).abs() < 1e-6);
    }

    #[test]
    fn fig9_scale_sanity() {
        // RB's ~38 migrations per 3000 s run at defaults ≈ 38 × ~51 s of
        // migration activity — a sizeable fraction of the horizon, which
        // is exactly the paper's performance argument against RB.
        let rb = total_cost(38, MigrationParams::default());
        let queue = total_cost(1, MigrationParams::default());
        assert!(rb.total_secs > 30.0 * queue.total_secs);
        assert!(
            rb.total_secs > 0.15 * 3000.0,
            "RB spends >15% of the run migrating"
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn rejects_zero_bandwidth() {
        let _ = precopy_cost(MigrationParams {
            bandwidth_mibs: 0.0,
            ..Default::default()
        });
    }
}
