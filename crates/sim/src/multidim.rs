//! Multi-dimensional runtime validation (paper §IV-E).
//!
//! The per-dimension packer in `bursty-placement::multidim` claims the
//! performance constraint "on all dimensions". This simulator checks that
//! claim: every VM's single ON-OFF chain modulates *all* its dimensions
//! simultaneously (a spike raises CPU and memory together), and a PM
//! violates at a step when *any* dimension's aggregate demand exceeds its
//! capacity in that dimension.

use bursty_placement::multidim::{MultiDimPlacement, MultiDimPmSpec};
use bursty_workload::multidim::MultiDimVmSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a multi-dimensional run.
#[derive(Debug, Clone)]
pub struct MultiDimOutcome {
    /// `(pm, CVR)` per used PM, where a step violates if any dimension
    /// overflows.
    pub cvr_per_pm: Vec<(usize, f64)>,
    /// Violating PM-steps attributed per dimension (a step overflowing in
    /// two dimensions counts once in each).
    pub violations_by_dim: Vec<usize>,
    /// Steps simulated.
    pub steps: usize,
}

impl MultiDimOutcome {
    /// Mean CVR over used PMs.
    pub fn mean_cvr(&self) -> f64 {
        if self.cvr_per_pm.is_empty() {
            return 0.0;
        }
        self.cvr_per_pm.iter().map(|(_, c)| c).sum::<f64>() / self.cvr_per_pm.len() as f64
    }

    /// The dimension with the most violations, if any occurred.
    pub fn bottleneck_dimension(&self) -> Option<usize> {
        let (dim, &count) = self
            .violations_by_dim
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)?;
        (count > 0).then_some(dim)
    }
}

/// Simulates a multi-dimensional placement for `steps` periods with local
/// resizing only (the §IV-E variant predates migration support — plain
/// First Fit, no runtime controller).
///
/// # Panics
/// Panics on placement/fleet inconsistencies.
pub fn simulate_multidim(
    vms: &[MultiDimVmSpec],
    pms: &[MultiDimPmSpec],
    placement: &MultiDimPlacement,
    steps: usize,
    seed: u64,
) -> MultiDimOutcome {
    assert_eq!(
        placement.assignment.len(),
        vms.len(),
        "placement covers every VM"
    );
    assert_eq!(placement.n_pms, pms.len(), "placement/PM count mismatch");
    assert!(steps > 0, "steps must be positive");
    let dims = vms.first().map_or(0, MultiDimVmSpec::dims);
    for v in vms {
        assert_eq!(v.dims(), dims, "uniform dimensionality required");
    }

    let m = pms.len();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut on = vec![false; vms.len()];
    let mut used = vec![false; m];
    for &j in &placement.assignment {
        used[j] = true;
    }

    let mut vio = vec![0usize; m];
    let mut violations_by_dim = vec![0usize; dims];
    let mut demand = vec![vec![0.0f64; dims]; m];
    for _ in 0..steps {
        for (i, vm) in vms.iter().enumerate() {
            let state = if on[i] {
                bursty_markov::VmState::On
            } else {
                bursty_markov::VmState::Off
            };
            let chain = bursty_markov::OnOffChain::new(vm.p_on, vm.p_off);
            on[i] = chain.step(state, &mut rng).is_on();
        }
        for row in demand.iter_mut() {
            row.iter_mut().for_each(|x| *x = 0.0);
        }
        for (i, vm) in vms.iter().enumerate() {
            let j = placement.assignment[i];
            for (d, slot) in demand[j].iter_mut().enumerate() {
                let base = vm.r_b.get(d);
                let spike = vm.r_e.get(d);
                *slot += if on[i] { base + spike } else { base };
            }
        }
        for j in 0..m {
            if !used[j] {
                continue;
            }
            let mut violated = false;
            for d in 0..dims {
                if demand[j][d] > pms[j].capacity.get(d) + 1e-9 {
                    violations_by_dim[d] += 1;
                    violated = true;
                }
            }
            if violated {
                vio[j] += 1;
            }
        }
    }

    let cvr_per_pm = (0..m)
        .filter(|&j| used[j])
        .map(|j| (j, vio[j] as f64 / steps as f64))
        .collect();
    MultiDimOutcome {
        cvr_per_pm,
        violations_by_dim,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bursty_placement::multidim::first_fit_multidim;
    use bursty_placement::MappingTable;
    use bursty_workload::multidim::ResourceVec;

    fn rv(xs: &[f64]) -> ResourceVec {
        ResourceVec::new(xs.to_vec())
    }

    fn vm(id: usize, r_b: &[f64], r_e: &[f64]) -> MultiDimVmSpec {
        MultiDimVmSpec::new(id, 0.01, 0.09, rv(r_b), rv(r_e))
    }

    fn pm(id: usize, caps: &[f64]) -> MultiDimPmSpec {
        MultiDimPmSpec {
            id,
            capacity: rv(caps),
        }
    }

    #[test]
    fn per_dimension_reservation_honors_rho_on_both_dims() {
        let vms: Vec<MultiDimVmSpec> = (0..48).map(|i| vm(i, &[10.0, 6.0], &[10.0, 4.0])).collect();
        let pms: Vec<MultiDimPmSpec> = (0..48).map(|j| pm(j, &[100.0, 60.0])).collect();
        let mapping = MappingTable::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit_multidim(&vms, &pms, &mapping).unwrap();
        let out = simulate_multidim(&vms, &pms, &placement, 20_000, 1);
        assert!(out.mean_cvr() <= 0.012, "mean CVR {}", out.mean_cvr());
    }

    #[test]
    fn scalar_projection_can_violate_a_dimension() {
        // Two anti-correlated demand shapes: VM type A is CPU-heavy, type
        // B memory-heavy. A capacity-normalized projection balances them
        // on average, but packing by the scalar alone can overfill one
        // dimension. The per-dimension packer cannot.
        let vms: Vec<MultiDimVmSpec> = (0..24)
            .map(|i| {
                if i % 2 == 0 {
                    vm(i, &[20.0, 2.0], &[20.0, 2.0])
                } else {
                    vm(i, &[2.0, 20.0], &[2.0, 20.0])
                }
            })
            .collect();
        let pms_pool: Vec<MultiDimPmSpec> = (0..24).map(|j| pm(j, &[100.0, 100.0])).collect();
        let mapping = MappingTable::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit_multidim(&vms, &pms_pool, &mapping).unwrap();
        let out = simulate_multidim(&vms, &pms_pool, &placement, 10_000, 2);
        assert!(out.mean_cvr() <= 0.012, "per-dim CVR {}", out.mean_cvr());

        // Hand-build the scalar-greedy placement: projection says ~11
        // units per VM against 100+100, so 8 VMs “fit” — but 8 CPU-heavy
        // VMs would need 160 CPU at peak. Pack pairs of 4+4 by scalar:
        let naive = MultiDimPlacement {
            assignment: (0..24).map(|i| i / 8).collect(),
            n_pms: 24,
        };
        let naive_out = simulate_multidim(&vms, &pms_pool, &naive, 10_000, 2);
        assert!(
            naive_out.mean_cvr() > out.mean_cvr() * 3.0,
            "scalar packing must violate more: {} vs {}",
            naive_out.mean_cvr(),
            out.mean_cvr()
        );
        assert!(naive_out.bottleneck_dimension().is_some());
    }

    #[test]
    fn violations_attributed_to_the_tight_dimension() {
        // Dimension 1 is provisioned with zero headroom for spikes.
        let vms: Vec<MultiDimVmSpec> = (0..4).map(|i| vm(i, &[5.0, 10.0], &[0.0, 10.0])).collect();
        let pms_pool = vec![pm(0, &[1000.0, 40.0])];
        let placement = MultiDimPlacement {
            assignment: vec![0; 4],
            n_pms: 1,
        };
        let out = simulate_multidim(&vms, &pms_pool, &placement, 20_000, 3);
        assert_eq!(out.bottleneck_dimension(), Some(1));
        assert_eq!(out.violations_by_dim[0], 0);
        assert!(out.violations_by_dim[1] > 0);
    }

    #[test]
    fn no_vms_on_a_pm_means_no_cvr_entry() {
        let vms = vec![vm(0, &[1.0], &[1.0])];
        let pms_pool = vec![pm(0, &[10.0]), pm(1, &[10.0])];
        let placement = MultiDimPlacement {
            assignment: vec![0],
            n_pms: 2,
        };
        let out = simulate_multidim(&vms, &pms_pool, &placement, 100, 4);
        assert_eq!(out.cvr_per_pm.len(), 1);
        assert_eq!(out.cvr_per_pm[0].0, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let vms: Vec<MultiDimVmSpec> = (0..8).map(|i| vm(i, &[10.0, 5.0], &[10.0, 5.0])).collect();
        let pms_pool: Vec<MultiDimPmSpec> = (0..8).map(|j| pm(j, &[60.0, 30.0])).collect();
        let mapping = MappingTable::build(16, 0.01, 0.09, 0.01);
        let placement = first_fit_multidim(&vms, &pms_pool, &mapping).unwrap();
        let a = simulate_multidim(&vms, &pms_pool, &placement, 2_000, 9);
        let b = simulate_multidim(&vms, &pms_pool, &placement, 2_000, 9);
        assert_eq!(a.cvr_per_pm, b.cvr_per_pm);
        assert_eq!(a.violations_by_dim, b.violations_by_dim);
    }
}
