//! Runtime admission policies for migration targeting.
//!
//! During a live migration the controller must choose a target PM. What the
//! controller *knows* differs by consolidation scheme:
//!
//! * QUEUE knows every VM's spike size and reserves blocks (Eq. 17) — its
//!   admission check is exact with respect to the performance constraint.
//! * RB/RB-EX observe only *current* demands. A PM whose tenants are
//!   momentarily OFF looks idle — the paper's *idle deception* — and
//!   accepting a migrant on that evidence seeds the next overload, the
//!   *cycle migration* feedback loop.

use bursty_placement::{PmLoad, QueueStrategy, Strategy};
use bursty_workload::VmSpec;

/// A PM's state as visible to the runtime controller.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmRuntime {
    /// Spec-level aggregates of the hosted set (known to spec-aware
    /// policies only).
    pub load: PmLoad,
    /// Sum of the hosted VMs' *current* demands (what a burstiness-unaware
    /// monitor observes).
    pub observed: f64,
}

/// An admission rule for placing VM `vm` (with current demand
/// `vm_demand`) onto a PM in state `pm` with capacity `capacity`.
pub trait RuntimePolicy: Send + Sync {
    /// Label used in reports.
    fn name(&self) -> &'static str;

    /// Whether the controller would accept the VM on this PM.
    fn admits(&self, vm: &VmSpec, vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool;

    /// Scalar headroom of the PM under this policy — the same pruning
    /// contract as [`bursty_placement::Strategy::headroom`]: whenever
    /// `admits(vm, vm_demand, pm, capacity)` holds,
    /// `headroom(pm, capacity) ≥ demand_measure(vm, vm_demand)` must hold
    /// too. The batch evacuation controller indexes this value
    /// ([`bursty_placement::HeadroomIndex`]) to find feasible targets in
    /// `O(log m)`; the default (observed slack) is exact for
    /// observed-demand policies and conservative for any policy at least
    /// as strict as "current demands must fit".
    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        capacity - pm.observed
    }

    /// The load-independent headroom requirement of `vm` paired with
    /// [`RuntimePolicy::headroom`] (see the contract there). The default
    /// is the VM's current demand.
    fn demand_measure(&self, _vm: &VmSpec, vm_demand: f64) -> f64 {
        vm_demand
    }
}

impl RuntimePolicy for &dyn RuntimePolicy {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn admits(&self, vm: &VmSpec, vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        (**self).admits(vm, vm_demand, pm, capacity)
    }
    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        (**self).headroom(pm, capacity)
    }
    fn demand_measure(&self, vm: &VmSpec, vm_demand: f64) -> f64 {
        (**self).demand_measure(vm, vm_demand)
    }
}

impl RuntimePolicy for Box<dyn RuntimePolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn admits(&self, vm: &VmSpec, vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        (**self).admits(vm, vm_demand, pm, capacity)
    }
    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        (**self).headroom(pm, capacity)
    }
    fn demand_measure(&self, vm: &VmSpec, vm_demand: f64) -> f64 {
        (**self).demand_measure(vm, vm_demand)
    }
}

/// Degraded-mode admission: the wrapped policy's rule evaluated with every
/// capacity inflated to `(1 + ε)·C`. This is the principled relaxation
/// order's first stage when the pool is exhausted — the *shape* of the
/// guarantee (Eq. 17 for QUEUE, observed slack for RB/RB-EX, peak for RP)
/// is preserved, only its budget is stretched by a known, configurable
/// margin; every placement admitted this way is tagged so reports can
/// separate "guarantee held" from "guarantee suspended" time.
#[derive(Debug, Clone)]
pub struct DegradedAdmission<P> {
    inner: P,
    epsilon: f64,
}

impl<P: RuntimePolicy> DegradedAdmission<P> {
    /// Wraps `inner` with overflow margin `epsilon ≥ 0`.
    ///
    /// # Panics
    /// Panics for a negative (or NaN) `epsilon`.
    pub fn new(inner: P, epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be nonnegative, got {epsilon}");
        Self { inner, epsilon }
    }

    /// The overflow margin.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }
}

impl<P: RuntimePolicy> RuntimePolicy for DegradedAdmission<P> {
    fn name(&self) -> &'static str {
        "DEGRADED"
    }

    fn admits(&self, vm: &VmSpec, vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        self.inner
            .admits(vm, vm_demand, pm, capacity * (1.0 + self.epsilon))
    }

    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        self.inner.headroom(pm, capacity * (1.0 + self.epsilon))
    }

    fn demand_measure(&self, vm: &VmSpec, vm_demand: f64) -> f64 {
        self.inner.demand_measure(vm, vm_demand)
    }
}

/// Spec-aware admission by the paper's Eq. 17 — the QUEUE runtime.
#[derive(Debug, Clone)]
pub struct QueuePolicy {
    strategy: QueueStrategy,
}

impl QueuePolicy {
    /// Wraps a queue strategy (same mapping table as the initial packing).
    pub fn new(strategy: QueueStrategy) -> Self {
        Self { strategy }
    }

    /// Builds the policy from the queuing parameters, sharing the
    /// process-wide memoized mapping table — a consolidator that already
    /// built its packing strategy for the same `(d, p_on, p_off, rho)`
    /// pays nothing extra here.
    pub fn from_parameters(d: usize, p_on: f64, p_off: f64, rho: f64) -> Self {
        Self {
            strategy: QueueStrategy::build(d, p_on, p_off, rho),
        }
    }

    /// The wrapped strategy.
    pub fn strategy(&self) -> &QueueStrategy {
        &self.strategy
    }
}

impl RuntimePolicy for QueuePolicy {
    fn name(&self) -> &'static str {
        "QUEUE"
    }

    fn admits(&self, vm: &VmSpec, _vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        self.strategy.admits(&pm.load, vm, capacity)
    }

    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        Strategy::headroom(&self.strategy, &pm.load, capacity)
    }

    fn demand_measure(&self, vm: &VmSpec, _vm_demand: f64) -> f64 {
        Strategy::demand(&self.strategy, vm)
    }
}

/// Observed-demand admission with a headroom fraction — the behaviour of a
/// burstiness-unaware controller. `headroom = 0` models RB;
/// `headroom = δ` models RB-EX.
#[derive(Debug, Clone, Copy)]
pub struct ObservedPolicy {
    headroom: f64,
    name: &'static str,
}

impl ObservedPolicy {
    /// RB: accept whenever current demands fit the full capacity.
    pub fn rb() -> Self {
        Self {
            headroom: 0.0,
            name: "RB",
        }
    }

    /// RB-EX: keep a `delta` fraction of capacity free at admission time.
    ///
    /// # Panics
    /// Panics for `delta` outside `[0, 1)`.
    pub fn rb_ex(delta: f64) -> Self {
        assert!((0.0..1.0).contains(&delta), "delta must be in [0,1)");
        Self {
            headroom: delta,
            name: "RB-EX",
        }
    }

    /// The headroom fraction.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }
}

impl RuntimePolicy for ObservedPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn admits(&self, _vm: &VmSpec, vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        pm.observed + vm_demand <= (1.0 - self.headroom) * capacity
    }

    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        (1.0 - self.headroom) * capacity - pm.observed
    }
}

/// Peak-demand admission (provisioning for peak at runtime): never admits
/// a VM that could ever overload the PM. The runtime counterpart of RP.
#[derive(Debug, Clone, Copy, Default)]
pub struct PeakPolicy;

impl RuntimePolicy for PeakPolicy {
    fn name(&self) -> &'static str {
        "RP"
    }

    fn admits(&self, vm: &VmSpec, _vm_demand: f64, pm: &PmRuntime, capacity: f64) -> bool {
        pm.load.sum_rp + vm.r_p() <= capacity
    }

    fn headroom(&self, pm: &PmRuntime, capacity: f64) -> f64 {
        capacity - pm.load.sum_rp
    }

    fn demand_measure(&self, vm: &VmSpec, _vm_demand: f64) -> f64 {
        vm.r_p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 0.01, 0.09, r_b, r_e)
    }

    fn runtime(hosted: &[VmSpec], observed: f64) -> PmRuntime {
        PmRuntime {
            load: PmLoad::rebuild(hosted),
            observed,
        }
    }

    #[test]
    fn queue_policy_matches_eq17() {
        let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let policy = QueuePolicy::new(strategy.clone());
        let hosted = [vm(0, 30.0, 10.0)];
        let pm = runtime(&hosted, 30.0);
        let newcomer = vm(1, 25.0, 12.0);
        for cap in [60.0, 70.0, 100.0] {
            assert_eq!(
                policy.admits(&newcomer, 37.0, &pm, cap),
                strategy.admits(&pm.load, &newcomer, cap),
            );
        }
    }

    #[test]
    fn observed_policy_suffers_idle_deception() {
        // Tenants hold Σ R_b = 90 on a 100-capacity PM but are all OFF with
        // observed demand 90; their spikes (R_e = 10 each) make the true
        // peak 180. The RB controller still admits a 10-unit migrant —
        // the deception the paper describes.
        let hosted: Vec<VmSpec> = (0..9).map(|i| vm(i, 10.0, 10.0)).collect();
        let pm = runtime(&hosted, 90.0);
        let migrant = vm(9, 10.0, 10.0);
        assert!(ObservedPolicy::rb().admits(&migrant, 10.0, &pm, 100.0));
        // The peak-aware policy refuses.
        assert!(!PeakPolicy.admits(&migrant, 10.0, &pm, 100.0));
        // And Eq. 17 refuses too (blocks for 10 VMs would not fit).
        let q = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
        assert!(!q.admits(&migrant, 10.0, &pm, 100.0));
    }

    #[test]
    fn rb_ex_headroom_blocks_marginal_admissions() {
        let hosted = [vm(0, 50.0, 5.0)];
        let pm = runtime(&hosted, 50.0);
        let migrant = vm(1, 25.0, 5.0);
        // 50 + 25 = 75 ≤ 100 → RB admits; 75 > 0.7·100 → RB-EX refuses.
        assert!(ObservedPolicy::rb().admits(&migrant, 25.0, &pm, 100.0));
        assert!(!ObservedPolicy::rb_ex(0.3).admits(&migrant, 25.0, &pm, 100.0));
    }

    #[test]
    fn observed_policy_sees_spikes_while_they_last() {
        // Same tenants, but currently spiking: observed 180 > 100 — even RB
        // refuses now. Deception is specifically about OFF tenants.
        let hosted: Vec<VmSpec> = (0..9).map(|i| vm(i, 10.0, 10.0)).collect();
        let pm = runtime(&hosted, 180.0);
        assert!(!ObservedPolicy::rb().admits(&vm(9, 10.0, 10.0), 10.0, &pm, 100.0));
    }

    #[test]
    fn names() {
        assert_eq!(ObservedPolicy::rb().name(), "RB");
        assert_eq!(ObservedPolicy::rb_ex(0.3).name(), "RB-EX");
        assert_eq!(PeakPolicy.name(), "RP");
        assert_eq!(
            QueuePolicy::new(QueueStrategy::build(2, 0.1, 0.1, 0.1)).name(),
            "QUEUE"
        );
    }

    #[test]
    fn empty_pm_admits_anything_that_fits() {
        let pm = PmRuntime::default();
        let migrant = vm(0, 10.0, 10.0);
        assert!(ObservedPolicy::rb().admits(&migrant, 20.0, &pm, 25.0));
        assert!(PeakPolicy.admits(&migrant, 20.0, &pm, 25.0));
        assert!(!ObservedPolicy::rb().admits(&migrant, 30.0, &pm, 25.0));
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn rb_ex_rejects_bad_delta() {
        let _ = ObservedPolicy::rb_ex(1.0);
    }

    #[test]
    fn admits_implies_headroom_covers_demand_measure() {
        // The pruning contract the evacuation controller's index relies
        // on, over a grid of PM states, newcomers, and capacities.
        let q = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
        let policies: [&dyn RuntimePolicy; 4] = [
            &q,
            &ObservedPolicy::rb(),
            &ObservedPolicy::rb_ex(0.3),
            &PeakPolicy,
        ];
        let states: Vec<(Vec<VmSpec>, f64)> = vec![
            (vec![], 0.0),
            (vec![vm(0, 12.0, 4.0)], 12.0),
            (vec![vm(0, 30.0, 10.0), vm(1, 25.0, 12.0)], 67.0),
            ((0..6).map(|i| vm(i, 8.0, 6.0)).collect(), 62.0),
        ];
        for policy in policies {
            for (hosted, observed) in &states {
                let pm = runtime(hosted, *observed);
                for newcomer in [vm(90, 2.0, 1.0), vm(91, 15.0, 20.0), vm(92, 40.0, 3.0)] {
                    for demand in [newcomer.r_b, newcomer.r_p()] {
                        for cap in [20.0, 55.0, 90.0, 140.0] {
                            if policy.admits(&newcomer, demand, &pm, cap) {
                                assert!(
                                    policy.headroom(&pm, cap)
                                        >= policy.demand_measure(&newcomer, demand),
                                    "{}: headroom {} < demand {} (cap {cap})",
                                    policy.name(),
                                    policy.headroom(&pm, cap),
                                    policy.demand_measure(&newcomer, demand),
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn degraded_admission_inflates_capacity() {
        // Observed 90 on a 100-capacity PM: a 15-unit migrant is refused
        // normally but admitted with a 10% overflow margin (fits in 110).
        let hosted: Vec<VmSpec> = (0..9).map(|i| vm(i, 10.0, 10.0)).collect();
        let pm = runtime(&hosted, 90.0);
        let migrant = vm(9, 15.0, 5.0);
        let rb = ObservedPolicy::rb();
        assert!(!rb.admits(&migrant, 15.0, &pm, 100.0));
        let degraded = DegradedAdmission::new(rb, 0.1);
        assert!(degraded.admits(&migrant, 15.0, &pm, 100.0));
        assert_eq!(degraded.name(), "DEGRADED");
        assert_eq!(degraded.epsilon(), 0.1);
        // ε = 0 degenerates to the wrapped policy.
        let strict = DegradedAdmission::new(ObservedPolicy::rb(), 0.0);
        assert!(!strict.admits(&migrant, 15.0, &pm, 100.0));
        // The contract survives wrapping.
        assert!(degraded.headroom(&pm, 100.0) >= degraded.demand_measure(&migrant, 15.0));
    }

    #[test]
    fn degraded_admission_preserves_the_inner_rule_shape() {
        // QUEUE wrapped: still refuses what even a stretched Eq. 17
        // cannot certify, admits what the margin covers.
        let q = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
        let hosted: Vec<VmSpec> = (0..9).map(|i| vm(i, 10.0, 10.0)).collect();
        let pm = runtime(&hosted, 90.0);
        let migrant = vm(9, 10.0, 10.0);
        assert!(!q.admits(&migrant, 10.0, &pm, 100.0));
        // Eq. 17 for 10 VMs at R_e = 10 needs 100 + 10·mapping(10);
        // a 50% margin covers it on a 100-capacity PM.
        let wide = DegradedAdmission::new(q.clone(), 0.5);
        assert!(wide.admits(&migrant, 10.0, &pm, 100.0));
        let narrow = DegradedAdmission::new(q, 0.01);
        assert!(!narrow.admits(&migrant, 10.0, &pm, 100.0));
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn degraded_admission_rejects_negative_epsilon() {
        let _ = DegradedAdmission::new(ObservedPolicy::rb(), -0.1);
    }
}
