//! Counter-based per-VM random streams for [`RngLayout::PerVm`].
//!
//! The shared layout walks one sequential generator, so draw `i` of step
//! `t` depends on every draw before it — inherently serial. A *counter-
//! based* generator instead computes each draw as a pure function of its
//! coordinates `(seed, stream, counter)`: any thread can produce any
//! VM's draw for any step without touching shared state, which is what
//! makes the per-VM hot path embarrassingly parallel *and* bit-
//! reproducible at every thread count.
//!
//! The mixer is the SplitMix64 finalizer (Steele, Lea & Flood 2014) —
//! the same avalanche function the vendored `StdRng` already uses for
//! seeding. Two rounds over distinct golden-ratio multiples of the
//! coordinates decorrelate neighbouring `(stream, counter)` cells far
//! beyond what a two-state ON-OFF chain can detect; the statistical
//! tests in this module and the distribution checks in
//! `sim/tests/determinism.rs` guard that claim.
//!
//! [`RngLayout::PerVm`]: crate::config::RngLayout::PerVm

#[path = "binomial_table.rs"]
pub mod binomial_table;

/// Weyl increment: 2^64 / φ, the SplitMix64 stream constant.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second odd constant (from MurmurHash3/SplitMix64 finalizers) keeping
/// the `stream` and `counter` axes from aliasing under the same mixer.
const MIX_B: u64 = 0x94D0_49BB_1331_11EB;

/// SplitMix64 finalizer: full-avalanche 64-bit mixing (every input bit
/// flips each output bit with probability ~1/2).
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(MIX_B);
    z ^ (z >> 31)
}

/// The key of one per-VM stream: a mixed combination of the run seed and
/// the VM's index. Hoisting this out of the per-step call saves one
/// `mix64` round in the hot loop.
#[inline]
pub(crate) fn stream_key(seed: u64, stream: u64) -> u64 {
    mix64(seed ^ mix64(stream.wrapping_mul(GOLDEN) ^ MIX_B))
}

/// Draw `counter` of a keyed stream as a uniform `f64` in `[0, 1)`,
/// using the top 53 bits of the mixed word (the full mantissa width, the
/// same precision as the vendored `StdRng::gen::<f64>()`).
#[inline]
pub(crate) fn keyed_u01(key: u64, counter: u64) -> f64 {
    let z = mix64(key ^ counter.wrapping_mul(GOLDEN));
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` draw at coordinates `(seed, stream, counter)`.
///
/// Pure and stateless: `pervm_u01(s, i, t)` is the same value no matter
/// which thread computes it or in what order. Stream `i` is the VM's
/// index in the simulated fleet; `counter` is the step number.
#[inline]
pub fn pervm_u01(seed: u64, stream: u64, counter: u64) -> f64 {
    keyed_u01(stream_key(seed, stream), counter)
}

/// Content hash of a VM class's exact bit-pattern key (the
/// `workload::classes::VmClass::key()` four-tuple), for keying
/// per-(PM, class) streams. A *content* hash — never a first-appearance
/// index — so the stream a class draws from is invariant under the order
/// classes are enumerated in the fleet.
#[inline]
pub fn class_hash(key: [u64; 4]) -> u64 {
    let mut acc = MIX_B;
    for word in key {
        acc = mix64(acc ^ word.wrapping_mul(GOLDEN));
    }
    acc
}

/// The key of one per-(PM, class) stream under
/// [`RngLayout::ClassAggregated`]: a pure function of the run seed, the
/// PM index and the class content hash. The engine uses `pm = m` (one
/// past the last PM) for the displaced-VM limbo pool.
///
/// [`RngLayout::ClassAggregated`]: crate::config::RngLayout::ClassAggregated
#[inline]
pub fn class_cell_key(seed: u64, pm: u64, class_hash: u64) -> u64 {
    stream_key(seed, mix64(class_hash ^ pm.wrapping_mul(GOLDEN)))
}

/// Deterministic `Binomial(n, p)` draw at `(key, counter)` coordinates:
/// one [`keyed_u01`] uniform inverted through the CDF by the standard
/// pmf-recurrence walk `pmf(k+1) = pmf(k)·(n−k)/(k+1)·p/(1−p)`.
///
/// Pure and stateless like [`pervm_u01`], so any thread can compute any
/// cell's draw for any step — that is what makes the class-aggregated
/// layout thread-count invariant. Cost is `O(E[X] + 1)` per draw: the
/// walk stops at the sampled value, and the chains this samples for keep
/// `n·p` small (`p_on`/`p_off` are per-step switch probabilities, a few
/// percent). The loop is bounded by `n` regardless of roundoff.
#[inline]
pub fn keyed_binomial(key: u64, counter: u64, n: u32, p: f64) -> u32 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    binomial_from_u01(keyed_u01(key, counter), n, p)
}

/// The walk's anchor: the first value covered and its pmf. `(0, q^n)`
/// when `q^n` is representable; otherwise (possible for cells of many
/// thousands of VMs) the lower 12σ edge of the distribution with the
/// anchor pmf evaluated in log space — the skipped left tail carries
/// < 1e-30 probability mass. Shared verbatim between the walk and
/// [`binomial_table::BinomialTable::build`], which is one half of the
/// table's bit-identity contract.
#[inline]
pub(crate) fn walk_anchor(n: u32, p: f64, q: f64) -> (u32, f64) {
    let pmf = q.powi(n as i32);
    if pmf > 0.0 {
        return (0, pmf);
    }
    let mean = n as f64 * p;
    let start = (mean - 12.0 * (mean * q).sqrt()).floor().max(0.0) as u32;
    use bursty_markov::binomial::ln_gamma;
    let ln_pmf = ln_gamma(f64::from(n) + 1.0)
        - ln_gamma(f64::from(start) + 1.0)
        - ln_gamma(f64::from(n - start) + 1.0)
        + f64::from(start) * p.ln()
        + f64::from(n - start) * q.ln();
    (start, ln_pmf.exp())
}

/// The inverse-CDF walk applied to an explicit uniform: the mapping
/// [`keyed_binomial`] pushes its keyed draw through. Exposed so the
/// memoized tables in [`binomial_table`] can be differential-tested
/// against the walk at the `u` level.
#[inline]
pub fn binomial_from_u01(u: f64, n: u32, p: f64) -> u32 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let q = 1.0 - p;
    let ratio = p / q;
    // Ordered inverse-CDF walk from the anchor: O(E[X] + 1) per draw
    // for the small switch probabilities the ON-OFF chains use. The
    // loop is bounded by `n` regardless of roundoff.
    let (start, mut pmf) = walk_anchor(n, p, q);
    let mut cdf = pmf;
    let mut k = start;
    while u >= cdf && k < n {
        pmf *= (n - k) as f64 / (k + 1) as f64 * ratio;
        k += 1;
        cdf += pmf;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_in_unit_interval() {
        for seed in [0, 1, u64::MAX] {
            for stream in [0, 7, 63, u64::MAX] {
                for counter in [0, 1, 999, u64::MAX] {
                    let u = pervm_u01(seed, stream, counter);
                    assert!((0.0..1.0).contains(&u), "u = {u}");
                }
            }
        }
    }

    #[test]
    fn pure_function_of_coordinates() {
        let a = pervm_u01(42, 3, 17);
        let b = pervm_u01(42, 3, 17);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn distinct_streams_and_counters_decorrelate() {
        // Neighbouring coordinates must not produce near-identical draws:
        // the same counter across adjacent streams, and adjacent counters
        // within one stream, should both look independent.
        let mut same = 0usize;
        for i in 0..1000u64 {
            if (pervm_u01(1, i, 0) - pervm_u01(1, i + 1, 0)).abs() < 1e-6 {
                same += 1;
            }
            if (pervm_u01(1, 0, i) - pervm_u01(1, 0, i + 1)).abs() < 1e-6 {
                same += 1;
            }
        }
        assert!(same <= 1, "{same} near-collisions in 2000 neighbour pairs");
    }

    #[test]
    fn mean_and_variance_close_to_uniform() {
        // 64 streams × 4096 counters ≈ a small fleet's worth of draws.
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let count = 64 * 4096;
        for stream in 0..64u64 {
            for counter in 0..4096u64 {
                let u = pervm_u01(20130527, stream, counter);
                sum += u;
                sum_sq += u * u;
            }
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.002, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn seed_changes_every_stream() {
        let mut diff = 0usize;
        for stream in 0..256u64 {
            if pervm_u01(1, stream, 0) != pervm_u01(2, stream, 0) {
                diff += 1;
            }
        }
        assert_eq!(diff, 256, "a seed change must re-key every stream");
    }

    #[test]
    fn binomial_edge_cases() {
        let key = stream_key(1, 0);
        assert_eq!(keyed_binomial(key, 0, 0, 0.5), 0);
        assert_eq!(keyed_binomial(key, 0, 10, 0.0), 0);
        assert_eq!(keyed_binomial(key, 0, 10, -0.1), 0);
        assert_eq!(keyed_binomial(key, 0, 10, 1.0), 10);
        for counter in 0..100 {
            let x = keyed_binomial(key, counter, 7, 0.3);
            assert!(x <= 7);
        }
    }

    #[test]
    fn binomial_is_pure_function_of_coordinates() {
        let key = class_cell_key(42, 3, class_hash([1, 2, 3, 4]));
        let a = keyed_binomial(key, 17, 25, 0.09);
        let b = keyed_binomial(key, 17, 25, 0.09);
        assert_eq!(a, b);
    }

    #[test]
    fn binomial_moments_match_the_law() {
        // Binomial(n, p) has mean np and variance npq; 40k draws pin both
        // to a few percent.
        for &(n, p) in &[(8u32, 0.09f64), (30, 0.01), (100, 0.25)] {
            let key = class_cell_key(7, 11, class_hash([5, 6, 7, 8]));
            let draws = 40_000u64;
            let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
            for counter in 0..draws {
                let x = f64::from(keyed_binomial(key, counter ^ (u64::from(n) << 32), n, p));
                sum += x;
                sum_sq += x * x;
            }
            let mean = sum / draws as f64;
            let var = sum_sq / draws as f64 - mean * mean;
            let (m, v) = (f64::from(n) * p, f64::from(n) * p * (1.0 - p));
            assert!(
                (mean - m).abs() < 0.05 * m.max(1.0),
                "n={n} p={p} mean {mean} vs {m}"
            );
            assert!(
                (var - v).abs() < 0.08 * v.max(1.0),
                "n={n} p={p} var {var} vs {v}"
            );
        }
    }

    #[test]
    fn binomial_large_n_path_is_sane() {
        // n large enough that q^n underflows: the log-space anchored walk
        // must still sample near np, never the saturated n.
        let key = stream_key(9, 4);
        let (n, p) = (50_000u32, 0.09f64);
        assert_eq!((1.0 - p).powi(n as i32), 0.0, "test premise: underflow");
        let draws = 2_000u64;
        let mut sum = 0.0;
        for counter in 0..draws {
            let x = keyed_binomial(key, counter, n, p);
            assert!(x < n, "saturated draw {x}");
            sum += f64::from(x);
        }
        let mean = sum / draws as f64;
        let expect = f64::from(n) * p;
        assert!(
            (mean - expect).abs() < 0.02 * expect,
            "mean {mean} vs {expect}"
        );
    }
}
