//! Counter-based per-VM random streams for [`RngLayout::PerVm`].
//!
//! The shared layout walks one sequential generator, so draw `i` of step
//! `t` depends on every draw before it — inherently serial. A *counter-
//! based* generator instead computes each draw as a pure function of its
//! coordinates `(seed, stream, counter)`: any thread can produce any
//! VM's draw for any step without touching shared state, which is what
//! makes the per-VM hot path embarrassingly parallel *and* bit-
//! reproducible at every thread count.
//!
//! The mixer is the SplitMix64 finalizer (Steele, Lea & Flood 2014) —
//! the same avalanche function the vendored `StdRng` already uses for
//! seeding. Two rounds over distinct golden-ratio multiples of the
//! coordinates decorrelate neighbouring `(stream, counter)` cells far
//! beyond what a two-state ON-OFF chain can detect; the statistical
//! tests in this module and the distribution checks in
//! `sim/tests/determinism.rs` guard that claim.
//!
//! [`RngLayout::PerVm`]: crate::config::RngLayout::PerVm

/// Weyl increment: 2^64 / φ, the SplitMix64 stream constant.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
/// Second odd constant (from MurmurHash3/SplitMix64 finalizers) keeping
/// the `stream` and `counter` axes from aliasing under the same mixer.
const MIX_B: u64 = 0x94D0_49BB_1331_11EB;

/// SplitMix64 finalizer: full-avalanche 64-bit mixing (every input bit
/// flips each output bit with probability ~1/2).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(MIX_B);
    z ^ (z >> 31)
}

/// The key of one per-VM stream: a mixed combination of the run seed and
/// the VM's index. Hoisting this out of the per-step call saves one
/// `mix64` round in the hot loop.
#[inline]
pub(crate) fn stream_key(seed: u64, stream: u64) -> u64 {
    mix64(seed ^ mix64(stream.wrapping_mul(GOLDEN) ^ MIX_B))
}

/// Draw `counter` of a keyed stream as a uniform `f64` in `[0, 1)`,
/// using the top 53 bits of the mixed word (the full mantissa width, the
/// same precision as the vendored `StdRng::gen::<f64>()`).
#[inline]
pub(crate) fn keyed_u01(key: u64, counter: u64) -> f64 {
    let z = mix64(key ^ counter.wrapping_mul(GOLDEN));
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` draw at coordinates `(seed, stream, counter)`.
///
/// Pure and stateless: `pervm_u01(s, i, t)` is the same value no matter
/// which thread computes it or in what order. Stream `i` is the VM's
/// index in the simulated fleet; `counter` is the step number.
#[inline]
pub fn pervm_u01(seed: u64, stream: u64, counter: u64) -> f64 {
    keyed_u01(stream_key(seed, stream), counter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_in_unit_interval() {
        for seed in [0, 1, u64::MAX] {
            for stream in [0, 7, 63, u64::MAX] {
                for counter in [0, 1, 999, u64::MAX] {
                    let u = pervm_u01(seed, stream, counter);
                    assert!((0.0..1.0).contains(&u), "u = {u}");
                }
            }
        }
    }

    #[test]
    fn pure_function_of_coordinates() {
        let a = pervm_u01(42, 3, 17);
        let b = pervm_u01(42, 3, 17);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn distinct_streams_and_counters_decorrelate() {
        // Neighbouring coordinates must not produce near-identical draws:
        // the same counter across adjacent streams, and adjacent counters
        // within one stream, should both look independent.
        let mut same = 0usize;
        for i in 0..1000u64 {
            if (pervm_u01(1, i, 0) - pervm_u01(1, i + 1, 0)).abs() < 1e-6 {
                same += 1;
            }
            if (pervm_u01(1, 0, i) - pervm_u01(1, 0, i + 1)).abs() < 1e-6 {
                same += 1;
            }
        }
        assert!(same <= 1, "{same} near-collisions in 2000 neighbour pairs");
    }

    #[test]
    fn mean_and_variance_close_to_uniform() {
        // 64 streams × 4096 counters ≈ a small fleet's worth of draws.
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let count = 64 * 4096;
        for stream in 0..64u64 {
            for counter in 0..4096u64 {
                let u = pervm_u01(20130527, stream, counter);
                sum += u;
                sum_sq += u * u;
            }
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.002, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.002, "var {var}");
    }

    #[test]
    fn seed_changes_every_stream() {
        let mut diff = 0usize;
        for stream in 0..256u64 {
            if pervm_u01(1, stream, 0) != pervm_u01(2, stream, 0) {
                diff += 1;
            }
        }
        assert_eq!(diff, 256, "a seed change must re-key every stream");
    }
}
