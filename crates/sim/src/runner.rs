//! Parallel replication of simulation runs.
//!
//! The paper runs each §V-D setting ten times and reports mean/min/max.
//! Replications are embarrassingly parallel — each one owns its RNG — so
//! they fan out across a scoped thread pool and stream results back over a
//! channel.

use crossbeam::channel;
use std::num::NonZeroUsize;
use std::thread;

/// Runs `f(seed)` for each seed in `seeds`, in parallel across up to
/// `available_parallelism` threads, returning outcomes in seed order.
///
/// `f` must be deterministic in its seed for results to be reproducible
/// (every simulator entry point in this workspace is).
pub fn replicate_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(seeds.len().max(1));
    if threads <= 1 || seeds.len() <= 1 {
        return seeds.iter().map(|&s| f(s)).collect();
    }

    let (tx, rx) = channel::unbounded::<(usize, T)>();
    thread::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                // Static stride partitioning: replication costs are
                // near-uniform, so striding balances without a work queue.
                for (idx, &seed) in seeds.iter().enumerate().skip(worker).step_by(threads) {
                    tx.send((idx, f(seed))).expect("collector outlives workers");
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..seeds.len()).map(|_| None).collect();
        for (idx, value) in rx {
            slots[idx] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced"))
            .collect()
    })
}

/// Convenience wrapper: seeds `base_seed..base_seed + runs`.
pub fn replicate<T, F>(runs: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = (0..runs as u64).map(|i| base_seed + i).collect();
    replicate_seeds(&seeds, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_seed_order() {
        let out = replicate_seeds(&[5, 1, 9, 3], |s| s * 10);
        assert_eq!(out, vec![50, 10, 90, 30]);
    }

    #[test]
    fn every_seed_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let seeds: Vec<u64> = (0..64).collect();
        let out = replicate_seeds(&seeds, |s| {
            counter.fetch_add(1, Ordering::Relaxed);
            s
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out, seeds);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u64> = replicate_seeds(&[], |s| s);
        assert!(none.is_empty());
        assert_eq!(replicate(1, 42, |s| s), vec![42]);
    }

    #[test]
    fn replicate_uses_consecutive_seeds() {
        assert_eq!(replicate(3, 100, |s| s), vec![100, 101, 102]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let seeds: Vec<u64> = (0..40).collect();
        let heavy = |s: u64| {
            // Deterministic pseudo-work.
            let mut acc = s;
            for _ in 0..1000 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let parallel = replicate_seeds(&seeds, heavy);
        let sequential: Vec<u64> = seeds.iter().map(|&s| heavy(s)).collect();
        assert_eq!(parallel, sequential);
    }
}
