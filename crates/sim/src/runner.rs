//! Parallel replication of simulation runs.
//!
//! The paper runs each §V-D setting ten times and reports mean/min/max.
//! Replications are embarrassingly parallel — each one owns its RNG — so
//! they fan out across a scoped thread pool and stream results back over a
//! channel.

use crossbeam::channel;
use std::any::Any;
use std::cell::Cell;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread;

thread_local! {
    /// Set while this thread is a [`replicate_seeds`] worker. The engine's
    /// per-VM parallel path consults it to resolve its thread count to 1:
    /// replication-level parallelism already owns every core, and nesting
    /// a scoped pool per replication would only add spawn churn. Purely a
    /// scheduling guard — [`crate::config::RngLayout::PerVm`] outcomes are
    /// thread-count invariant, so the clamp cannot change any result.
    static IN_REPLICATION_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True on a thread currently executing replications for
/// [`replicate_seeds`] (the engine's nested-parallelism guard).
pub(crate) fn in_replication_worker() -> bool {
    IN_REPLICATION_WORKER.with(Cell::get)
}

/// Runs `f(i)` for every `i in 0..count`, in parallel across up to
/// `available_parallelism` threads, returning results in ascending index
/// order — the deterministic fan-out driver behind [`replicate_seeds`] and
/// the experiment sweep grids.
///
/// `f` must be deterministic in its index for results to be reproducible
/// (every simulator entry point in this workspace is). Workers raise the
/// replication-worker flag, so nested engine parallelism collapses to one
/// thread instead of oversubscribing the machine.
///
/// # Panics
/// If `f` panics for some index, the panic is re-raised on the calling
/// thread with its original payload (not the generic "a scoped thread
/// panicked" the scope would otherwise surface). When several indices
/// panic, the lowest one wins — the same panic a sequential run would hit
/// first, so parallelism does not change which error is reported.
pub fn run_indexed<T, F>(count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(count.max(1));
    if threads <= 1 || count <= 1 {
        return (0..count).map(&f).collect();
    }

    type Payload = Box<dyn Any + Send + 'static>;
    let (tx, rx) = channel::unbounded::<(usize, Result<T, Payload>)>();
    thread::scope(|scope| {
        for worker in 0..threads {
            let tx = tx.clone();
            let f = &f;
            scope.spawn(move || {
                IN_REPLICATION_WORKER.with(|flag| flag.set(true));
                // Static stride partitioning: grid-point costs are
                // near-uniform, so striding balances without a work queue.
                for idx in (worker..count).step_by(threads) {
                    let result = catch_unwind(AssertUnwindSafe(|| f(idx)));
                    let failed = result.is_err();
                    tx.send((idx, result)).expect("collector outlives workers");
                    if failed {
                        break; // this worker's remaining indices are moot
                    }
                }
            });
        }
        drop(tx);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut first_panic: Option<(usize, Payload)> = None;
        for (idx, value) in rx {
            match value {
                Ok(value) => slots[idx] = Some(value),
                Err(payload) => {
                    if first_panic.as_ref().is_none_or(|(i, _)| idx < *i) {
                        first_panic = Some((idx, payload));
                    }
                }
            }
        }
        if let Some((_, payload)) = first_panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every index produced"))
            .collect()
    })
}

/// Runs `f(seed)` for each seed in `seeds`, in parallel across up to
/// `available_parallelism` threads, returning outcomes in seed order.
/// A thin wrapper over [`run_indexed`].
///
/// # Panics
/// Propagates worker panics exactly as [`run_indexed`] does.
pub fn replicate_seeds<T, F>(seeds: &[u64], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    run_indexed(seeds.len(), |i| f(seeds[i]))
}

/// Convenience wrapper: seeds `base_seed..base_seed + runs`.
pub fn replicate<T, F>(runs: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let seeds: Vec<u64> = (0..runs as u64).map(|i| base_seed + i).collect();
    replicate_seeds(&seeds, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_are_flagged_for_the_nesting_guard() {
        // The calling thread is not a worker...
        assert!(!in_replication_worker());
        let seeds: Vec<u64> = (0..8).collect();
        let flags = replicate_seeds(&seeds, |s| (s, in_replication_worker()));
        // ...but when replications actually fan out, each one sees the
        // guard raised. (On a single-core machine the sequential path
        // runs on the caller, legitimately unflagged.)
        let parallel = thread::available_parallelism().map_or(1, NonZeroUsize::get) > 1;
        for (s, flagged) in flags {
            assert_eq!(flagged, parallel, "seed {s}");
        }
        assert!(!in_replication_worker(), "flag must not leak to callers");
    }

    #[test]
    fn run_indexed_returns_ascending_index_order() {
        let out = run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
        let none: Vec<usize> = run_indexed(0, |i| i);
        assert!(none.is_empty());
    }

    #[test]
    fn run_indexed_lowest_index_panic_wins() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(32, |i| {
                if i >= 5 {
                    panic!("point {i}");
                }
                i
            })
        })
        .expect_err("must panic");
        assert_eq!(caught.downcast_ref::<String>().unwrap(), "point 5");
    }

    #[test]
    fn results_are_in_seed_order() {
        let out = replicate_seeds(&[5, 1, 9, 3], |s| s * 10);
        assert_eq!(out, vec![50, 10, 90, 30]);
    }

    #[test]
    fn every_seed_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let seeds: Vec<u64> = (0..64).collect();
        let out = replicate_seeds(&seeds, |s| {
            counter.fetch_add(1, Ordering::Relaxed);
            s
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        assert_eq!(out, seeds);
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u64> = replicate_seeds(&[], |s| s);
        assert!(none.is_empty());
        assert_eq!(replicate(1, 42, |s| s), vec![42]);
    }

    #[test]
    fn replicate_uses_consecutive_seeds() {
        assert_eq!(replicate(3, 100, |s| s), vec![100, 101, 102]);
    }

    #[test]
    fn worker_panic_propagates_with_original_payload() {
        let seeds: Vec<u64> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            replicate_seeds(&seeds, |s| {
                if s == 7 {
                    panic!("seed {s} exploded");
                }
                s
            })
        })
        .expect_err("the worker panic must reach the caller");
        let message = caught
            .downcast_ref::<String>()
            .expect("payload must be the original formatted message");
        assert_eq!(message, "seed 7 exploded");
    }

    #[test]
    fn lowest_seed_panic_wins_when_several_fail() {
        let seeds: Vec<u64> = (0..32).collect();
        let caught = std::panic::catch_unwind(|| {
            replicate_seeds(&seeds, |s| {
                if s >= 3 {
                    panic!("seed {s}");
                }
                s
            })
        })
        .expect_err("must panic");
        // Workers race, but the collector re-raises the earliest index —
        // the panic a sequential run would have hit.
        assert_eq!(caught.downcast_ref::<String>().unwrap(), "seed 3");
    }

    #[test]
    fn sequential_path_panics_too() {
        // One seed takes the non-threaded path; the panic must still
        // escape unchanged.
        let caught =
            std::panic::catch_unwind(|| replicate_seeds(&[9], |_| -> u64 { panic!("lone seed") }))
                .expect_err("must panic");
        assert_eq!(caught.downcast_ref::<&str>().unwrap(), &"lone seed");
    }

    #[test]
    fn parallel_matches_sequential() {
        let seeds: Vec<u64> = (0..40).collect();
        let heavy = |s: u64| {
            // Deterministic pseudo-work.
            let mut acc = s;
            for _ in 0..1000 {
                acc = acc
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            acc
        };
        let parallel = replicate_seeds(&seeds, heavy);
        let sequential: Vec<u64> = seeds.iter().map(|&s| heavy(s)).collect();
        assert_eq!(parallel, sequential);
    }
}
