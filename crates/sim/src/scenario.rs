//! Churn scenarios: the online situation of §IV-E under runtime dynamics.
//!
//! The base simulator runs a fixed population. Real clouds churn: tenants
//! arrive and leave while spikes come and go and the migration controller
//! does its job. This scenario simulator combines all three processes —
//! a geometric arrival/lifetime model, the ON-OFF workload dynamics, and
//! threshold-triggered live migration — to study how each consolidation
//! scheme behaves under sustained churn (an extension beyond the paper's
//! static-population evaluation).

use crate::config::{RngLayout, SimConfig};
use crate::events::MigrationEvent;
use crate::policy::{PmRuntime, RuntimePolicy};
use bursty_metrics::TimeSeries;
use bursty_placement::PmLoad;
use bursty_workload::{PmSpec, VmSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Churn parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Expected VM arrivals per update period.
    pub arrival_rate: f64,
    /// Per-step departure probability of each live VM (geometric
    /// lifetimes with mean `1 / departure_prob`).
    pub departure_prob: f64,
    /// Sampling ranges for newcomers' demands.
    pub r_b_range: std::ops::Range<f64>,
    /// Spike-size range for newcomers.
    pub r_e_range: std::ops::Range<f64>,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            arrival_rate: 1.0,
            departure_prob: 0.01,
            r_b_range: 2.0..20.0,
            r_e_range: 2.0..20.0,
        }
    }
}

/// Outcome of a churn run.
#[derive(Debug, Clone)]
pub struct ChurnOutcome {
    /// Total arrivals admitted.
    pub admitted: usize,
    /// Arrivals rejected (no PM admitted the newcomer).
    pub rejected: usize,
    /// Departures processed.
    pub departed: usize,
    /// Live migrations performed.
    pub migrations: Vec<MigrationEvent>,
    /// PM-step violations observed.
    pub violation_steps: usize,
    /// PM-steps observed (denominator for the fleet-wide CVR).
    pub active_pm_steps: usize,
    /// PMs in use per step.
    pub pms_used_series: TimeSeries,
    /// VMs live per step.
    pub population_series: TimeSeries,
}

impl ChurnOutcome {
    /// Fleet-wide CVR: violating PM-steps over active PM-steps.
    pub fn fleet_cvr(&self) -> f64 {
        if self.active_pm_steps == 0 {
            0.0
        } else {
            self.violation_steps as f64 / self.active_pm_steps as f64
        }
    }

    /// Admission rate among arrivals.
    pub fn admission_rate(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

/// Runs a churn scenario on `pms` under `policy` (which doubles as the
/// admission rule for newcomers and migration targets).
///
/// Switch probabilities for newcomers are `(p_on, p_off)`; the run starts
/// from an empty cluster.
///
/// # Examples
/// ```
/// use bursty_placement::QueueStrategy;
/// use bursty_sim::{run_churn, ChurnConfig, QueuePolicy, SimConfig};
/// use bursty_workload::PmSpec;
///
/// let pms: Vec<PmSpec> = (0..100).map(|j| PmSpec::new(j, 90.0)).collect();
/// let policy = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
/// let sim = SimConfig { steps: 300, seed: 1, ..SimConfig::default() };
/// let out = run_churn(&pms, &policy, sim, ChurnConfig::default(), 0.01, 0.09);
/// assert!(out.admitted > 0);
/// assert!(out.fleet_cvr() <= 0.02); // Eq.-17 admission keeps churn safe
/// ```
pub fn run_churn(
    pms: &[PmSpec],
    policy: &dyn RuntimePolicy,
    sim: SimConfig,
    churn: ChurnConfig,
    p_on: f64,
    p_off: f64,
) -> ChurnOutcome {
    sim.validate()
        .unwrap_or_else(|e| panic!("invalid SimConfig: {e}"));
    assert!(
        churn.arrival_rate >= 0.0,
        "arrival rate must be nonnegative"
    );
    assert!(
        (0.0..=1.0).contains(&churn.departure_prob),
        "departure probability must be in [0,1]"
    );
    let mut rng = StdRng::seed_from_u64(sim.seed);
    let m = pms.len();

    // Live population: spec, host PM, ON flag.
    let mut live: Vec<(VmSpec, usize, bool)> = Vec::new();
    let mut loads: Vec<PmLoad> = vec![PmLoad::empty(); m];
    let mut next_id = 0usize;

    let mut outcome = ChurnOutcome {
        admitted: 0,
        rejected: 0,
        departed: 0,
        migrations: Vec::new(),
        violation_steps: 0,
        active_pm_steps: 0,
        pms_used_series: TimeSeries::new(0.0, sim.sigma_secs),
        population_series: TimeSeries::new(0.0, sim.sigma_secs),
    };
    let mut vio = vec![0usize; m];
    let mut active = vec![0usize; m];

    let rebuild = |loads: &mut Vec<PmLoad>, live: &[(VmSpec, usize, bool)], j: usize| {
        loads[j] = PmLoad::rebuild(live.iter().filter(|&&(_, h, _)| h == j).map(|(v, _, _)| v));
    };

    for step in 0..sim.steps {
        // 1. Departures (geometric lifetimes).
        let mut touched: Vec<usize> = Vec::new();
        live.retain(|&(_, host, _)| {
            if rng.gen::<f64>() < churn.departure_prob {
                touched.push(host);
                outcome.departed += 1;
                false
            } else {
                true
            }
        });
        for j in touched {
            rebuild(&mut loads, &live, j);
        }

        // 2. Arrivals (Poisson via per-step thinning into unit draws).
        let mut arrivals = 0usize;
        // Sample a Poisson(arrival_rate) count by inversion (rate is small).
        let l = (-churn.arrival_rate).exp();
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                break;
            }
            arrivals += 1;
        }
        for _ in 0..arrivals {
            let vm = VmSpec::new(
                next_id,
                p_on,
                p_off,
                rng.gen_range(churn.r_b_range.clone()),
                rng.gen_range(churn.r_e_range.clone()),
            );
            next_id += 1;
            // Newcomers start OFF and are admitted by the policy's rule
            // on spec-aggregates and observed demand.
            let observed: Vec<f64> = observed_demands(&live, &loads, m);
            let slot = (0..m).find(|&j| {
                let pm = PmRuntime {
                    load: loads[j],
                    observed: observed[j],
                };
                policy.admits(&vm, vm.r_b, &pm, pms[j].capacity)
            });
            match slot {
                Some(j) => {
                    loads[j].add(&vm);
                    live.push((vm, j, false));
                    outcome.admitted += 1;
                }
                None => outcome.rejected += 1,
            }
        }

        // 3. Workload evolution. Under the shared layout the chains draw
        //    from the same sequential stream as the churn control plane
        //    (the historical behaviour, unchanged bit for bit). Under
        //    RngLayout::PerVm each VM draws from its own counter-based
        //    stream keyed by its id, so a tenant's spike sample path is
        //    invariant to the churn around it; arrival, departure, and
        //    demand-sampling draws always stay on the shared stream.
        match sim.rng_layout {
            RngLayout::Shared => {
                for (vm, _, on) in live.iter_mut() {
                    let state = if *on {
                        bursty_markov::VmState::On
                    } else {
                        bursty_markov::VmState::Off
                    };
                    *on = vm.chain().step(state, &mut rng).is_on();
                }
            }
            RngLayout::PerVm => {
                for (vm, _, on) in live.iter_mut() {
                    let u = crate::rng::pervm_u01(sim.seed, vm.id as u64, step as u64);
                    *on = if *on { u >= vm.p_off } else { u < vm.p_on };
                }
            }
            RngLayout::ClassAggregated => {
                // Group the live population into (host, class) cells and
                // evolve each with one pair of binomial draws — the same
                // aggregation the engine's class layout uses, applied to
                // a churning population. Cell streams are keyed by
                // (seed, host, class contents, step), so arrivals and
                // departures never shift another cell's draws; the new
                // ON count disaggregates back to member flags with the
                // canonical lowest-id-first rule. Continuous-sampled
                // newcomers form singleton cells (Binomial(1, p) is just
                // Bernoulli), so the arm stays exact for any class mix.
                use crate::rng::{class_cell_key, class_hash, keyed_binomial};
                use bursty_workload::VmClass;
                let mut cells: Vec<(usize, [u64; 4], usize, usize)> = live
                    .iter()
                    .enumerate()
                    .map(|(v, (vm, host, _))| (*host, VmClass::of(vm).key(), vm.id, v))
                    .collect();
                cells.sort_unstable();
                let mut at = 0;
                while at < cells.len() {
                    let (host0, key0, _, v0) = cells[at];
                    let mut end = at + 1;
                    while end < cells.len() && cells[end].0 == host0 && cells[end].1 == key0 {
                        end += 1;
                    }
                    let group = &cells[at..end];
                    let n_on = group.iter().filter(|&&(_, _, _, v)| live[v].2).count() as u32;
                    let n_off = group.len() as u32 - n_on;
                    let (cls_p_on, cls_p_off) = (live[v0].0.p_on, live[v0].0.p_off);
                    let key = class_cell_key(sim.seed, host0 as u64, class_hash(key0));
                    let out = keyed_binomial(key, 2 * step as u64, n_on, cls_p_off);
                    let inn = keyed_binomial(key, 2 * step as u64 + 1, n_off, cls_p_on);
                    let new_on = (n_on - out + inn) as usize;
                    for (g, &(_, _, _, v)) in group.iter().enumerate() {
                        live[v].2 = g < new_on;
                    }
                    at = end;
                }
            }
        }

        // 4. Violations + migration.
        let observed = observed_demands(&live, &loads, m);
        for j in 0..m {
            if loads[j].is_empty() {
                continue;
            }
            active[j] += 1;
            outcome.active_pm_steps += 1;
            if observed[j] > pms[j].capacity + 1e-9 {
                vio[j] += 1;
                outcome.violation_steps += 1;
                if sim.migrations_enabled && vio[j] as f64 / active[j] as f64 > sim.rho {
                    migrate_one(
                        j,
                        &mut live,
                        &mut loads,
                        &observed,
                        pms,
                        policy,
                        step,
                        &mut outcome.migrations,
                    );
                }
            }
        }

        outcome
            .pms_used_series
            .push(loads.iter().filter(|l| !l.is_empty()).count() as f64);
        outcome.population_series.push(live.len() as f64);
    }
    outcome
}

fn observed_demands(live: &[(VmSpec, usize, bool)], loads: &[PmLoad], m: usize) -> Vec<f64> {
    let mut observed = vec![0.0; m];
    for &(vm, host, on) in live {
        observed[host] += vm.demand(on);
    }
    debug_assert_eq!(loads.len(), m);
    observed
}

#[allow(clippy::too_many_arguments)]
fn migrate_one(
    source: usize,
    live: &mut [(VmSpec, usize, bool)],
    loads: &mut [PmLoad],
    observed: &[f64],
    pms: &[PmSpec],
    policy: &dyn RuntimePolicy,
    step: usize,
    migrations: &mut Vec<MigrationEvent>,
) {
    // Victim: largest-demand ON VM on the source.
    let victim = live
        .iter()
        .enumerate()
        .filter(|(_, &(_, h, _))| h == source)
        .max_by(|(_, a), (_, b)| {
            let key = |e: &(VmSpec, usize, bool)| (e.2 as u8, e.0.demand(e.2));
            let (ka, kb) = (key(a), key(b));
            ka.0.cmp(&kb.0).then(ka.1.total_cmp(&kb.1))
        })
        .map(|(i, _)| i);
    let Some(vi) = victim else { return };
    let (vm, _, on) = live[vi];
    let vm_demand = vm.demand(on);

    let admit = |j: usize| {
        let pm = PmRuntime {
            load: loads[j],
            observed: observed[j],
        };
        policy.admits(&vm, vm_demand, &pm, pms[j].capacity)
    };
    let target = (0..pms.len())
        .find(|&j| j != source && !loads[j].is_empty() && admit(j))
        .or_else(|| (0..pms.len()).find(|&j| j != source && loads[j].is_empty() && admit(j)));
    if let Some(t) = target {
        live[vi].1 = t;
        loads[t].add(&vm);
        loads[source] = PmLoad::rebuild(
            live.iter()
                .filter(|&&(_, h, _)| h == source)
                .map(|(v, _, _)| v),
        );
        migrations.push(MigrationEvent {
            step,
            vm_id: vm.id,
            from_pm: source,
            to_pm: t,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{ObservedPolicy, QueuePolicy};
    use bursty_placement::QueueStrategy;

    fn pms(m: usize, cap: f64) -> Vec<PmSpec> {
        (0..m).map(|j| PmSpec::new(j, cap)).collect()
    }

    fn sim(steps: usize, seed: u64) -> SimConfig {
        SimConfig {
            steps,
            seed,
            ..Default::default()
        }
    }

    fn queue_policy() -> QueuePolicy {
        QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01))
    }

    #[test]
    fn population_reaches_balance() {
        // λ = 1 arrival/step, mean lifetime 100 steps → ~100 live VMs.
        let policy = queue_policy();
        let out = run_churn(
            &pms(300, 90.0),
            &policy,
            sim(2_000, 1),
            ChurnConfig::default(),
            0.01,
            0.09,
        );
        let tail: f64 = out.population_series.values[1_500..].iter().sum::<f64>() / 500.0;
        assert!((tail - 100.0).abs() < 25.0, "steady population {tail}");
        assert_eq!(out.population_series.len(), 2_000);
    }

    #[test]
    fn queue_policy_keeps_fleet_cvr_bounded_under_churn() {
        let policy = queue_policy();
        let out = run_churn(
            &pms(300, 90.0),
            &policy,
            sim(3_000, 2),
            ChurnConfig::default(),
            0.01,
            0.09,
        );
        assert!(out.fleet_cvr() <= 0.012, "fleet CVR {}", out.fleet_cvr());
        assert!(
            out.admission_rate() > 0.95,
            "admissions {}",
            out.admission_rate()
        );
        assert!(out.migrations.len() < out.admitted / 10);
    }

    #[test]
    fn rb_policy_violates_and_migrates_under_churn() {
        let policy = ObservedPolicy::rb();
        let out = run_churn(
            &pms(300, 90.0),
            &policy,
            sim(3_000, 2),
            ChurnConfig::default(),
            0.01,
            0.09,
        );
        assert!(out.fleet_cvr() > 0.02, "RB fleet CVR {}", out.fleet_cvr());
        assert!(!out.migrations.is_empty());
    }

    #[test]
    fn zero_arrival_rate_is_an_empty_run() {
        let policy = queue_policy();
        let churn = ChurnConfig {
            arrival_rate: 0.0,
            ..Default::default()
        };
        let out = run_churn(&pms(10, 90.0), &policy, sim(200, 3), churn, 0.01, 0.09);
        assert_eq!(out.admitted, 0);
        assert_eq!(out.departed, 0);
        assert_eq!(out.fleet_cvr(), 0.0);
        assert_eq!(out.admission_rate(), 1.0);
        assert!(out.pms_used_series.values.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn tiny_pool_rejects_overflow_arrivals() {
        let policy = queue_policy();
        let churn = ChurnConfig {
            arrival_rate: 2.0,
            departure_prob: 0.001,
            ..Default::default()
        };
        let out = run_churn(&pms(2, 90.0), &policy, sim(500, 4), churn, 0.01, 0.09);
        assert!(out.rejected > 0, "a 2-PM pool must reject under λ=2 churn");
        assert!(out.admission_rate() < 1.0);
    }

    #[test]
    fn pervm_layout_under_churn_is_deterministic_and_distinct() {
        let policy = queue_policy();
        let run = |layout: RngLayout, seed: u64| {
            let cfg = SimConfig {
                rng_layout: layout,
                ..sim(800, seed)
            };
            let out = run_churn(
                &pms(100, 90.0),
                &policy,
                cfg,
                ChurnConfig::default(),
                0.01,
                0.09,
            );
            (
                out.admitted,
                out.departed,
                out.migrations.len(),
                out.violation_steps,
            )
        };
        // Reproducible per seed, and a different sample path than the
        // shared layout under the same seed (the streams re-paired).
        assert_eq!(run(RngLayout::PerVm, 5), run(RngLayout::PerVm, 5));
        assert_ne!(run(RngLayout::PerVm, 5), run(RngLayout::Shared, 5));
        // The class-aggregated layout is deterministic per seed too, and
        // walks its own sample path (binomial cell draws, not per-VM
        // coins).
        assert_eq!(
            run(RngLayout::ClassAggregated, 5),
            run(RngLayout::ClassAggregated, 5)
        );
        assert_ne!(run(RngLayout::ClassAggregated, 5), run(RngLayout::PerVm, 5));
    }

    #[test]
    fn deterministic_in_seed() {
        let policy = queue_policy();
        let run = |seed| {
            let out = run_churn(
                &pms(100, 90.0),
                &policy,
                sim(500, seed),
                ChurnConfig::default(),
                0.01,
                0.09,
            );
            (
                out.admitted,
                out.departed,
                out.migrations.len(),
                out.violation_steps,
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
