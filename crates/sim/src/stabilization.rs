//! Stabilization detection (paper §V-D: "it is observed that the system
//! have stabilized merely within 10 σ or so").
//!
//! Works on the per-step outputs of a run: the PMs-used series and the
//! migration event list. A system is *stable from step t* when the
//! PMs-used series stays within a small band afterwards and migrations
//! have (essentially) ceased.

use crate::events::MigrationEvent;

/// The verdict of a stabilization scan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stabilization {
    /// First step from which the run is stable, if any.
    pub step: Option<usize>,
    /// Width of the PMs-used band over the stable suffix (0 when the
    /// count froze entirely).
    pub residual_band: f64,
    /// Migrations occurring after the stabilization step.
    pub residual_migrations: usize,
}

/// Scans a run for stabilization: the earliest step `t` such that over
/// `[t, end]` the PMs-used series varies by at most `band` and at most
/// `migration_budget` migrations occur.
///
/// Returns `step: None` when no suffix qualifies (e.g. RB's perpetual
/// cycle migration with a tight budget).
///
/// # Panics
/// Panics if `band < 0`.
pub fn detect_stabilization(
    pms_used: &[f64],
    migrations: &[MigrationEvent],
    band: f64,
    migration_budget: usize,
) -> Stabilization {
    assert!(band >= 0.0, "band must be nonnegative");
    let n = pms_used.len();
    if n == 0 {
        return Stabilization {
            step: None,
            residual_band: 0.0,
            residual_migrations: 0,
        };
    }

    // Suffix extrema, computed right-to-left once.
    let mut suffix_min = vec![f64::INFINITY; n + 1];
    let mut suffix_max = vec![f64::NEG_INFINITY; n + 1];
    for t in (0..n).rev() {
        suffix_min[t] = suffix_min[t + 1].min(pms_used[t]);
        suffix_max[t] = suffix_max[t + 1].max(pms_used[t]);
    }
    // Migrations at or after each step.
    let mut migs_after = vec![0usize; n + 1];
    for t in (0..n).rev() {
        let here = migrations.iter().filter(|e| e.step == t).count();
        migs_after[t] = migs_after[t + 1] + here;
    }

    for t in 0..n {
        let spread = suffix_max[t] - suffix_min[t];
        if spread <= band && migs_after[t] <= migration_budget {
            return Stabilization {
                step: Some(t),
                residual_band: spread,
                residual_migrations: migs_after[t],
            };
        }
    }
    Stabilization {
        step: None,
        residual_band: suffix_max[0] - suffix_min[0],
        residual_migrations: migs_after[0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(step: usize) -> MigrationEvent {
        MigrationEvent {
            step,
            vm_id: 0,
            from_pm: 0,
            to_pm: 1,
        }
    }

    #[test]
    fn flat_series_is_stable_from_zero() {
        let s = detect_stabilization(&[5.0; 20], &[], 0.0, 0);
        assert_eq!(s.step, Some(0));
        assert_eq!(s.residual_band, 0.0);
    }

    #[test]
    fn ramp_then_flat_detects_knee() {
        let mut series = vec![3.0, 5.0, 7.0, 9.0];
        series.extend(std::iter::repeat_n(10.0, 16));
        let s = detect_stabilization(&series, &[], 0.0, 0);
        assert_eq!(s.step, Some(4));
    }

    #[test]
    fn band_tolerates_small_wiggle() {
        let series = [3.0, 8.0, 10.0, 9.0, 10.0, 9.0, 10.0];
        let strict = detect_stabilization(&series, &[], 0.0, 0);
        assert_eq!(strict.step, Some(6));
        let loose = detect_stabilization(&series, &[], 1.0, 0);
        assert_eq!(loose.step, Some(2));
        assert_eq!(loose.residual_band, 1.0);
    }

    #[test]
    fn migrations_delay_stabilization() {
        let series = [5.0; 10];
        let migrations = [ev(2), ev(7)];
        let s = detect_stabilization(&series, &migrations, 0.0, 0);
        assert_eq!(s.step, Some(8));
        let tolerant = detect_stabilization(&series, &migrations, 0.0, 1);
        assert_eq!(tolerant.step, Some(3));
    }

    #[test]
    fn perpetual_churn_never_stabilizes() {
        let series: Vec<f64> = (0..20).map(|t| 5.0 + (t % 4) as f64).collect();
        let migrations: Vec<MigrationEvent> = (0..20).map(ev).collect();
        let s = detect_stabilization(&series, &migrations, 0.5, 0);
        assert_eq!(s.step, None);
        assert!(s.residual_migrations >= 20);
    }

    #[test]
    fn empty_series() {
        let s = detect_stabilization(&[], &[], 0.0, 0);
        assert_eq!(s.step, None);
    }

    #[test]
    fn integration_with_real_runs() {
        // QUEUE stabilizes essentially immediately; RB only after its
        // early churn — mirroring the paper's 10 σ remark.
        use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};
        use bursty_workload::{FleetGenerator, WorkloadPattern};

        let mut gen = FleetGenerator::new(7);
        let vms = gen.vms_table_i(120, WorkloadPattern::EqualSpike);
        let pms = gen.pms(360);
        let cfg = crate::SimConfig {
            seed: 3,
            ..Default::default()
        };

        let qs = QueueStrategy::build(16, 0.01, 0.09, 0.01);
        let q_placement = first_fit(&vms, &pms, &qs).unwrap();
        let q_policy = crate::QueuePolicy::new(qs);
        let q_out = crate::Simulator::new(&vms, &pms, &q_policy, cfg).run(&q_placement);
        let q_stable =
            detect_stabilization(&q_out.pms_used_series.values, &q_out.migrations, 0.0, 0);

        let b_placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let b_policy = crate::ObservedPolicy::rb();
        let b_out = crate::Simulator::new(&vms, &pms, &b_policy, cfg).run(&b_placement);
        let b_stable =
            detect_stabilization(&b_out.pms_used_series.values, &b_out.migrations, 1.0, 2);

        let q_step = q_stable.step.expect("QUEUE must stabilize");
        assert!(q_step <= 10, "QUEUE stabilization step {q_step}");
        // None = perpetual cycle migration, also a paper-consistent outcome.
        if let Some(b_step) = b_stable.step {
            assert!(
                b_step >= q_step,
                "RB ({b_step}) cannot stabilize before QUEUE ({q_step})"
            );
        }
    }
}
