//! Structure-of-arrays fast path for the engine's per-step hot loop.
//!
//! [`Simulator::run`] spends almost all of its time in two per-VM loops:
//! evolving every ON-OFF chain and re-summing every hosted demand into
//! the per-PM `observed` vector. [`WorkloadCore`] flattens the VM specs
//! into four `f64` vectors once per run (`p_on`/`p_off`/`demand_off`/
//! `demand_on`) and fuses both loops into one branch-light pass.
//!
//! Two layouts, one determinism contract (DESIGN.md §8):
//!
//! * [`RngLayout::Shared`] — one sequential `StdRng`, drawn in VM order,
//!   demands summed in ascending VM order. This is *exactly* the draw
//!   and summation order of the pre-SoA engine, so outcomes stay
//!   bit-identical (frozen by `sim/tests/golden.rs`).
//! * [`RngLayout::PerVm`] — each VM draws from its own counter-based
//!   stream ([`crate::rng`]), keyed by the VM's spec id. VMs are split
//!   into fixed chunks of [`PER_VM_CHUNK`] (a function of the fleet
//!   only, never of the thread count); each chunk accumulates demands
//!   into its own partial buffer in ascending VM order, and the partials
//!   are folded into `observed` in ascending chunk order. Both the draw
//!   values and the floating-point grouping are therefore invariant in
//!   the thread count: 1, 2, or 64 workers produce `f64::to_bits`-equal
//!   results. The serial path runs the very same chunked code, so
//!   `threads: 1` equals `threads: N` by construction, not by accident.
//!
//! Workers are plain `std::thread::scope` spawns (the workspace vendors
//! no thread-pool crate), so each step pays a spawn/join round trip —
//! profitable for large fleets, pure overhead for small ones. The
//! engine-throughput bench (`BENCH_engine.json`) records the crossover.
//!
//! [`Simulator::run`]: crate::engine::Simulator::run
//! [`RngLayout::Shared`]: crate::config::RngLayout::Shared
//! [`RngLayout::PerVm`]: crate::config::RngLayout::PerVm

use crate::config::RngLayout;
use crate::rng::{keyed_u01, stream_key};
use bursty_workload::VmSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// Fixed chunk width of the per-VM layout. Part of the determinism
/// contract: chunk boundaries depend only on the fleet size, so the
/// floating-point reduction tree is identical at every thread count.
pub(crate) const PER_VM_CHUNK: usize = 512;

/// Per-chunk demand accumulator: a dense per-PM scratch vector plus the
/// PM indices this chunk touched, in first-touch order. Folding by
/// touch list keeps the reduction O(VMs) instead of O(chunks · PMs).
struct Partial {
    dense: Vec<f64>,
    touched: Vec<usize>,
}

enum Mode {
    Shared {
        rng: StdRng,
    },
    PerVm {
        /// Pre-mixed stream key per VM (`stream_key(seed, spec id)`).
        keys: Vec<u64>,
        /// Resolved worker count (≥ 1). Purely a throughput knob.
        threads: usize,
        partials: Vec<Partial>,
    },
}

/// The engine's per-step hot path in structure-of-arrays form.
pub(crate) struct WorkloadCore {
    p_on: Vec<f64>,
    p_off: Vec<f64>,
    demand_off: Vec<f64>,
    demand_on: Vec<f64>,
    /// Current ON/OFF state per VM; read freely by the engine between
    /// steps (victim selection, demand queries, evacuation sizing).
    pub(crate) on: Vec<bool>,
    mode: Mode,
}

impl WorkloadCore {
    /// Flattens `vms` and prepares the RNG layout. `m` is the PM count
    /// (the width of each per-chunk partial buffer); `threads` follows
    /// [`crate::config::SimConfig::threads`] semantics and is resolved
    /// here: `0` → available parallelism, always `1` inside a
    /// `replicate_seeds` worker, and capped at the chunk count.
    pub(crate) fn new(
        vms: &[VmSpec],
        m: usize,
        seed: u64,
        layout: RngLayout,
        threads: usize,
    ) -> Self {
        let n = vms.len();
        let mode = match layout {
            RngLayout::Shared => Mode::Shared {
                rng: StdRng::seed_from_u64(seed),
            },
            RngLayout::PerVm => {
                let chunks = n.div_ceil(PER_VM_CHUNK).max(1);
                let requested = if crate::runner::in_replication_worker() {
                    1
                } else if threads == 0 {
                    thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    threads
                };
                Mode::PerVm {
                    keys: vms
                        .iter()
                        .map(|vm| stream_key(seed, vm.id as u64))
                        .collect(),
                    threads: requested.clamp(1, chunks),
                    partials: (0..chunks)
                        .map(|_| Partial {
                            dense: vec![0.0; m],
                            touched: Vec::with_capacity(PER_VM_CHUNK.min(n)),
                        })
                        .collect(),
                }
            }
        };
        Self {
            p_on: vms.iter().map(|vm| vm.p_on).collect(),
            p_off: vms.iter().map(|vm| vm.p_off).collect(),
            demand_off: vms.iter().map(|vm| vm.demand(false)).collect(),
            demand_on: vms.iter().map(|vm| vm.demand(true)).collect(),
            on: vec![false; n],
            mode,
        }
    }

    /// Advances every chain one step and rebuilds `observed` (zeroed
    /// first) with the sum of hosted demands per PM. Displaced VMs
    /// (`host[i] == None`) still evolve — the draw sequence must not
    /// depend on fault or migration decisions. Copy-overhead dual
    /// entries stay with the caller.
    pub(crate) fn step(&mut self, step: u64, host: &[Option<usize>], observed: &mut [f64]) {
        let Self {
            p_on,
            p_off,
            demand_off,
            demand_on,
            on,
            mode,
        } = self;
        match mode {
            Mode::Shared { rng } => {
                // Pre-SoA engine order, verbatim: one full evolution
                // pass (n sequential draws), then one full accumulation
                // pass in ascending VM order.
                for i in 0..on.len() {
                    let u = rng.gen::<f64>();
                    on[i] = if on[i] { u >= p_off[i] } else { u < p_on[i] };
                }
                observed.iter_mut().for_each(|o| *o = 0.0);
                for (i, j) in host.iter().enumerate() {
                    if let Some(j) = *j {
                        observed[j] += if on[i] { demand_on[i] } else { demand_off[i] };
                    }
                }
            }
            Mode::PerVm {
                keys,
                threads,
                partials,
            } => {
                let mut units: Vec<(usize, &mut [bool], &mut Partial)> = on
                    .chunks_mut(PER_VM_CHUNK)
                    .zip(partials.iter_mut())
                    .enumerate()
                    .map(|(c, (chunk, partial))| (c, chunk, partial))
                    .collect();
                let evolve_chunk = |c: usize, chunk: &mut [bool], partial: &mut Partial| {
                    let base = c * PER_VM_CHUNK;
                    for (off, on_i) in chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let u = keyed_u01(keys[i], step);
                        *on_i = if *on_i { u >= p_off[i] } else { u < p_on[i] };
                        if let Some(j) = host[i] {
                            if partial.dense[j] == 0.0 {
                                partial.touched.push(j);
                            }
                            partial.dense[j] += if *on_i { demand_on[i] } else { demand_off[i] };
                        }
                    }
                };
                if *threads <= 1 || units.len() <= 1 {
                    for (c, chunk, partial) in &mut units {
                        evolve_chunk(*c, chunk, partial);
                    }
                } else {
                    let mut buckets: Vec<Vec<(usize, &mut [bool], &mut Partial)>> =
                        (0..*threads).map(|_| Vec::new()).collect();
                    for (slot, unit) in units.into_iter().enumerate() {
                        buckets[slot % *threads].push(unit);
                    }
                    thread::scope(|scope| {
                        for bucket in &mut buckets {
                            scope.spawn(|| {
                                for (c, chunk, partial) in bucket.iter_mut() {
                                    evolve_chunk(*c, chunk, partial);
                                }
                            });
                        }
                    });
                }
                // Deterministic reduction: ascending chunk order, each
                // PM's partial added exactly once (a `touched` entry can
                // repeat only while the partial was still 0.0, and the
                // first fold resets it, so duplicates add 0.0).
                observed.iter_mut().for_each(|o| *o = 0.0);
                for partial in partials.iter_mut() {
                    for &j in &partial.touched {
                        observed[j] += partial.dense[j];
                        partial.dense[j] = 0.0;
                    }
                    partial.touched.clear();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| VmSpec::new(i, 0.02 + (i % 7) as f64 * 0.01, 0.08, 8.0, 12.0))
            .collect()
    }

    fn run_core(core: &mut WorkloadCore, host: &[Option<usize>], m: usize, steps: u64) -> Vec<f64> {
        let mut observed = vec![0.0; m];
        let mut trace = Vec::new();
        for step in 0..steps {
            core.step(step, host, &mut observed);
            trace.extend_from_slice(&observed);
        }
        trace
    }

    #[test]
    fn shared_layout_matches_legacy_loop_bit_for_bit() {
        let vms = fleet(133);
        let m = 9;
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();

        // Legacy loop: per-VM chain stepping off one shared StdRng.
        let mut rng = StdRng::seed_from_u64(99);
        let mut on = vec![false; vms.len()];
        let mut legacy = Vec::new();
        for _ in 0..50 {
            for (i, vm) in vms.iter().enumerate() {
                let state = if on[i] {
                    bursty_markov::VmState::On
                } else {
                    bursty_markov::VmState::Off
                };
                on[i] = vm.chain().step(state, &mut rng).is_on();
            }
            let mut observed = vec![0.0; m];
            for (i, j) in host.iter().enumerate() {
                if let Some(j) = *j {
                    observed[j] += vms[i].demand(on[i]);
                }
            }
            legacy.extend_from_slice(&observed);
        }

        let mut core = WorkloadCore::new(&vms, m, 99, RngLayout::Shared, 1);
        let soa = run_core(&mut core, &host, m, 50);
        assert_eq!(legacy.len(), soa.len());
        for (a, b) in legacy.iter().zip(&soa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pervm_layout_is_thread_count_invariant() {
        // Fleet large enough for several chunks; some VMs unhosted.
        let vms = fleet(2 * PER_VM_CHUNK + 77);
        let m = 13;
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 11 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 3, 8] {
            let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::PerVm, threads);
            let trace = run_core(&mut core, &host, m, 25);
            let bits: Vec<u64> = trace.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn pervm_streams_follow_the_stationary_law() {
        // Each chain's long-run ON fraction must approach
        // p_on / (p_on + p_off) under the counter-based streams too.
        let vms: Vec<VmSpec> = (0..400)
            .map(|i| VmSpec::new(i, 0.3, 0.2, 1.0, 1.0))
            .collect();
        let host: Vec<Option<usize>> = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 1, 11, RngLayout::PerVm, 1);
        let mut observed = vec![0.0; 1];
        let steps = 4000u64;
        let mut on_steps = 0usize;
        for step in 0..steps {
            core.step(step, &host, &mut observed);
            on_steps += core.on.iter().filter(|&&b| b).count();
        }
        let frac = on_steps as f64 / (steps as usize * vms.len()) as f64;
        assert!((frac - 0.6).abs() < 0.01, "ON fraction {frac}, want 0.6");
    }

    #[test]
    fn displaced_vms_keep_evolving_without_contributing_demand() {
        let vms = fleet(40);
        let host = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 3, 1, RngLayout::PerVm, 2);
        let mut observed = vec![1.0; 3];
        core.step(0, &host, &mut observed);
        assert!(observed.iter().all(|&o| o == 0.0));
        assert!(core.on.iter().any(|&b| b), "chains must still evolve");
    }
}
