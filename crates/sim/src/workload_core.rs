//! Structure-of-arrays fast path for the engine's per-step hot loop.
//!
//! [`Simulator::run`] spends almost all of its time in two per-VM loops:
//! evolving every ON-OFF chain and re-summing every hosted demand into
//! the per-PM `observed` vector. [`WorkloadCore`] flattens the VM specs
//! into four `f64` vectors once per run (`p_on`/`p_off`/`demand_off`/
//! `demand_on`) and fuses both loops into one branch-light pass.
//!
//! Three layouts, one determinism contract (DESIGN.md §8):
//!
//! * [`RngLayout::Shared`] — one sequential `StdRng`, drawn in VM order,
//!   demands summed in ascending VM order. This is *exactly* the draw
//!   and summation order of the pre-SoA engine, so outcomes stay
//!   bit-identical (frozen by `sim/tests/golden.rs`).
//! * [`RngLayout::PerVm`] — each VM draws from its own counter-based
//!   stream ([`crate::rng`]), keyed by the VM's spec id. VMs are split
//!   into fixed chunks of [`PER_VM_CHUNK`] (a function of the fleet
//!   only, never of the thread count); each chunk accumulates demands
//!   into its own partial buffer in ascending VM order, and the partials
//!   are folded into `observed` in ascending chunk order. Both the draw
//!   values and the floating-point grouping are therefore invariant in
//!   the thread count: 1, 2, or 64 workers produce `f64::to_bits`-equal
//!   results. The serial path runs the very same chunked code, so
//!   `threads: 1` equals `threads: N` by construction, not by accident.
//! * [`RngLayout::ClassAggregated`] — same-class VMs on a PM share one
//!   ON-counter cell; a step is two counter-based binomial draws per
//!   occupied cell (`ON→OFF ~ B(n_on, p_off)`, `OFF→ON ~ B(n_off,
//!   p_on)`) keyed on `(seed, pm, class, step)`, and per-PM demand is
//!   `counter × class demand`. Cost scales with occupied cells, not
//!   fleet size. Thread-count invariant (each PM's demand is computed
//!   wholly by one worker from its own cells) and invariant under class
//!   enumeration order (the class table is sorted by content, cell keys
//!   hash class *contents*). Individual VMs no longer own sample paths:
//!   the engine re-materializes per-VM ON flags lazily at decision
//!   points via the `class_sync_*` hooks (canonical rule: lowest VM
//!   indices of a class at a location are ON first), and agreement with
//!   `PerVm` is distributional — per-PM ON-count marginals, CVR and
//!   energy within certified Wilson intervals — never bit-exact.
//!
//! Workers are plain `std::thread::scope` spawns (the workspace vendors
//! no thread-pool crate), so each step pays a spawn/join round trip —
//! profitable for large fleets, pure overhead for small ones. The
//! engine-throughput bench (`BENCH_engine.json`) records the crossover.
//!
//! [`Simulator::run`]: crate::engine::Simulator::run
//! [`RngLayout::Shared`]: crate::config::RngLayout::Shared
//! [`RngLayout::PerVm`]: crate::config::RngLayout::PerVm

use crate::config::RngLayout;
use crate::rng::binomial_table::{CacheStats, TableCache, DEFAULT_ENTRY_BUDGET};
use crate::rng::{class_cell_key, class_hash, keyed_binomial, keyed_u01, stream_key};
use bursty_workload::classes::VmClass;
use bursty_workload::VmSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// Fixed chunk width of the per-VM layout. Part of the determinism
/// contract: chunk boundaries depend only on the fleet size, so the
/// floating-point reduction tree is identical at every thread count.
pub(crate) const PER_VM_CHUNK: usize = 512;

/// Fixed PM-chunk width of the class-aggregated layout. Unlike the
/// per-VM fold, each PM's demand is produced entirely inside one chunk
/// (cells never span PMs), so any chunking is thread-count invariant;
/// the fixed width just keeps scheduling deterministic and cache-sized.
pub(crate) const CLASS_PM_CHUNK: usize = 512;

/// Per-chunk demand accumulator: a dense per-PM scratch vector plus the
/// PM indices this chunk touched, in first-touch order. Folding by
/// touch list keeps the reduction O(VMs) instead of O(chunks · PMs).
struct Partial {
    dense: Vec<f64>,
    touched: Vec<usize>,
}

/// Per-class chain parameters of the class-aggregated layout, one entry
/// per *distinct* VM class in canonical order (sorted by the exact
/// [`VmClass::key`] bit patterns — a function of the class *contents*,
/// so indices are invariant under fleet enumeration order).
struct ClassInfo {
    p_on: f64,
    p_off: f64,
    demand_off: f64,
    demand_on: f64,
    /// Content hash of the class key, the class axis of every cell's
    /// stream coordinates.
    hash: u64,
    /// Index of `p_off` in the per-chunk table caches' `p` registry.
    slot_off: u32,
    /// Index of `p_on` in the per-chunk table caches' `p` registry.
    slot_on: u32,
}

/// One `(location, class)` ON-counter of the class-aggregated layout:
/// `count` resident VMs of `class`, `n_on` of them currently ON, and the
/// pre-mixed stream key of the cell's binomial draws. A location is a PM
/// or the displaced-VM limbo pool; each location's cells stay sorted by
/// class index so evolution and demand accumulation order are canonical.
struct Cell {
    class: u32,
    count: u32,
    n_on: u32,
    key: u64,
}

enum Mode {
    Shared {
        rng: StdRng,
    },
    PerVm {
        /// Pre-mixed stream key per VM (`stream_key(seed, spec id)`).
        keys: Vec<u64>,
        /// Resolved worker count (≥ 1). Purely a throughput knob.
        threads: usize,
        partials: Vec<Partial>,
    },
    ClassAggregated {
        /// Canonical class table (sorted by class key bit patterns).
        classes: Vec<ClassInfo>,
        /// Canonical class index per VM.
        class_of: Vec<u32>,
        /// CSR offsets over `cells`: location `loc`'s cells live at
        /// `cells[offsets[loc] as usize..offsets[loc + 1] as usize]`.
        /// Locations `0..m` are the PMs, location `m` the limbo pool of
        /// displaced VMs (which evolve but contribute no demand), so
        /// `offsets.len() == m + 2`.
        offsets: Vec<u32>,
        /// All locations' cells in one flat array, sorted by class
        /// within each location. Populated by
        /// [`WorkloadCore::class_init`]; the hot loop only mutates
        /// `n_on`, structural edits (moves, crashes) shift the tail.
        cells: Vec<Cell>,
        /// One memoized binomial-sampler cache per location chunk. The
        /// chunk partition is a function of `m` only, and each chunk is
        /// evolved by exactly one worker per step, so the summed cache
        /// counters are invariant in the thread count.
        caches: Vec<TableCache>,
        /// `true` (the default): draws go through the memoized tables.
        /// `false`: every draw re-runs the pmf-recurrence walk — the
        /// PR-6 kernel, kept addressable for benchmarking because both
        /// samplers are bit-identical by construction.
        cached: bool,
        /// Resolved worker count (≥ 1). Purely a throughput knob.
        threads: usize,
        seed: u64,
    },
}

/// Mode-specific evolving state captured for a checkpoint. The
/// flattened spec vectors, stream keys, and class table are pure
/// functions of the fleet and seed — [`WorkloadCore::new`] rebuilds
/// them on restore — so only the state that advances step-to-step
/// travels. The `on` flags live outside [`Mode`] and are snapshotted
/// by the caller.
pub(crate) enum CoreSnapshot {
    /// The shared `StdRng`'s four xoshiro256++ state words.
    Shared([u64; 4]),
    /// Counter-based streams are pure functions of `(key, step)`; the
    /// partial buffers are per-step scratch, zeroed at every boundary.
    PerVm,
    /// Per-location `(class, count, n_on)` triples in cell order
    /// (locations `0..m` are the PMs, location `m` the limbo pool);
    /// cell keys are rebuilt from the seed and class hashes.
    ClassAggregated(Vec<Vec<(u32, u32, u32)>>),
}

/// The engine's per-step hot path in structure-of-arrays form.
pub(crate) struct WorkloadCore {
    p_on: Vec<f64>,
    p_off: Vec<f64>,
    demand_off: Vec<f64>,
    demand_on: Vec<f64>,
    /// Current ON/OFF state per VM; read freely by the engine between
    /// steps (victim selection, demand queries, evacuation sizing).
    pub(crate) on: Vec<bool>,
    mode: Mode,
}

impl WorkloadCore {
    /// Flattens `vms` and prepares the RNG layout. `m` is the PM count
    /// (the width of each per-chunk partial buffer); `threads` follows
    /// [`crate::config::SimConfig::threads`] semantics and is resolved
    /// here: `0` → available parallelism, always `1` inside a
    /// `replicate_seeds` worker, and capped at the chunk count.
    pub(crate) fn new(
        vms: &[VmSpec],
        m: usize,
        seed: u64,
        layout: RngLayout,
        threads: usize,
    ) -> Self {
        let n = vms.len();
        let resolve_threads = |chunks: usize| {
            let requested = if crate::runner::in_replication_worker() {
                1
            } else if threads == 0 {
                thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                threads
            };
            requested.clamp(1, chunks)
        };
        let mode = match layout {
            RngLayout::Shared => Mode::Shared {
                rng: StdRng::seed_from_u64(seed),
            },
            RngLayout::PerVm => {
                let chunks = n.div_ceil(PER_VM_CHUNK).max(1);
                Mode::PerVm {
                    keys: vms
                        .iter()
                        .map(|vm| stream_key(seed, vm.id as u64))
                        .collect(),
                    threads: resolve_threads(chunks),
                    partials: (0..chunks)
                        .map(|_| Partial {
                            dense: vec![0.0; m],
                            touched: Vec::with_capacity(PER_VM_CHUNK.min(n)),
                        })
                        .collect(),
                }
            }
            RngLayout::ClassAggregated => {
                // Canonical class table: distinct class keys sorted by
                // their exact bit patterns. Sorting by *content* (never
                // first-appearance order) is what makes cell streams —
                // and with them every outcome — invariant under the
                // order VMs are enumerated in the fleet.
                let mut keys: Vec<[u64; 4]> = vms.iter().map(|vm| VmClass::of(vm).key()).collect();
                keys.sort_unstable();
                keys.dedup();
                let index: std::collections::HashMap<[u64; 4], u32> = keys
                    .iter()
                    .enumerate()
                    .map(|(c, &k)| (k, c as u32))
                    .collect();
                let mut classes: Vec<ClassInfo> = keys
                    .iter()
                    .map(|&k| ClassInfo {
                        p_on: f64::from_bits(k[0]),
                        p_off: f64::from_bits(k[1]),
                        demand_off: 0.0,
                        demand_on: 0.0,
                        hash: class_hash(k),
                        slot_off: 0,
                        slot_on: 0,
                    })
                    .collect();
                let class_of: Vec<u32> =
                    vms.iter().map(|vm| index[&VmClass::of(vm).key()]).collect();
                // Demands via the spec's own accessor (bit-identical for
                // every member of a class, so any representative works).
                for (i, vm) in vms.iter().enumerate() {
                    let info = &mut classes[class_of[i] as usize];
                    info.demand_off = vm.demand(false);
                    info.demand_on = vm.demand(true);
                }
                // Registry of distinct switch probabilities: the axis
                // the sampler caches index tables by (alongside n), so
                // the hot loop never hashes.
                let mut p_values: Vec<f64> =
                    classes.iter().flat_map(|c| [c.p_off, c.p_on]).collect();
                p_values.sort_by(f64::total_cmp);
                p_values.dedup_by(|a, b| a.to_bits() == b.to_bits());
                let slot_of = |p: f64| {
                    p_values
                        .binary_search_by(|v| v.total_cmp(&p))
                        .expect("registered probability") as u32
                };
                for info in &mut classes {
                    info.slot_off = slot_of(info.p_off);
                    info.slot_on = slot_of(info.p_on);
                }
                // One chunk per CLASS_PM_CHUNK locations (the m PMs plus
                // the limbo pool, which rides in the last chunk).
                let chunks = (m + 1).div_ceil(CLASS_PM_CHUNK);
                Mode::ClassAggregated {
                    classes,
                    class_of,
                    offsets: vec![0; m + 2],
                    cells: Vec::new(),
                    caches: (0..chunks)
                        .map(|_| TableCache::new(&p_values, DEFAULT_ENTRY_BUDGET))
                        .collect(),
                    cached: true,
                    threads: resolve_threads(chunks),
                    seed,
                }
            }
        };
        Self {
            p_on: vms.iter().map(|vm| vm.p_on).collect(),
            p_off: vms.iter().map(|vm| vm.p_off).collect(),
            demand_off: vms.iter().map(|vm| vm.demand(false)).collect(),
            demand_on: vms.iter().map(|vm| vm.demand(true)).collect(),
            on: vec![false; n],
            mode,
        }
    }

    /// Advances every chain one step and rebuilds `observed` (zeroed
    /// first) with the sum of hosted demands per PM. Displaced VMs
    /// (`host[i] == None`) still evolve — the draw sequence must not
    /// depend on fault or migration decisions. Copy-overhead dual
    /// entries stay with the caller.
    pub(crate) fn step(&mut self, step: u64, host: &[Option<usize>], observed: &mut [f64]) {
        let Self {
            p_on,
            p_off,
            demand_off,
            demand_on,
            on,
            mode,
        } = self;
        match mode {
            Mode::Shared { rng } => {
                // Pre-SoA engine order, verbatim: one full evolution
                // pass (n sequential draws), then one full accumulation
                // pass in ascending VM order.
                for i in 0..on.len() {
                    let u = rng.gen::<f64>();
                    on[i] = if on[i] { u >= p_off[i] } else { u < p_on[i] };
                }
                observed.iter_mut().for_each(|o| *o = 0.0);
                for (i, j) in host.iter().enumerate() {
                    if let Some(j) = *j {
                        observed[j] += if on[i] { demand_on[i] } else { demand_off[i] };
                    }
                }
            }
            Mode::PerVm {
                keys,
                threads,
                partials,
            } => {
                let mut units: Vec<(usize, &mut [bool], &mut Partial)> = on
                    .chunks_mut(PER_VM_CHUNK)
                    .zip(partials.iter_mut())
                    .enumerate()
                    .map(|(c, (chunk, partial))| (c, chunk, partial))
                    .collect();
                let evolve_chunk = |c: usize, chunk: &mut [bool], partial: &mut Partial| {
                    let base = c * PER_VM_CHUNK;
                    for (off, on_i) in chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let u = keyed_u01(keys[i], step);
                        *on_i = if *on_i { u >= p_off[i] } else { u < p_on[i] };
                        if let Some(j) = host[i] {
                            if partial.dense[j] == 0.0 {
                                partial.touched.push(j);
                            }
                            partial.dense[j] += if *on_i { demand_on[i] } else { demand_off[i] };
                        }
                    }
                };
                if *threads <= 1 || units.len() <= 1 {
                    for (c, chunk, partial) in &mut units {
                        evolve_chunk(*c, chunk, partial);
                    }
                } else {
                    let mut buckets: Vec<Vec<(usize, &mut [bool], &mut Partial)>> =
                        (0..*threads).map(|_| Vec::new()).collect();
                    for (slot, unit) in units.into_iter().enumerate() {
                        buckets[slot % *threads].push(unit);
                    }
                    thread::scope(|scope| {
                        for bucket in &mut buckets {
                            scope.spawn(|| {
                                for (c, chunk, partial) in bucket.iter_mut() {
                                    evolve_chunk(*c, chunk, partial);
                                }
                            });
                        }
                    });
                }
                // Deterministic reduction: ascending chunk order, each
                // PM's partial added exactly once (a `touched` entry can
                // repeat only while the partial was still 0.0, and the
                // first fold resets it, so duplicates add 0.0).
                observed.iter_mut().for_each(|o| *o = 0.0);
                for partial in partials.iter_mut() {
                    for &j in &partial.touched {
                        observed[j] += partial.dense[j];
                        partial.dense[j] = 0.0;
                    }
                    partial.touched.clear();
                }
            }
            Mode::ClassAggregated {
                classes,
                offsets,
                cells,
                caches,
                cached,
                threads,
                ..
            } => {
                // Two binomial draws per occupied (location, class)
                // cell: the ON→OFF departures and OFF→ON arrivals of the
                // cell's superposed chains. Draw coordinates are pure
                // functions of (seed, location, class, step) — counters
                // 2·step and 2·step + 1 of the cell's keyed stream — so
                // any thread can evolve any location, and each PM's
                // demand is produced entirely by its own cells in
                // canonical class order: thread-count invariance needs
                // no reduction tree here. Locations are cut into fixed
                // CLASS_PM_CHUNK chunks (a function of m only); the
                // limbo pool is the last location and rides in the last
                // chunk — displaced VMs keep evolving (the draw sequence
                // must not depend on fault decisions) but write no
                // demand. Each chunk owns one sampler cache, so cache
                // state and counters are also thread-count invariant.
                let m = observed.len();
                let total_locs = offsets.len() - 1;
                let classes: &[ClassInfo] = classes;
                let offsets: &[u32] = offsets;
                let cached = *cached;
                let evolve = |c: usize,
                              chunk: &mut [Cell],
                              obs: &mut [f64],
                              cache: &mut TableCache| {
                    let lo = c * CLASS_PM_CHUNK;
                    let hi = (lo + CLASS_PM_CHUNK).min(total_locs);
                    let base = offsets[lo] as usize;
                    for loc in lo..hi {
                        let s = offsets[loc] as usize - base;
                        let e = offsets[loc + 1] as usize - base;
                        let mut demand = 0.0;
                        for cell in &mut chunk[s..e] {
                            let info = &classes[cell.class as usize];
                            let off_count = cell.count - cell.n_on;
                            let (out, inn) = if cached {
                                (
                                    cache.draw(
                                        info.slot_off as usize,
                                        cell.key,
                                        2 * step,
                                        cell.n_on,
                                    ),
                                    cache.draw(
                                        info.slot_on as usize,
                                        cell.key,
                                        2 * step + 1,
                                        off_count,
                                    ),
                                )
                            } else {
                                (
                                    keyed_binomial(cell.key, 2 * step, cell.n_on, info.p_off),
                                    keyed_binomial(cell.key, 2 * step + 1, off_count, info.p_on),
                                )
                            };
                            cell.n_on = cell.n_on - out + inn;
                            demand += f64::from(cell.n_on) * info.demand_on
                                + f64::from(cell.count - cell.n_on) * info.demand_off;
                        }
                        if loc < m {
                            obs[loc - lo] = demand;
                        }
                    }
                };
                // Cut the flat arrays at chunk boundaries; the per-chunk
                // observed slice stops at m (the limbo location has no
                // demand entry).
                let mut units: Vec<(usize, &mut [Cell], &mut [f64], &mut TableCache)> =
                    Vec::with_capacity(caches.len());
                let mut cell_rest: &mut [Cell] = cells;
                let mut obs_rest: &mut [f64] = observed;
                let mut consumed = 0usize;
                let mut obs_consumed = 0usize;
                for (c, cache) in caches.iter_mut().enumerate() {
                    let hi = ((c + 1) * CLASS_PM_CHUNK).min(total_locs);
                    let (chunk, rest) = cell_rest.split_at_mut(offsets[hi] as usize - consumed);
                    consumed = offsets[hi] as usize;
                    cell_rest = rest;
                    let (obs, rest) = obs_rest.split_at_mut(hi.min(m) - obs_consumed);
                    obs_consumed = hi.min(m);
                    obs_rest = rest;
                    units.push((c, chunk, obs, cache));
                }
                if *threads <= 1 || units.len() <= 1 {
                    for (c, chunk, obs, cache) in &mut units {
                        evolve(*c, chunk, obs, cache);
                    }
                } else {
                    #[allow(clippy::type_complexity)]
                    let mut buckets: Vec<
                        Vec<(usize, &mut [Cell], &mut [f64], &mut TableCache)>,
                    > = (0..*threads).map(|_| Vec::new()).collect();
                    for (slot, unit) in units.into_iter().enumerate() {
                        buckets[slot % *threads].push(unit);
                    }
                    thread::scope(|scope| {
                        for bucket in &mut buckets {
                            scope.spawn(|| {
                                for (c, chunk, obs, cache) in bucket.iter_mut() {
                                    evolve(*c, chunk, obs, cache);
                                }
                            });
                        }
                    });
                }
            }
        }
    }

    /// Builds the class-aggregated counters from the initial placement
    /// (every VM OFF, matching the all-`false` `on` vector). Must be
    /// called once before the first [`WorkloadCore::step`] under
    /// [`RngLayout::ClassAggregated`]; a no-op for the other layouts.
    pub(crate) fn class_init(&mut self, host: &[Option<usize>]) {
        let Mode::ClassAggregated {
            classes,
            class_of,
            offsets,
            cells,
            seed,
            ..
        } = &mut self.mode
        else {
            return;
        };
        let locations = offsets.len() - 1;
        let limbo = locations - 1;
        // Bucket per location first (cheap sorted inserts into short
        // vectors), then flatten into the CSR arrays once.
        let mut buckets: Vec<Vec<Cell>> = (0..locations).map(|_| Vec::new()).collect();
        for (i, h) in host.iter().enumerate() {
            let loc = h.unwrap_or(limbo);
            let c = class_of[i];
            let cs = &mut buckets[loc];
            match cs.binary_search_by_key(&c, |cell| cell.class) {
                Ok(at) => cs[at].count += 1,
                Err(at) => cs.insert(
                    at,
                    Cell {
                        class: c,
                        count: 1,
                        n_on: 0,
                        key: class_cell_key(*seed, loc as u64, classes[c as usize].hash),
                    },
                ),
            }
        }
        cells.clear();
        offsets[0] = 0;
        for (loc, bucket) in buckets.into_iter().enumerate() {
            cells.extend(bucket);
            offsets[loc + 1] = cells.len() as u32;
        }
    }

    /// The CSR cell range of one location.
    #[inline]
    fn csr_range(offsets: &[u32], loc: usize) -> std::ops::Range<usize> {
        offsets[loc] as usize..offsets[loc + 1] as usize
    }

    /// Refreshes the `on` flags of PM `j`'s hosted VMs from its cell
    /// counters, using the canonical disaggregation rule: within each
    /// class at one location, the `n_on` members with the lowest VM
    /// indices are ON. The engine calls this before any decision that
    /// reads per-VM state (victim selection, demand queries); a no-op
    /// for the other layouts, whose `on` vector is always current.
    pub(crate) fn class_sync_pm(&mut self, j: usize, members: &[usize]) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            class_of,
            offsets,
            cells,
            ..
        } = mode
        else {
            return;
        };
        let range = Self::csr_range(offsets, j);
        Self::class_assign_flags(on, class_of, &cells[range], members.iter().copied());
    }

    /// Refreshes the `on` flags of every displaced VM (`host[i] == None`)
    /// from the limbo-pool counters — the displaced-side counterpart of
    /// [`WorkloadCore::class_sync_pm`], called before evacuation passes.
    pub(crate) fn class_sync_displaced(&mut self, host: &[Option<usize>]) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            class_of,
            offsets,
            cells,
            ..
        } = mode
        else {
            return;
        };
        let limbo = offsets.len() - 2;
        let displaced = host
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_none())
            .map(|(i, _)| i);
        let range = Self::csr_range(offsets, limbo);
        Self::class_assign_flags(on, class_of, &cells[range], displaced);
    }

    /// Shared flag-assignment pass of the two sync hooks: group `members`
    /// by class, sort each group ascending, flag the first `n_on` of the
    /// matching cell ON.
    fn class_assign_flags(
        on: &mut [bool],
        class_of: &[u32],
        cells: &[Cell],
        members: impl Iterator<Item = usize>,
    ) {
        if cells.is_empty() {
            return;
        }
        // (class, vm index) sorted: classes ascending, indices ascending
        // within a class — one pass pairs each cell with its contiguous
        // member group (cells are sorted by class too).
        let mut by_class: Vec<(u32, usize)> = members.map(|i| (class_of[i], i)).collect();
        by_class.sort_unstable();
        let mut pos = 0usize;
        for cell in cells {
            debug_assert!(pos >= by_class.len() || by_class[pos].0 >= cell.class);
            let start = pos;
            while pos < by_class.len() && by_class[pos].0 == cell.class {
                pos += 1;
            }
            let group = &by_class[start..pos];
            debug_assert_eq!(
                group.len(),
                cell.count as usize,
                "cell membership out of sync"
            );
            for (g, &(_, i)) in group.iter().enumerate() {
                on[i] = g < cell.n_on as usize;
            }
        }
    }

    /// Moves VM `i` between locations in the class-aggregated counters
    /// (`None` = the displaced limbo pool), carrying its current `on`
    /// flag. The caller must have synced `i`'s source location since the
    /// last evolution step so the flag matches the source counters; a
    /// no-op for the other layouts.
    pub(crate) fn class_move(&mut self, i: usize, from: Option<usize>, to: Option<usize>) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            classes,
            class_of,
            offsets,
            cells,
            seed,
            ..
        } = mode
        else {
            return;
        };
        let limbo = offsets.len() - 2;
        let c = class_of[i];
        let was_on = on[i];
        let src = from.unwrap_or(limbo);
        let range = Self::csr_range(offsets, src);
        let at = cells[range.clone()]
            .binary_search_by_key(&c, |cell| cell.class)
            .expect("moving VM has a source cell");
        let idx = range.start + at;
        cells[idx].count -= 1;
        if was_on {
            cells[idx].n_on -= 1;
        }
        if cells[idx].count == 0 {
            cells.remove(idx);
            for o in &mut offsets[src + 1..] {
                *o -= 1;
            }
        }
        let dst = to.unwrap_or(limbo);
        let range = Self::csr_range(offsets, dst);
        match cells[range.clone()].binary_search_by_key(&c, |cell| cell.class) {
            Ok(at) => {
                let idx = range.start + at;
                cells[idx].count += 1;
                cells[idx].n_on += u32::from(was_on);
            }
            Err(at) => {
                cells.insert(
                    range.start + at,
                    Cell {
                        class: c,
                        count: 1,
                        n_on: u32::from(was_on),
                        key: class_cell_key(*seed, dst as u64, classes[c as usize].hash),
                    },
                );
                for o in &mut offsets[dst + 1..] {
                    *o += 1;
                }
            }
        }
    }

    /// Crash handling for PM `j`: fixes each member's flag from the
    /// current counters (the flags displaced VMs carry into evacuation),
    /// then merges the PM's cells wholesale into the limbo pool. A no-op
    /// for the other layouts.
    pub(crate) fn class_crash(&mut self, j: usize, members: &[usize]) {
        self.class_sync_pm(j, members);
        let Mode::ClassAggregated {
            classes,
            offsets,
            cells,
            seed,
            ..
        } = &mut self.mode
        else {
            return;
        };
        let limbo = offsets.len() - 2;
        let range = Self::csr_range(offsets, j);
        let moved: Vec<Cell> = cells.drain(range.clone()).collect();
        let removed = moved.len() as u32;
        for o in &mut offsets[j + 1..] {
            *o -= removed;
        }
        for cell in moved {
            let pool = Self::csr_range(offsets, limbo);
            match cells[pool.clone()].binary_search_by_key(&cell.class, |c| c.class) {
                Ok(at) => {
                    let idx = pool.start + at;
                    cells[idx].count += cell.count;
                    cells[idx].n_on += cell.n_on;
                }
                Err(at) => {
                    // The limbo pool is the last location, so only the
                    // final offset shifts.
                    cells.insert(
                        pool.start + at,
                        Cell {
                            class: cell.class,
                            count: cell.count,
                            n_on: cell.n_on,
                            key: class_cell_key(
                                *seed,
                                limbo as u64,
                                classes[cell.class as usize].hash,
                            ),
                        },
                    );
                    offsets[limbo + 1] += 1;
                }
            }
        }
    }

    /// Selects the class-aggregated binomial sampler: the memoized
    /// tables (`true`, the default) or the plain pmf-recurrence walk.
    /// Both produce bit-identical draws — this is purely a throughput
    /// knob, kept so the two kernels stay benchable against each other.
    /// A no-op for the other layouts.
    pub(crate) fn set_class_sampler(&mut self, use_tables: bool) {
        if let Mode::ClassAggregated { cached, .. } = &mut self.mode {
            *cached = use_tables;
        }
    }

    /// Summed sampler-cache counters across the per-chunk caches
    /// (`None` for the other layouts). The chunk partition is a
    /// function of `m` only, so the sums are thread-count invariant.
    pub(crate) fn class_cache_stats(&self) -> Option<CacheStats> {
        let Mode::ClassAggregated { caches, .. } = &self.mode else {
            return None;
        };
        Some(caches.iter().fold(CacheStats::default(), |acc, c| {
            let s = c.stats();
            CacheStats {
                hits: acc.hits + s.hits,
                misses: acc.misses + s.misses,
                evictions: acc.evictions + s.evictions,
            }
        }))
    }

    /// Occupied `(location, class)` cell count under the
    /// class-aggregated layout (`None` otherwise): the unit the hot
    /// loop's cost actually scales with.
    pub(crate) fn class_occupied_cells(&self) -> Option<usize> {
        match &self.mode {
            Mode::ClassAggregated { cells, .. } => Some(cells.len()),
            _ => None,
        }
    }

    /// Captures the mode-specific evolving state for a checkpoint.
    pub(crate) fn snapshot_mode(&self) -> CoreSnapshot {
        match &self.mode {
            Mode::Shared { rng } => CoreSnapshot::Shared(rng.state()),
            Mode::PerVm { .. } => CoreSnapshot::PerVm,
            Mode::ClassAggregated { offsets, cells, .. } => CoreSnapshot::ClassAggregated(
                offsets
                    .windows(2)
                    .map(|w| {
                        cells[w[0] as usize..w[1] as usize]
                            .iter()
                            .map(|c| (c.class, c.count, c.n_on))
                            .collect()
                    })
                    .collect(),
            ),
        }
    }

    /// Restores the mode-specific state captured by
    /// [`WorkloadCore::snapshot_mode`] into a freshly built core of the
    /// same fleet, seed, and layout. Rejects layout mismatches and any
    /// structurally impossible counter state (unsorted or out-of-range
    /// cells, `n_on > count`, membership not summing to the fleet) so a
    /// corrupted snapshot can never become a silently wrong run.
    pub(crate) fn restore_mode(&mut self, snap: CoreSnapshot) -> Result<(), String> {
        match (&mut self.mode, snap) {
            (Mode::Shared { rng }, CoreSnapshot::Shared(words)) => {
                *rng = StdRng::from_state(words)
                    .ok_or_else(|| "shared rng state is the all-zero fixed point".to_string())?;
                Ok(())
            }
            (Mode::PerVm { .. }, CoreSnapshot::PerVm) => Ok(()),
            (
                Mode::ClassAggregated {
                    classes,
                    offsets,
                    cells,
                    seed,
                    ..
                },
                CoreSnapshot::ClassAggregated(locs),
            ) => {
                if locs.len() != offsets.len() - 1 {
                    return Err(format!(
                        "class snapshot has {} locations, core expects {}",
                        locs.len(),
                        offsets.len() - 1
                    ));
                }
                let mut total: u64 = 0;
                for (loc, cs) in locs.iter().enumerate() {
                    let mut prev: Option<u32> = None;
                    for &(class, count, n_on) in cs {
                        if class as usize >= classes.len() {
                            return Err(format!("class index {class} out of range"));
                        }
                        if count == 0 || n_on > count {
                            return Err(format!(
                                "cell ({loc}, {class}) has count {count}, n_on {n_on}"
                            ));
                        }
                        if prev.is_some_and(|p| p >= class) {
                            return Err(format!("cells of location {loc} not sorted by class"));
                        }
                        prev = Some(class);
                        total += u64::from(count);
                    }
                }
                if total != self.on.len() as u64 {
                    return Err(format!(
                        "cell membership sums to {total}, fleet has {} VMs",
                        self.on.len()
                    ));
                }
                cells.clear();
                offsets[0] = 0;
                for (loc, src) in locs.into_iter().enumerate() {
                    cells.extend(src.into_iter().map(|(class, count, n_on)| Cell {
                        class,
                        count,
                        n_on,
                        key: class_cell_key(*seed, loc as u64, classes[class as usize].hash),
                    }));
                    offsets[loc + 1] = cells.len() as u32;
                }
                Ok(())
            }
            _ => Err("snapshot layout does not match the configured rng layout".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| VmSpec::new(i, 0.02 + (i % 7) as f64 * 0.01, 0.08, 8.0, 12.0))
            .collect()
    }

    fn run_core(core: &mut WorkloadCore, host: &[Option<usize>], m: usize, steps: u64) -> Vec<f64> {
        let mut observed = vec![0.0; m];
        let mut trace = Vec::new();
        for step in 0..steps {
            core.step(step, host, &mut observed);
            trace.extend_from_slice(&observed);
        }
        trace
    }

    #[test]
    fn shared_layout_matches_legacy_loop_bit_for_bit() {
        let vms = fleet(133);
        let m = 9;
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();

        // Legacy loop: per-VM chain stepping off one shared StdRng.
        let mut rng = StdRng::seed_from_u64(99);
        let mut on = vec![false; vms.len()];
        let mut legacy = Vec::new();
        for _ in 0..50 {
            for (i, vm) in vms.iter().enumerate() {
                let state = if on[i] {
                    bursty_markov::VmState::On
                } else {
                    bursty_markov::VmState::Off
                };
                on[i] = vm.chain().step(state, &mut rng).is_on();
            }
            let mut observed = vec![0.0; m];
            for (i, j) in host.iter().enumerate() {
                if let Some(j) = *j {
                    observed[j] += vms[i].demand(on[i]);
                }
            }
            legacy.extend_from_slice(&observed);
        }

        let mut core = WorkloadCore::new(&vms, m, 99, RngLayout::Shared, 1);
        let soa = run_core(&mut core, &host, m, 50);
        assert_eq!(legacy.len(), soa.len());
        for (a, b) in legacy.iter().zip(&soa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pervm_layout_is_thread_count_invariant() {
        // Fleet large enough for several chunks; some VMs unhosted.
        let vms = fleet(2 * PER_VM_CHUNK + 77);
        let m = 13;
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 11 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 3, 8] {
            let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::PerVm, threads);
            let trace = run_core(&mut core, &host, m, 25);
            let bits: Vec<u64> = trace.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn pervm_streams_follow_the_stationary_law() {
        // Each chain's long-run ON fraction must approach
        // p_on / (p_on + p_off) under the counter-based streams too.
        let vms: Vec<VmSpec> = (0..400)
            .map(|i| VmSpec::new(i, 0.3, 0.2, 1.0, 1.0))
            .collect();
        let host: Vec<Option<usize>> = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 1, 11, RngLayout::PerVm, 1);
        let mut observed = vec![0.0; 1];
        let steps = 4000u64;
        let mut on_steps = 0usize;
        for step in 0..steps {
            core.step(step, &host, &mut observed);
            on_steps += core.on.iter().filter(|&&b| b).count();
        }
        let frac = on_steps as f64 / (steps as usize * vms.len()) as f64;
        assert!((frac - 0.6).abs() < 0.01, "ON fraction {frac}, want 0.6");
    }

    /// A class-heavy fleet: `n` VMs drawn from 3 distinct classes.
    fn class_fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| match i % 3 {
                0 => VmSpec::new(i, 0.02, 0.08, 8.0, 12.0),
                1 => VmSpec::new(i, 0.05, 0.05, 4.0, 20.0),
                _ => VmSpec::new(i, 0.10, 0.02, 2.0, 6.0),
            })
            .collect()
    }

    #[test]
    fn class_layout_is_thread_count_invariant() {
        // Enough PMs for several CLASS_PM_CHUNK chunks so the parallel
        // path actually splits, plus some displaced VMs in limbo.
        let m = 2 * CLASS_PM_CHUNK + 91;
        let vms = class_fleet(3 * m);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 17 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let mut core = WorkloadCore::new(&vms, m, 7, RngLayout::ClassAggregated, threads);
            core.class_init(&host);
            let trace = run_core(&mut core, &host, m, 12);
            let bits: Vec<u64> = trace.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn class_layout_is_invariant_under_fleet_enumeration_order() {
        // Reversing the fleet (and its placement with it) permutes the
        // order classes are first encountered, but every (PM, class)
        // cell keeps the same composition — so the per-PM demand trace
        // must be bit-identical: the class table is sorted by content
        // and cell streams are keyed by content hashes, never by
        // first-appearance indices.
        let m = 11;
        let vms = class_fleet(200);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 13 != 0).then_some(i % m))
            .collect();
        let mut fwd = WorkloadCore::new(&vms, m, 3, RngLayout::ClassAggregated, 1);
        fwd.class_init(&host);
        let trace_fwd = run_core(&mut fwd, &host, m, 30);

        let vms_rev: Vec<VmSpec> = vms.iter().rev().cloned().collect();
        let host_rev: Vec<Option<usize>> = host.iter().rev().copied().collect();
        let mut rev = WorkloadCore::new(&vms_rev, m, 3, RngLayout::ClassAggregated, 1);
        rev.class_init(&host_rev);
        let trace_rev = run_core(&mut rev, &host_rev, m, 30);

        for (a, b) in trace_fwd.iter().zip(&trace_rev) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn class_counters_follow_the_stationary_law() {
        // One PM hosting k same-class chains: the ON count must settle
        // on Binomial(k, p_on/(p_on+p_off)) — mean and variance both.
        // r_b = 1, r_e = 1 makes the observed demand k + ON count.
        let k = 50usize;
        let vms: Vec<VmSpec> = (0..k).map(|i| VmSpec::new(i, 0.3, 0.2, 1.0, 1.0)).collect();
        let host: Vec<Option<usize>> = vec![Some(0); k];
        let mut core = WorkloadCore::new(&vms, 1, 11, RngLayout::ClassAggregated, 1);
        core.class_init(&host);
        let mut observed = vec![0.0; 1];
        let steps = 6000u64;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for step in 0..steps {
            core.step(step, &host, &mut observed);
            let n_on = observed[0] - k as f64;
            sum += n_on;
            sum_sq += n_on * n_on;
        }
        let mean = sum / steps as f64;
        let var = sum_sq / steps as f64 - mean * mean;
        let pi = 0.3 / 0.5;
        let (want_mean, want_var) = (k as f64 * pi, k as f64 * pi * (1.0 - pi));
        assert!((mean - want_mean).abs() < 0.03 * want_mean, "mean {mean}");
        assert!((var - want_var).abs() < 0.25 * want_var, "var {var}");
    }

    #[test]
    fn cached_and_walk_samplers_are_bit_identical() {
        // The memoized tables must reproduce the walk exactly — same
        // demand trace, same counters, same flags — including across
        // structural churn (moves and a crash merge) that retargets
        // cells at fresh n values.
        let m = 7;
        let vms = class_fleet(300);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 19 != 0).then_some(i % m))
            .collect();
        let run = |cached: bool| {
            let mut core = WorkloadCore::new(&vms, m, 13, RngLayout::ClassAggregated, 1);
            core.set_class_sampler(cached);
            core.class_init(&host);
            let mut host = host.clone();
            let mut observed = vec![0.0; m];
            let mut trace = Vec::new();
            for step in 0..60u64 {
                core.step(step, &host, &mut observed);
                trace.extend(observed.iter().map(|v| v.to_bits()));
                if step == 20 {
                    // Move a few hosted VMs to their neighbouring PM.
                    for &i in &[1usize, 7, 14] {
                        let members: Vec<usize> =
                            (0..vms.len()).filter(|&v| host[v] == host[i]).collect();
                        core.class_sync_pm(host[i].unwrap(), &members);
                        let to = host[i].map(|j| (j + 1) % m);
                        core.class_move(i, host[i], to);
                        host[i] = to;
                    }
                }
                if step == 40 {
                    // Crash PM 3: everyone there merges into limbo.
                    let members: Vec<usize> =
                        (0..vms.len()).filter(|&v| host[v] == Some(3)).collect();
                    core.class_crash(3, &members);
                    for &i in &members {
                        host[i] = None;
                    }
                }
            }
            core.class_sync_displaced(&host);
            (trace, core.on.clone())
        };
        let (trace_walk, on_walk) = run(false);
        let (trace_cached, on_cached) = run(true);
        assert_eq!(trace_walk, trace_cached, "demand traces diverged");
        assert_eq!(on_walk, on_cached, "synced flags diverged");
    }

    #[test]
    fn cache_counters_are_thread_count_invariant() {
        // One cache per location chunk, chunks a function of m only —
        // so the summed hit/miss/evict counters must not depend on the
        // worker count.
        let m = 2 * CLASS_PM_CHUNK + 33;
        let vms = class_fleet(3 * m);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 23 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 3, 8] {
            let mut core = WorkloadCore::new(&vms, m, 7, RngLayout::ClassAggregated, threads);
            core.class_init(&host);
            let mut observed = vec![0.0; m];
            for step in 0..10u64 {
                core.step(step, &host, &mut observed);
            }
            let stats = core.class_cache_stats().unwrap();
            assert!(stats.hits > 0, "steady state must hit the cache");
            assert!(stats.misses > 0, "first draws must build tables");
            match &reference {
                None => reference = Some(stats),
                Some(r) => assert_eq!(r, &stats, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn walk_sampler_records_no_cache_traffic() {
        // m coprime to the 3-class cycle, so every PM hosts all 3
        // classes: 3·m occupied cells.
        let m = 4;
        let vms = class_fleet(60);
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();
        let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::ClassAggregated, 1);
        core.set_class_sampler(false);
        core.class_init(&host);
        let mut observed = vec![0.0; m];
        for step in 0..10u64 {
            core.step(step, &host, &mut observed);
        }
        assert_eq!(
            core.class_cache_stats(),
            Some(crate::rng::binomial_table::CacheStats::default())
        );
        assert_eq!(core.class_occupied_cells(), Some(3 * m));
    }

    #[test]
    fn class_sync_and_move_keep_flags_consistent_with_counters() {
        // Sync must flag exactly n_on members ON per cell, and a move
        // must carry the flag so counters never underflow.
        let m = 2;
        let vms = class_fleet(30);
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();
        let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::ClassAggregated, 1);
        core.class_init(&host);
        let mut observed = vec![0.0; m];
        for step in 0..20 {
            core.step(step, &host, &mut observed);
        }
        let members: Vec<usize> = (0..vms.len()).filter(|i| i % m == 0).collect();
        core.class_sync_pm(0, &members);
        // Flag-sum == counter-sum: the demand implied by the synced
        // per-VM flags must reproduce the counter-computed observed load
        // (same addends, possibly different grouping — so approximate).
        let demand: f64 = members.iter().map(|&i| vms[i].demand(core.on[i])).sum();
        assert!(
            (demand - observed[0]).abs() < 1e-9 * observed[0].max(1.0),
            "flags imply {demand}, counters observed {}",
            observed[0]
        );
        // Move every PM-0 member to PM 1 and back; counters must absorb
        // the round trip without panicking, and the flags (which the
        // moves carry) must survive unchanged.
        let on_before: Vec<bool> = members.iter().map(|&i| core.on[i]).collect();
        for &i in &members {
            core.class_move(i, Some(0), Some(1));
        }
        for &i in &members {
            core.class_move(i, Some(1), Some(0));
        }
        core.class_sync_pm(0, &members);
        let on_after: Vec<bool> = members.iter().map(|&i| core.on[i]).collect();
        assert_eq!(on_before, on_after);
    }

    #[test]
    fn snapshot_restore_resumes_every_layout_bit_for_bit() {
        let m = 7;
        let vms = class_fleet(150);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 13 != 0).then_some(i % m))
            .collect();
        for layout in [
            RngLayout::Shared,
            RngLayout::PerVm,
            RngLayout::ClassAggregated,
        ] {
            let mut a = WorkloadCore::new(&vms, m, 42, layout, 1);
            a.class_init(&host);
            let mut observed = vec![0.0; m];
            for step in 0..40 {
                a.step(step, &host, &mut observed);
            }
            // Rebuild a fresh core from specs, then restore the evolving
            // state — exactly what checkpoint load does.
            let mut b = WorkloadCore::new(&vms, m, 42, layout, 1);
            b.class_init(&host);
            b.restore_mode(a.snapshot_mode()).unwrap();
            b.on.copy_from_slice(&a.on);
            let (mut oa, mut ob) = (vec![0.0; m], vec![0.0; m]);
            for step in 40..70 {
                a.step(step, &host, &mut oa);
                b.step(step, &host, &mut ob);
                for (x, y) in oa.iter().zip(&ob) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "layout {layout:?} diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_and_corrupt_snapshots() {
        let vms = class_fleet(30);
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % 3)).collect();
        let mut shared = WorkloadCore::new(&vms, 3, 1, RngLayout::Shared, 1);
        assert!(shared.restore_mode(CoreSnapshot::PerVm).is_err());
        assert!(shared
            .restore_mode(CoreSnapshot::Shared([0, 0, 0, 0]))
            .is_err());
        let mut class = WorkloadCore::new(&vms, 3, 1, RngLayout::ClassAggregated, 1);
        class.class_init(&host);
        let CoreSnapshot::ClassAggregated(good) = class.snapshot_mode() else {
            panic!("wrong snapshot variant");
        };
        // n_on above count.
        let mut bad = good.clone();
        bad[0][0].2 = bad[0][0].1 + 1;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Out-of-range class index.
        let mut bad = good.clone();
        bad[0][0].0 = 999;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Membership no longer sums to the fleet.
        let mut bad = good.clone();
        bad[0][0].1 += 1;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Wrong location count.
        let mut bad = good.clone();
        bad.pop();
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // The pristine snapshot still restores.
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(good))
            .is_ok());
    }

    #[test]
    fn displaced_vms_keep_evolving_without_contributing_demand() {
        let vms = fleet(40);
        let host = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 3, 1, RngLayout::PerVm, 2);
        let mut observed = vec![1.0; 3];
        core.step(0, &host, &mut observed);
        assert!(observed.iter().all(|&o| o == 0.0));
        assert!(core.on.iter().any(|&b| b), "chains must still evolve");
    }
}
