//! Structure-of-arrays fast path for the engine's per-step hot loop.
//!
//! [`Simulator::run`] spends almost all of its time in two per-VM loops:
//! evolving every ON-OFF chain and re-summing every hosted demand into
//! the per-PM `observed` vector. [`WorkloadCore`] flattens the VM specs
//! into four `f64` vectors once per run (`p_on`/`p_off`/`demand_off`/
//! `demand_on`) and fuses both loops into one branch-light pass.
//!
//! Three layouts, one determinism contract (DESIGN.md §8):
//!
//! * [`RngLayout::Shared`] — one sequential `StdRng`, drawn in VM order,
//!   demands summed in ascending VM order. This is *exactly* the draw
//!   and summation order of the pre-SoA engine, so outcomes stay
//!   bit-identical (frozen by `sim/tests/golden.rs`).
//! * [`RngLayout::PerVm`] — each VM draws from its own counter-based
//!   stream ([`crate::rng`]), keyed by the VM's spec id. VMs are split
//!   into fixed chunks of [`PER_VM_CHUNK`] (a function of the fleet
//!   only, never of the thread count); each chunk accumulates demands
//!   into its own partial buffer in ascending VM order, and the partials
//!   are folded into `observed` in ascending chunk order. Both the draw
//!   values and the floating-point grouping are therefore invariant in
//!   the thread count: 1, 2, or 64 workers produce `f64::to_bits`-equal
//!   results. The serial path runs the very same chunked code, so
//!   `threads: 1` equals `threads: N` by construction, not by accident.
//! * [`RngLayout::ClassAggregated`] — same-class VMs on a PM share one
//!   ON-counter cell; a step is two counter-based binomial draws per
//!   occupied cell (`ON→OFF ~ B(n_on, p_off)`, `OFF→ON ~ B(n_off,
//!   p_on)`) keyed on `(seed, pm, class, step)`, and per-PM demand is
//!   `counter × class demand`. Cost scales with occupied cells, not
//!   fleet size. Thread-count invariant (each PM's demand is computed
//!   wholly by one worker from its own cells) and invariant under class
//!   enumeration order (the class table is sorted by content, cell keys
//!   hash class *contents*). Individual VMs no longer own sample paths:
//!   the engine re-materializes per-VM ON flags lazily at decision
//!   points via the `class_sync_*` hooks (canonical rule: lowest VM
//!   indices of a class at a location are ON first), and agreement with
//!   `PerVm` is distributional — per-PM ON-count marginals, CVR and
//!   energy within certified Wilson intervals — never bit-exact.
//!
//! Workers are plain `std::thread::scope` spawns (the workspace vendors
//! no thread-pool crate), so each step pays a spawn/join round trip —
//! profitable for large fleets, pure overhead for small ones. The
//! engine-throughput bench (`BENCH_engine.json`) records the crossover.
//!
//! [`Simulator::run`]: crate::engine::Simulator::run
//! [`RngLayout::Shared`]: crate::config::RngLayout::Shared
//! [`RngLayout::PerVm`]: crate::config::RngLayout::PerVm

use crate::config::RngLayout;
use crate::rng::{class_cell_key, class_hash, keyed_binomial, keyed_u01, stream_key};
use bursty_workload::classes::VmClass;
use bursty_workload::VmSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::thread;

/// Fixed chunk width of the per-VM layout. Part of the determinism
/// contract: chunk boundaries depend only on the fleet size, so the
/// floating-point reduction tree is identical at every thread count.
pub(crate) const PER_VM_CHUNK: usize = 512;

/// Fixed PM-chunk width of the class-aggregated layout. Unlike the
/// per-VM fold, each PM's demand is produced entirely inside one chunk
/// (cells never span PMs), so any chunking is thread-count invariant;
/// the fixed width just keeps scheduling deterministic and cache-sized.
pub(crate) const CLASS_PM_CHUNK: usize = 512;

/// Per-chunk demand accumulator: a dense per-PM scratch vector plus the
/// PM indices this chunk touched, in first-touch order. Folding by
/// touch list keeps the reduction O(VMs) instead of O(chunks · PMs).
struct Partial {
    dense: Vec<f64>,
    touched: Vec<usize>,
}

/// Per-class chain parameters of the class-aggregated layout, one entry
/// per *distinct* VM class in canonical order (sorted by the exact
/// [`VmClass::key`] bit patterns — a function of the class *contents*,
/// so indices are invariant under fleet enumeration order).
struct ClassInfo {
    p_on: f64,
    p_off: f64,
    demand_off: f64,
    demand_on: f64,
    /// Content hash of the class key, the class axis of every cell's
    /// stream coordinates.
    hash: u64,
}

/// One `(location, class)` ON-counter of the class-aggregated layout:
/// `count` resident VMs of `class`, `n_on` of them currently ON, and the
/// pre-mixed stream key of the cell's binomial draws. A location is a PM
/// or the displaced-VM limbo pool; each location's cells stay sorted by
/// class index so evolution and demand accumulation order are canonical.
struct Cell {
    class: u32,
    count: u32,
    n_on: u32,
    key: u64,
}

enum Mode {
    Shared {
        rng: StdRng,
    },
    PerVm {
        /// Pre-mixed stream key per VM (`stream_key(seed, spec id)`).
        keys: Vec<u64>,
        /// Resolved worker count (≥ 1). Purely a throughput knob.
        threads: usize,
        partials: Vec<Partial>,
    },
    ClassAggregated {
        /// Canonical class table (sorted by class key bit patterns).
        classes: Vec<ClassInfo>,
        /// Canonical class index per VM.
        class_of: Vec<u32>,
        /// Cells per location: `cells[0..m]` are the PMs, `cells[m]` is
        /// the limbo pool of displaced VMs (which evolve but contribute
        /// no demand). Populated by [`WorkloadCore::class_init`].
        cells: Vec<Vec<Cell>>,
        /// Resolved worker count (≥ 1). Purely a throughput knob.
        threads: usize,
        seed: u64,
    },
}

/// Mode-specific evolving state captured for a checkpoint. The
/// flattened spec vectors, stream keys, and class table are pure
/// functions of the fleet and seed — [`WorkloadCore::new`] rebuilds
/// them on restore — so only the state that advances step-to-step
/// travels. The `on` flags live outside [`Mode`] and are snapshotted
/// by the caller.
pub(crate) enum CoreSnapshot {
    /// The shared `StdRng`'s four xoshiro256++ state words.
    Shared([u64; 4]),
    /// Counter-based streams are pure functions of `(key, step)`; the
    /// partial buffers are per-step scratch, zeroed at every boundary.
    PerVm,
    /// Per-location `(class, count, n_on)` triples in cell order
    /// (locations `0..m` are the PMs, location `m` the limbo pool);
    /// cell keys are rebuilt from the seed and class hashes.
    ClassAggregated(Vec<Vec<(u32, u32, u32)>>),
}

/// The engine's per-step hot path in structure-of-arrays form.
pub(crate) struct WorkloadCore {
    p_on: Vec<f64>,
    p_off: Vec<f64>,
    demand_off: Vec<f64>,
    demand_on: Vec<f64>,
    /// Current ON/OFF state per VM; read freely by the engine between
    /// steps (victim selection, demand queries, evacuation sizing).
    pub(crate) on: Vec<bool>,
    mode: Mode,
}

impl WorkloadCore {
    /// Flattens `vms` and prepares the RNG layout. `m` is the PM count
    /// (the width of each per-chunk partial buffer); `threads` follows
    /// [`crate::config::SimConfig::threads`] semantics and is resolved
    /// here: `0` → available parallelism, always `1` inside a
    /// `replicate_seeds` worker, and capped at the chunk count.
    pub(crate) fn new(
        vms: &[VmSpec],
        m: usize,
        seed: u64,
        layout: RngLayout,
        threads: usize,
    ) -> Self {
        let n = vms.len();
        let resolve_threads = |chunks: usize| {
            let requested = if crate::runner::in_replication_worker() {
                1
            } else if threads == 0 {
                thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                threads
            };
            requested.clamp(1, chunks)
        };
        let mode = match layout {
            RngLayout::Shared => Mode::Shared {
                rng: StdRng::seed_from_u64(seed),
            },
            RngLayout::PerVm => {
                let chunks = n.div_ceil(PER_VM_CHUNK).max(1);
                Mode::PerVm {
                    keys: vms
                        .iter()
                        .map(|vm| stream_key(seed, vm.id as u64))
                        .collect(),
                    threads: resolve_threads(chunks),
                    partials: (0..chunks)
                        .map(|_| Partial {
                            dense: vec![0.0; m],
                            touched: Vec::with_capacity(PER_VM_CHUNK.min(n)),
                        })
                        .collect(),
                }
            }
            RngLayout::ClassAggregated => {
                // Canonical class table: distinct class keys sorted by
                // their exact bit patterns. Sorting by *content* (never
                // first-appearance order) is what makes cell streams —
                // and with them every outcome — invariant under the
                // order VMs are enumerated in the fleet.
                let mut keys: Vec<[u64; 4]> = vms.iter().map(|vm| VmClass::of(vm).key()).collect();
                keys.sort_unstable();
                keys.dedup();
                let index: std::collections::HashMap<[u64; 4], u32> = keys
                    .iter()
                    .enumerate()
                    .map(|(c, &k)| (k, c as u32))
                    .collect();
                let mut classes: Vec<ClassInfo> = keys
                    .iter()
                    .map(|&k| ClassInfo {
                        p_on: f64::from_bits(k[0]),
                        p_off: f64::from_bits(k[1]),
                        demand_off: 0.0,
                        demand_on: 0.0,
                        hash: class_hash(k),
                    })
                    .collect();
                let class_of: Vec<u32> =
                    vms.iter().map(|vm| index[&VmClass::of(vm).key()]).collect();
                // Demands via the spec's own accessor (bit-identical for
                // every member of a class, so any representative works).
                for (i, vm) in vms.iter().enumerate() {
                    let info = &mut classes[class_of[i] as usize];
                    info.demand_off = vm.demand(false);
                    info.demand_on = vm.demand(true);
                }
                let chunks = m.div_ceil(CLASS_PM_CHUNK).max(1);
                Mode::ClassAggregated {
                    classes,
                    class_of,
                    cells: (0..=m).map(|_| Vec::new()).collect(),
                    threads: resolve_threads(chunks),
                    seed,
                }
            }
        };
        Self {
            p_on: vms.iter().map(|vm| vm.p_on).collect(),
            p_off: vms.iter().map(|vm| vm.p_off).collect(),
            demand_off: vms.iter().map(|vm| vm.demand(false)).collect(),
            demand_on: vms.iter().map(|vm| vm.demand(true)).collect(),
            on: vec![false; n],
            mode,
        }
    }

    /// Advances every chain one step and rebuilds `observed` (zeroed
    /// first) with the sum of hosted demands per PM. Displaced VMs
    /// (`host[i] == None`) still evolve — the draw sequence must not
    /// depend on fault or migration decisions. Copy-overhead dual
    /// entries stay with the caller.
    pub(crate) fn step(&mut self, step: u64, host: &[Option<usize>], observed: &mut [f64]) {
        let Self {
            p_on,
            p_off,
            demand_off,
            demand_on,
            on,
            mode,
        } = self;
        match mode {
            Mode::Shared { rng } => {
                // Pre-SoA engine order, verbatim: one full evolution
                // pass (n sequential draws), then one full accumulation
                // pass in ascending VM order.
                for i in 0..on.len() {
                    let u = rng.gen::<f64>();
                    on[i] = if on[i] { u >= p_off[i] } else { u < p_on[i] };
                }
                observed.iter_mut().for_each(|o| *o = 0.0);
                for (i, j) in host.iter().enumerate() {
                    if let Some(j) = *j {
                        observed[j] += if on[i] { demand_on[i] } else { demand_off[i] };
                    }
                }
            }
            Mode::PerVm {
                keys,
                threads,
                partials,
            } => {
                let mut units: Vec<(usize, &mut [bool], &mut Partial)> = on
                    .chunks_mut(PER_VM_CHUNK)
                    .zip(partials.iter_mut())
                    .enumerate()
                    .map(|(c, (chunk, partial))| (c, chunk, partial))
                    .collect();
                let evolve_chunk = |c: usize, chunk: &mut [bool], partial: &mut Partial| {
                    let base = c * PER_VM_CHUNK;
                    for (off, on_i) in chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let u = keyed_u01(keys[i], step);
                        *on_i = if *on_i { u >= p_off[i] } else { u < p_on[i] };
                        if let Some(j) = host[i] {
                            if partial.dense[j] == 0.0 {
                                partial.touched.push(j);
                            }
                            partial.dense[j] += if *on_i { demand_on[i] } else { demand_off[i] };
                        }
                    }
                };
                if *threads <= 1 || units.len() <= 1 {
                    for (c, chunk, partial) in &mut units {
                        evolve_chunk(*c, chunk, partial);
                    }
                } else {
                    let mut buckets: Vec<Vec<(usize, &mut [bool], &mut Partial)>> =
                        (0..*threads).map(|_| Vec::new()).collect();
                    for (slot, unit) in units.into_iter().enumerate() {
                        buckets[slot % *threads].push(unit);
                    }
                    thread::scope(|scope| {
                        for bucket in &mut buckets {
                            scope.spawn(|| {
                                for (c, chunk, partial) in bucket.iter_mut() {
                                    evolve_chunk(*c, chunk, partial);
                                }
                            });
                        }
                    });
                }
                // Deterministic reduction: ascending chunk order, each
                // PM's partial added exactly once (a `touched` entry can
                // repeat only while the partial was still 0.0, and the
                // first fold resets it, so duplicates add 0.0).
                observed.iter_mut().for_each(|o| *o = 0.0);
                for partial in partials.iter_mut() {
                    for &j in &partial.touched {
                        observed[j] += partial.dense[j];
                        partial.dense[j] = 0.0;
                    }
                    partial.touched.clear();
                }
            }
            Mode::ClassAggregated {
                classes,
                cells,
                threads,
                ..
            } => {
                // Two binomial draws per occupied (PM, class) cell: the
                // ON→OFF departures and OFF→ON arrivals of the cell's
                // superposed chains. Draw coordinates are pure functions
                // of (seed, location, class, step) — counters 2·step and
                // 2·step + 1 of the cell's keyed stream — so any thread
                // can evolve any PM, and each PM's demand is produced
                // entirely by its own cells in canonical class order:
                // thread-count invariance needs no reduction tree here.
                let m = observed.len();
                let (pm_cells, limbo) = cells.split_at_mut(m);
                let classes: &[ClassInfo] = classes;
                let evolve = |cell_chunk: &mut [Vec<Cell>], obs_chunk: &mut [f64]| {
                    for (cs, o) in cell_chunk.iter_mut().zip(obs_chunk.iter_mut()) {
                        let mut demand = 0.0;
                        for cell in cs.iter_mut() {
                            let info = &classes[cell.class as usize];
                            let off_count = cell.count - cell.n_on;
                            let out = keyed_binomial(cell.key, 2 * step, cell.n_on, info.p_off);
                            let inn = keyed_binomial(cell.key, 2 * step + 1, off_count, info.p_on);
                            cell.n_on = cell.n_on - out + inn;
                            demand += f64::from(cell.n_on) * info.demand_on
                                + f64::from(cell.count - cell.n_on) * info.demand_off;
                        }
                        *o = demand;
                    }
                };
                if *threads <= 1 || m <= CLASS_PM_CHUNK {
                    evolve(pm_cells, observed);
                } else {
                    let units: Vec<(&mut [Vec<Cell>], &mut [f64])> = pm_cells
                        .chunks_mut(CLASS_PM_CHUNK)
                        .zip(observed.chunks_mut(CLASS_PM_CHUNK))
                        .collect();
                    #[allow(clippy::type_complexity)]
                    let mut buckets: Vec<Vec<(&mut [Vec<Cell>], &mut [f64])>> =
                        (0..*threads).map(|_| Vec::new()).collect();
                    for (slot, unit) in units.into_iter().enumerate() {
                        buckets[slot % *threads].push(unit);
                    }
                    thread::scope(|scope| {
                        for bucket in &mut buckets {
                            scope.spawn(|| {
                                for (cell_chunk, obs_chunk) in bucket.iter_mut() {
                                    evolve(cell_chunk, obs_chunk);
                                }
                            });
                        }
                    });
                }
                // Displaced VMs keep evolving (the draw sequence must not
                // depend on fault decisions) but contribute no demand.
                for cell in limbo[0].iter_mut() {
                    let info = &classes[cell.class as usize];
                    let off_count = cell.count - cell.n_on;
                    let out = keyed_binomial(cell.key, 2 * step, cell.n_on, info.p_off);
                    let inn = keyed_binomial(cell.key, 2 * step + 1, off_count, info.p_on);
                    cell.n_on = cell.n_on - out + inn;
                }
            }
        }
    }

    /// Builds the class-aggregated counters from the initial placement
    /// (every VM OFF, matching the all-`false` `on` vector). Must be
    /// called once before the first [`WorkloadCore::step`] under
    /// [`RngLayout::ClassAggregated`]; a no-op for the other layouts.
    pub(crate) fn class_init(&mut self, host: &[Option<usize>]) {
        let Mode::ClassAggregated {
            classes,
            class_of,
            cells,
            seed,
            ..
        } = &mut self.mode
        else {
            return;
        };
        for cs in cells.iter_mut() {
            cs.clear();
        }
        let limbo = cells.len() - 1;
        for (i, h) in host.iter().enumerate() {
            let loc = h.unwrap_or(limbo);
            let c = class_of[i];
            let cs = &mut cells[loc];
            match cs.binary_search_by_key(&c, |cell| cell.class) {
                Ok(at) => cs[at].count += 1,
                Err(at) => cs.insert(
                    at,
                    Cell {
                        class: c,
                        count: 1,
                        n_on: 0,
                        key: class_cell_key(*seed, loc as u64, classes[c as usize].hash),
                    },
                ),
            }
        }
    }

    /// Refreshes the `on` flags of PM `j`'s hosted VMs from its cell
    /// counters, using the canonical disaggregation rule: within each
    /// class at one location, the `n_on` members with the lowest VM
    /// indices are ON. The engine calls this before any decision that
    /// reads per-VM state (victim selection, demand queries); a no-op
    /// for the other layouts, whose `on` vector is always current.
    pub(crate) fn class_sync_pm(&mut self, j: usize, members: &[usize]) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            class_of, cells, ..
        } = mode
        else {
            return;
        };
        Self::class_assign_flags(on, class_of, &cells[j], members.iter().copied());
    }

    /// Refreshes the `on` flags of every displaced VM (`host[i] == None`)
    /// from the limbo-pool counters — the displaced-side counterpart of
    /// [`WorkloadCore::class_sync_pm`], called before evacuation passes.
    pub(crate) fn class_sync_displaced(&mut self, host: &[Option<usize>]) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            class_of, cells, ..
        } = mode
        else {
            return;
        };
        let limbo = cells.len() - 1;
        let displaced = host
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_none())
            .map(|(i, _)| i);
        Self::class_assign_flags(on, class_of, &cells[limbo], displaced);
    }

    /// Shared flag-assignment pass of the two sync hooks: group `members`
    /// by class, sort each group ascending, flag the first `n_on` of the
    /// matching cell ON.
    fn class_assign_flags(
        on: &mut [bool],
        class_of: &[u32],
        cells: &[Cell],
        members: impl Iterator<Item = usize>,
    ) {
        if cells.is_empty() {
            return;
        }
        // (class, vm index) sorted: classes ascending, indices ascending
        // within a class — one pass pairs each cell with its contiguous
        // member group (cells are sorted by class too).
        let mut by_class: Vec<(u32, usize)> = members.map(|i| (class_of[i], i)).collect();
        by_class.sort_unstable();
        let mut pos = 0usize;
        for cell in cells {
            debug_assert!(pos >= by_class.len() || by_class[pos].0 >= cell.class);
            let start = pos;
            while pos < by_class.len() && by_class[pos].0 == cell.class {
                pos += 1;
            }
            let group = &by_class[start..pos];
            debug_assert_eq!(
                group.len(),
                cell.count as usize,
                "cell membership out of sync"
            );
            for (g, &(_, i)) in group.iter().enumerate() {
                on[i] = g < cell.n_on as usize;
            }
        }
    }

    /// Moves VM `i` between locations in the class-aggregated counters
    /// (`None` = the displaced limbo pool), carrying its current `on`
    /// flag. The caller must have synced `i`'s source location since the
    /// last evolution step so the flag matches the source counters; a
    /// no-op for the other layouts.
    pub(crate) fn class_move(&mut self, i: usize, from: Option<usize>, to: Option<usize>) {
        let Self { on, mode, .. } = self;
        let Mode::ClassAggregated {
            classes,
            class_of,
            cells,
            seed,
            ..
        } = mode
        else {
            return;
        };
        let limbo = cells.len() - 1;
        let c = class_of[i];
        let was_on = on[i];
        let src = from.unwrap_or(limbo);
        let cs = &mut cells[src];
        let at = cs
            .binary_search_by_key(&c, |cell| cell.class)
            .expect("moving VM has a source cell");
        cs[at].count -= 1;
        if was_on {
            cs[at].n_on -= 1;
        }
        if cs[at].count == 0 {
            cs.remove(at);
        }
        let dst = to.unwrap_or(limbo);
        let cs = &mut cells[dst];
        match cs.binary_search_by_key(&c, |cell| cell.class) {
            Ok(at) => {
                cs[at].count += 1;
                cs[at].n_on += u32::from(was_on);
            }
            Err(at) => cs.insert(
                at,
                Cell {
                    class: c,
                    count: 1,
                    n_on: u32::from(was_on),
                    key: class_cell_key(*seed, dst as u64, classes[c as usize].hash),
                },
            ),
        }
    }

    /// Crash handling for PM `j`: fixes each member's flag from the
    /// current counters (the flags displaced VMs carry into evacuation),
    /// then merges the PM's cells wholesale into the limbo pool. A no-op
    /// for the other layouts.
    pub(crate) fn class_crash(&mut self, j: usize, members: &[usize]) {
        self.class_sync_pm(j, members);
        let Mode::ClassAggregated {
            classes,
            cells,
            seed,
            ..
        } = &mut self.mode
        else {
            return;
        };
        let limbo = cells.len() - 1;
        let moved = std::mem::take(&mut cells[j]);
        for cell in moved {
            let pool = &mut cells[limbo];
            match pool.binary_search_by_key(&cell.class, |c| c.class) {
                Ok(at) => {
                    pool[at].count += cell.count;
                    pool[at].n_on += cell.n_on;
                }
                Err(at) => pool.insert(
                    at,
                    Cell {
                        class: cell.class,
                        count: cell.count,
                        n_on: cell.n_on,
                        key: class_cell_key(*seed, limbo as u64, classes[cell.class as usize].hash),
                    },
                ),
            }
        }
    }

    /// Captures the mode-specific evolving state for a checkpoint.
    pub(crate) fn snapshot_mode(&self) -> CoreSnapshot {
        match &self.mode {
            Mode::Shared { rng } => CoreSnapshot::Shared(rng.state()),
            Mode::PerVm { .. } => CoreSnapshot::PerVm,
            Mode::ClassAggregated { cells, .. } => CoreSnapshot::ClassAggregated(
                cells
                    .iter()
                    .map(|cs| cs.iter().map(|c| (c.class, c.count, c.n_on)).collect())
                    .collect(),
            ),
        }
    }

    /// Restores the mode-specific state captured by
    /// [`WorkloadCore::snapshot_mode`] into a freshly built core of the
    /// same fleet, seed, and layout. Rejects layout mismatches and any
    /// structurally impossible counter state (unsorted or out-of-range
    /// cells, `n_on > count`, membership not summing to the fleet) so a
    /// corrupted snapshot can never become a silently wrong run.
    pub(crate) fn restore_mode(&mut self, snap: CoreSnapshot) -> Result<(), String> {
        match (&mut self.mode, snap) {
            (Mode::Shared { rng }, CoreSnapshot::Shared(words)) => {
                *rng = StdRng::from_state(words)
                    .ok_or_else(|| "shared rng state is the all-zero fixed point".to_string())?;
                Ok(())
            }
            (Mode::PerVm { .. }, CoreSnapshot::PerVm) => Ok(()),
            (
                Mode::ClassAggregated {
                    classes,
                    cells,
                    seed,
                    ..
                },
                CoreSnapshot::ClassAggregated(locs),
            ) => {
                if locs.len() != cells.len() {
                    return Err(format!(
                        "class snapshot has {} locations, core expects {}",
                        locs.len(),
                        cells.len()
                    ));
                }
                let mut total: u64 = 0;
                for (loc, cs) in locs.iter().enumerate() {
                    let mut prev: Option<u32> = None;
                    for &(class, count, n_on) in cs {
                        if class as usize >= classes.len() {
                            return Err(format!("class index {class} out of range"));
                        }
                        if count == 0 || n_on > count {
                            return Err(format!(
                                "cell ({loc}, {class}) has count {count}, n_on {n_on}"
                            ));
                        }
                        if prev.is_some_and(|p| p >= class) {
                            return Err(format!("cells of location {loc} not sorted by class"));
                        }
                        prev = Some(class);
                        total += u64::from(count);
                    }
                }
                if total != self.on.len() as u64 {
                    return Err(format!(
                        "cell membership sums to {total}, fleet has {} VMs",
                        self.on.len()
                    ));
                }
                for (loc, (dst, src)) in cells.iter_mut().zip(locs).enumerate() {
                    *dst = src
                        .into_iter()
                        .map(|(class, count, n_on)| Cell {
                            class,
                            count,
                            n_on,
                            key: class_cell_key(*seed, loc as u64, classes[class as usize].hash),
                        })
                        .collect();
                }
                Ok(())
            }
            _ => Err("snapshot layout does not match the configured rng layout".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| VmSpec::new(i, 0.02 + (i % 7) as f64 * 0.01, 0.08, 8.0, 12.0))
            .collect()
    }

    fn run_core(core: &mut WorkloadCore, host: &[Option<usize>], m: usize, steps: u64) -> Vec<f64> {
        let mut observed = vec![0.0; m];
        let mut trace = Vec::new();
        for step in 0..steps {
            core.step(step, host, &mut observed);
            trace.extend_from_slice(&observed);
        }
        trace
    }

    #[test]
    fn shared_layout_matches_legacy_loop_bit_for_bit() {
        let vms = fleet(133);
        let m = 9;
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();

        // Legacy loop: per-VM chain stepping off one shared StdRng.
        let mut rng = StdRng::seed_from_u64(99);
        let mut on = vec![false; vms.len()];
        let mut legacy = Vec::new();
        for _ in 0..50 {
            for (i, vm) in vms.iter().enumerate() {
                let state = if on[i] {
                    bursty_markov::VmState::On
                } else {
                    bursty_markov::VmState::Off
                };
                on[i] = vm.chain().step(state, &mut rng).is_on();
            }
            let mut observed = vec![0.0; m];
            for (i, j) in host.iter().enumerate() {
                if let Some(j) = *j {
                    observed[j] += vms[i].demand(on[i]);
                }
            }
            legacy.extend_from_slice(&observed);
        }

        let mut core = WorkloadCore::new(&vms, m, 99, RngLayout::Shared, 1);
        let soa = run_core(&mut core, &host, m, 50);
        assert_eq!(legacy.len(), soa.len());
        for (a, b) in legacy.iter().zip(&soa) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn pervm_layout_is_thread_count_invariant() {
        // Fleet large enough for several chunks; some VMs unhosted.
        let vms = fleet(2 * PER_VM_CHUNK + 77);
        let m = 13;
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 11 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 3, 8] {
            let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::PerVm, threads);
            let trace = run_core(&mut core, &host, m, 25);
            let bits: Vec<u64> = trace.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn pervm_streams_follow_the_stationary_law() {
        // Each chain's long-run ON fraction must approach
        // p_on / (p_on + p_off) under the counter-based streams too.
        let vms: Vec<VmSpec> = (0..400)
            .map(|i| VmSpec::new(i, 0.3, 0.2, 1.0, 1.0))
            .collect();
        let host: Vec<Option<usize>> = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 1, 11, RngLayout::PerVm, 1);
        let mut observed = vec![0.0; 1];
        let steps = 4000u64;
        let mut on_steps = 0usize;
        for step in 0..steps {
            core.step(step, &host, &mut observed);
            on_steps += core.on.iter().filter(|&&b| b).count();
        }
        let frac = on_steps as f64 / (steps as usize * vms.len()) as f64;
        assert!((frac - 0.6).abs() < 0.01, "ON fraction {frac}, want 0.6");
    }

    /// A class-heavy fleet: `n` VMs drawn from 3 distinct classes.
    fn class_fleet(n: usize) -> Vec<VmSpec> {
        (0..n)
            .map(|i| match i % 3 {
                0 => VmSpec::new(i, 0.02, 0.08, 8.0, 12.0),
                1 => VmSpec::new(i, 0.05, 0.05, 4.0, 20.0),
                _ => VmSpec::new(i, 0.10, 0.02, 2.0, 6.0),
            })
            .collect()
    }

    #[test]
    fn class_layout_is_thread_count_invariant() {
        // Enough PMs for several CLASS_PM_CHUNK chunks so the parallel
        // path actually splits, plus some displaced VMs in limbo.
        let m = 2 * CLASS_PM_CHUNK + 91;
        let vms = class_fleet(3 * m);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 17 != 0).then_some(i % m))
            .collect();
        let mut reference = None;
        for threads in [1usize, 2, 8] {
            let mut core = WorkloadCore::new(&vms, m, 7, RngLayout::ClassAggregated, threads);
            core.class_init(&host);
            let trace = run_core(&mut core, &host, m, 12);
            let bits: Vec<u64> = trace.iter().map(|v| v.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => assert_eq!(r, &bits, "divergence at {threads} threads"),
            }
        }
    }

    #[test]
    fn class_layout_is_invariant_under_fleet_enumeration_order() {
        // Reversing the fleet (and its placement with it) permutes the
        // order classes are first encountered, but every (PM, class)
        // cell keeps the same composition — so the per-PM demand trace
        // must be bit-identical: the class table is sorted by content
        // and cell streams are keyed by content hashes, never by
        // first-appearance indices.
        let m = 11;
        let vms = class_fleet(200);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 13 != 0).then_some(i % m))
            .collect();
        let mut fwd = WorkloadCore::new(&vms, m, 3, RngLayout::ClassAggregated, 1);
        fwd.class_init(&host);
        let trace_fwd = run_core(&mut fwd, &host, m, 30);

        let vms_rev: Vec<VmSpec> = vms.iter().rev().cloned().collect();
        let host_rev: Vec<Option<usize>> = host.iter().rev().copied().collect();
        let mut rev = WorkloadCore::new(&vms_rev, m, 3, RngLayout::ClassAggregated, 1);
        rev.class_init(&host_rev);
        let trace_rev = run_core(&mut rev, &host_rev, m, 30);

        for (a, b) in trace_fwd.iter().zip(&trace_rev) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn class_counters_follow_the_stationary_law() {
        // One PM hosting k same-class chains: the ON count must settle
        // on Binomial(k, p_on/(p_on+p_off)) — mean and variance both.
        // r_b = 1, r_e = 1 makes the observed demand k + ON count.
        let k = 50usize;
        let vms: Vec<VmSpec> = (0..k).map(|i| VmSpec::new(i, 0.3, 0.2, 1.0, 1.0)).collect();
        let host: Vec<Option<usize>> = vec![Some(0); k];
        let mut core = WorkloadCore::new(&vms, 1, 11, RngLayout::ClassAggregated, 1);
        core.class_init(&host);
        let mut observed = vec![0.0; 1];
        let steps = 6000u64;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for step in 0..steps {
            core.step(step, &host, &mut observed);
            let n_on = observed[0] - k as f64;
            sum += n_on;
            sum_sq += n_on * n_on;
        }
        let mean = sum / steps as f64;
        let var = sum_sq / steps as f64 - mean * mean;
        let pi = 0.3 / 0.5;
        let (want_mean, want_var) = (k as f64 * pi, k as f64 * pi * (1.0 - pi));
        assert!((mean - want_mean).abs() < 0.03 * want_mean, "mean {mean}");
        assert!((var - want_var).abs() < 0.25 * want_var, "var {var}");
    }

    #[test]
    fn class_sync_and_move_keep_flags_consistent_with_counters() {
        // Sync must flag exactly n_on members ON per cell, and a move
        // must carry the flag so counters never underflow.
        let m = 2;
        let vms = class_fleet(30);
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % m)).collect();
        let mut core = WorkloadCore::new(&vms, m, 5, RngLayout::ClassAggregated, 1);
        core.class_init(&host);
        let mut observed = vec![0.0; m];
        for step in 0..20 {
            core.step(step, &host, &mut observed);
        }
        let members: Vec<usize> = (0..vms.len()).filter(|i| i % m == 0).collect();
        core.class_sync_pm(0, &members);
        // Flag-sum == counter-sum: the demand implied by the synced
        // per-VM flags must reproduce the counter-computed observed load
        // (same addends, possibly different grouping — so approximate).
        let demand: f64 = members.iter().map(|&i| vms[i].demand(core.on[i])).sum();
        assert!(
            (demand - observed[0]).abs() < 1e-9 * observed[0].max(1.0),
            "flags imply {demand}, counters observed {}",
            observed[0]
        );
        // Move every PM-0 member to PM 1 and back; counters must absorb
        // the round trip without panicking, and the flags (which the
        // moves carry) must survive unchanged.
        let on_before: Vec<bool> = members.iter().map(|&i| core.on[i]).collect();
        for &i in &members {
            core.class_move(i, Some(0), Some(1));
        }
        for &i in &members {
            core.class_move(i, Some(1), Some(0));
        }
        core.class_sync_pm(0, &members);
        let on_after: Vec<bool> = members.iter().map(|&i| core.on[i]).collect();
        assert_eq!(on_before, on_after);
    }

    #[test]
    fn snapshot_restore_resumes_every_layout_bit_for_bit() {
        let m = 7;
        let vms = class_fleet(150);
        let host: Vec<Option<usize>> = (0..vms.len())
            .map(|i| (i % 13 != 0).then_some(i % m))
            .collect();
        for layout in [
            RngLayout::Shared,
            RngLayout::PerVm,
            RngLayout::ClassAggregated,
        ] {
            let mut a = WorkloadCore::new(&vms, m, 42, layout, 1);
            a.class_init(&host);
            let mut observed = vec![0.0; m];
            for step in 0..40 {
                a.step(step, &host, &mut observed);
            }
            // Rebuild a fresh core from specs, then restore the evolving
            // state — exactly what checkpoint load does.
            let mut b = WorkloadCore::new(&vms, m, 42, layout, 1);
            b.class_init(&host);
            b.restore_mode(a.snapshot_mode()).unwrap();
            b.on.copy_from_slice(&a.on);
            let (mut oa, mut ob) = (vec![0.0; m], vec![0.0; m]);
            for step in 40..70 {
                a.step(step, &host, &mut oa);
                b.step(step, &host, &mut ob);
                for (x, y) in oa.iter().zip(&ob) {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "layout {layout:?} diverged at step {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn restore_rejects_mismatched_and_corrupt_snapshots() {
        let vms = class_fleet(30);
        let host: Vec<Option<usize>> = (0..vms.len()).map(|i| Some(i % 3)).collect();
        let mut shared = WorkloadCore::new(&vms, 3, 1, RngLayout::Shared, 1);
        assert!(shared.restore_mode(CoreSnapshot::PerVm).is_err());
        assert!(shared
            .restore_mode(CoreSnapshot::Shared([0, 0, 0, 0]))
            .is_err());
        let mut class = WorkloadCore::new(&vms, 3, 1, RngLayout::ClassAggregated, 1);
        class.class_init(&host);
        let CoreSnapshot::ClassAggregated(good) = class.snapshot_mode() else {
            panic!("wrong snapshot variant");
        };
        // n_on above count.
        let mut bad = good.clone();
        bad[0][0].2 = bad[0][0].1 + 1;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Out-of-range class index.
        let mut bad = good.clone();
        bad[0][0].0 = 999;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Membership no longer sums to the fleet.
        let mut bad = good.clone();
        bad[0][0].1 += 1;
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // Wrong location count.
        let mut bad = good.clone();
        bad.pop();
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(bad))
            .is_err());
        // The pristine snapshot still restores.
        assert!(class
            .restore_mode(CoreSnapshot::ClassAggregated(good))
            .is_ok());
    }

    #[test]
    fn displaced_vms_keep_evolving_without_contributing_demand() {
        let vms = fleet(40);
        let host = vec![None; vms.len()];
        let mut core = WorkloadCore::new(&vms, 3, 1, RngLayout::PerVm, 2);
        let mut observed = vec![1.0; 3];
        core.step(0, &host, &mut observed);
        assert!(observed.iter().all(|&o| o == 0.0));
        assert!(core.on.iter().any(|&b| b), "chains must still evolve");
    }
}
