//! Edge-seam certification of the memoized binomial sampler
//! (`sim::rng::binomial_table`) against the pmf-recurrence walk it
//! memoizes.
//!
//! The bit-identity contract (DESIGN.md §8) says the table path and the
//! walk path are the *same function* of `(key, counter, n, p)` — not
//! statistically close, bitwise equal. The seams where that could
//! silently break are (a) the `q^n`-underflow boundary, where the walk
//! switches to its `ln_gamma`-anchored log-space start, (b) the
//! degenerate cells `n = 0` and `p ∈ {0, 1}` that short-circuit before
//! any table is consulted, and (c) the far right tail, where the table
//! truncates its stored prefix once every later partial sum is
//! absorbed. On top of the bit-level checks, a chi-square
//! re-certification draws through the *cache* (flushes included) and
//! checks the empirical law against `Binomial(k, π)` — the same
//! marginal certification `class_equivalence.rs` applies to the
//! engine's cells.

use bursty_markov::binomial::BinomialPmf;
use bursty_sim::rng::binomial_table::{BinomialTable, TableCache};
use bursty_sim::rng::{binomial_from_u01, class_cell_key, class_hash, keyed_binomial};
use proptest::prelude::*;

/// The smallest `n` whose `q^n` underflows to 0.0: below it the walk
/// anchors at `k = 0`, at and above it the `ln_gamma` log-space anchor
/// takes over.
fn underflow_cutoff(p: f64) -> u32 {
    let q = 1.0 - p;
    let mut lo = 1u32;
    let mut hi = 2u32;
    while q.powi(hi as i32) > 0.0 {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if q.powi(mid as i32) > 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    hi
}

#[test]
fn underflow_cutoff_finder_is_correct() {
    for &p in &[0.01, 0.09, 0.3, 0.5] {
        let n = underflow_cutoff(p);
        let q = 1.0 - p;
        assert!(q.powi(n as i32) == 0.0, "p={p}: q^{n} did not underflow");
        assert!(q.powi(n as i32 - 1) > 0.0, "p={p}: cutoff {n} not minimal");
    }
}

#[test]
fn table_equals_walk_at_the_underflow_anchor_boundary() {
    // n straddling the cutoff on both sides: the table must follow the
    // walk into (and out of) the log-space anchored regime bitwise.
    for &p in &[0.01, 0.09, 0.3, 0.5, 0.77] {
        let cutoff = underflow_cutoff(p);
        for n in cutoff.saturating_sub(3)..=cutoff + 3 {
            let key = class_cell_key(42, u64::from(n), class_hash([1, 2, 3, 4]));
            let table = BinomialTable::build(n, p);
            let mut cache = TableCache::new(&[p], 1 << 20);
            for counter in 0..2_000u64 {
                let u = bursty_sim::rng::pervm_u01(42, u64::from(n), counter);
                assert_eq!(
                    table.sample_u01(u),
                    binomial_from_u01(u, n, p),
                    "u-level divergence at n={n} p={p} (cutoff {cutoff})"
                );
                assert_eq!(
                    cache.draw(0, key, counter, n),
                    keyed_binomial(key, counter, n, p),
                    "draw-level divergence at n={n} p={p} (cutoff {cutoff})"
                );
            }
        }
    }
}

#[test]
fn degenerate_cells_short_circuit_identically() {
    // n = 0 and p ∈ {0, 1} never consult a table; the cache must
    // reproduce the walk's short-circuits for them exactly — including
    // p values outside [0, 1], which the walk clamps by branch.
    let key = class_cell_key(7, 3, class_hash([5, 6, 7, 8]));
    let mut cache = TableCache::new(&[0.0, 1.0, -0.25, 1.5, 0.3], 1 << 16);
    for (slot, &p) in [0.0, 1.0, -0.25, 1.5, 0.3].iter().enumerate() {
        for &n in &[0u32, 1, 17, 400] {
            for counter in 0..64u64 {
                assert_eq!(
                    cache.draw(slot, key, counter, n),
                    keyed_binomial(key, counter, n, p),
                    "p={p} n={n} counter={counter}"
                );
            }
        }
    }
    // Nothing above may have built a table for the degenerate slots.
    let stats = cache.stats();
    assert_eq!(stats.evictions, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized sweep of the bit-identity contract over the whole
    /// (n, p) plane the engine can reach, both anchor regimes included.
    #[test]
    fn cache_draw_equals_walk_everywhere(
        n in 1u32..20_000,
        p_mil in 1u32..1_000_000,
        seed in 0u64..1_000,
    ) {
        let p = f64::from(p_mil) / 1e6;
        let key = class_cell_key(seed, 11, class_hash([9, 9, 9, 9]));
        let mut cache = TableCache::new(&[p], 1 << 20);
        for counter in 0..256u64 {
            prop_assert_eq!(
                cache.draw(0, key, counter, n),
                keyed_binomial(key, counter, n, p),
                "n={} p={} counter={}", n, p, counter
            );
        }
    }
}

/// Chi-square re-certification of the cached sampler: draws taken
/// through the cache — with a budget small enough to force generation
/// flushes mid-stream — must follow `Binomial(k, π)`. Flushes rebuild
/// tables from the same `(n, p)`, so they must be statistically
/// invisible.
#[test]
fn cached_draws_pass_chi_square_against_the_binomial_law() {
    let (n, p) = (40u32, 0.35f64);
    let draws = 200_000u64;
    // A budget below one table's entries forces a rebuild every draw
    // in the worst case; alternate n slightly to actually churn it.
    let mut cache = TableCache::new(&[p], 96);
    let key = class_cell_key(2024, 5, class_hash([4, 3, 2, 1]));
    let mut histogram = vec![0u64; n as usize + 1];
    for counter in 0..draws {
        // Interleave a second n to exercise eviction pressure.
        let _ = cache.draw(0, key, u64::MAX - counter, n - 1);
        let x = cache.draw(0, key, counter, n);
        histogram[x as usize] += 1;
    }
    assert!(
        cache.stats().evictions > 0,
        "test premise: flushes must happen mid-stream"
    );
    // Pool bins with expected count < 5 into the tails (standard
    // chi-square validity rule).
    let law = BinomialPmf::new(u64::from(n), p);
    let expected: Vec<f64> = (0..=u64::from(n))
        .map(|k| law.pmf(k) * draws as f64)
        .collect();
    let mut chi2 = 0.0;
    let mut pooled_obs = 0.0;
    let mut pooled_exp = 0.0;
    let mut dof: i64 = -1;
    for k in 0..=n as usize {
        if expected[k] < 5.0 {
            pooled_obs += histogram[k] as f64;
            pooled_exp += expected[k];
        } else {
            let d = histogram[k] as f64 - expected[k];
            chi2 += d * d / expected[k];
            dof += 1;
        }
    }
    if pooled_exp > 0.0 {
        let d = pooled_obs - pooled_exp;
        chi2 += d * d / pooled_exp;
        dof += 1;
    }
    // 99.9th percentile of chi-square at the realized dof (~17 pooled
    // bins for Binomial(40, 0.35)): comfortably above any healthy run,
    // far below a broken sampler.
    let dof = dof.max(1) as f64;
    let threshold = dof + 3.09 * (2.0 * dof).sqrt() + 2.0 * 3.09 * 3.09 / 3.0;
    assert!(
        chi2 < threshold,
        "chi2 {chi2:.2} over threshold {threshold:.2} at dof {dof}"
    );
}
