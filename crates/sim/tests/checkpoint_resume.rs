//! The crash-safety tentpole's two load-bearing properties
//! (DESIGN.md §11):
//!
//! 1. **Resume identity** — for every RNG layout, thread count, and
//!    fault setting, a run interrupted at any checkpoint boundary and
//!    resumed from the durable snapshot finishes `f64::to_bits`-
//!    identical to a run that never stopped. The checkpoint must carry
//!    *everything* that evolves: the workload RNG (all three layouts),
//!    the fault process mid-chain, the retry queue with its backoff
//!    exponents, the displaced pools, and every accumulated statistic.
//!
//! 2. **No injected I/O failure yields corrupt state** — writing
//!    through a [`FailingStore`] that tears files, fails renames, and
//!    silently flips bits, a later resume either loads a snapshot that
//!    verifies end to end (and then reproduces the exact baseline
//!    outcome) or reports a typed error. There is no third outcome:
//!    a corrupted file can delay recovery, never skew it.

use bursty_obs::durable::{FailingStore, MemStore};
use bursty_obs::{MemoryRecorder, NoopRecorder};
use bursty_placement::{first_fit, Placement, QueueStrategy};
use bursty_sim::{
    CheckpointConfig, CheckpointError, FaultConfig, QueuePolicy, RngLayout, SimConfig, SimOutcome,
    Simulator,
};
use bursty_workload::{PmSpec, VmSpec};
use proptest::prelude::*;

fn fleet(n: usize) -> (Vec<VmSpec>, Vec<PmSpec>) {
    let vms = (0..n)
        .map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0))
        .collect();
    let pms = (0..n).map(|j| PmSpec::new(j, 100.0)).collect();
    (vms, pms)
}

fn config(steps: usize, seed: u64, faults: bool, layout: RngLayout, threads: usize) -> SimConfig {
    SimConfig {
        steps,
        seed,
        faults: faults.then_some(FaultConfig {
            mtbf_steps: 30.0,
            mttr_steps: 8.0,
            correlated_group_size: 2,
            seed: seed ^ 0x5EED,
        }),
        rng_layout: layout,
        threads,
        ..Default::default()
    }
}

/// Checkpoint knobs with an unused directory: every test here passes an
/// explicit in-memory store.
fn knobs(every: usize, keep: usize) -> CheckpointConfig {
    CheckpointConfig {
        every,
        keep,
        dir: std::path::PathBuf::new(),
    }
}

/// Field-by-field bit equality — `==` on floats would accept
/// `-0.0 == 0.0`, masking exactly the drift this suite exists to catch.
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome, what: &str) {
    assert_eq!(a.cvr_per_pm.len(), b.cvr_per_pm.len(), "{what}: cvr len");
    for (x, y) in a.cvr_per_pm.iter().zip(&b.cvr_per_pm) {
        assert_eq!(x.0, y.0, "{what}: cvr pm index");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{what}: cvr bits pm {}", x.0);
    }
    assert_eq!(a.migrations, b.migrations, "{what}: migrations");
    assert_eq!(a.failed_migrations, b.failed_migrations, "{what}");
    assert_eq!(a.retried_migrations, b.retried_migrations, "{what}");
    assert_eq!(a.final_pms_used, b.final_pms_used, "{what}");
    assert_eq!(a.peak_pms_used, b.peak_pms_used, "{what}");
    assert_eq!(a.total_violation_steps, b.total_violation_steps, "{what}");
    assert_eq!(a.vm_violation_steps, b.vm_violation_steps, "{what}");
    assert_eq!(
        a.energy_joules.to_bits(),
        b.energy_joules.to_bits(),
        "{what}: energy bits"
    );
    assert_eq!(a.fault_events, b.fault_events, "{what}: fault events");
    assert_eq!(a.evacuations, b.evacuations, "{what}: evacuations");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery stats");
    assert_eq!(
        a.pms_used_series.len(),
        b.pms_used_series.len(),
        "{what}: series len"
    );
    for ((t1, v1), (t2, v2)) in a.pms_used_series.points().zip(b.pms_used_series.points()) {
        assert_eq!(t1.to_bits(), t2.to_bits(), "{what}: series time bits");
        assert_eq!(v1.to_bits(), v2.to_bits(), "{what}: series value bits");
    }
}

fn queue_setup(vms: &[VmSpec], pms: &[PmSpec]) -> (Placement, QueuePolicy) {
    let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    let placement = first_fit(vms, pms, &strategy).unwrap();
    (placement, QueuePolicy::new(strategy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Resume identity across every rng layout × 1/2/8 threads ×
    /// faults on/off. The checkpointed run itself must also match the
    /// plain run (the step hook observes, never perturbs).
    #[test]
    fn resume_is_bit_identical_to_an_uninterrupted_run(
        n in 8usize..20,
        steps in 40usize..120,
        seed in 0u64..1_000,
        every in 7usize..23,
        fault_bit in 0u8..2,
    ) {
        let faults = fault_bit == 1;
        let (vms, pms) = fleet(n);
        let (placement, policy) = queue_setup(&vms, &pms);
        for layout in [RngLayout::Shared, RngLayout::PerVm, RngLayout::ClassAggregated] {
            for threads in [1usize, 2, 8] {
                if layout == RngLayout::Shared && threads > 1 {
                    continue; // the shared stream is sequential by contract
                }
                let cfg = config(steps, seed, faults, layout, threads);
                let sim = Simulator::new(&vms, &pms, &policy, cfg);
                let what = format!("{layout:?}/{threads}t/faults={faults}/every={every}");

                let baseline = sim.run(&placement);
                let mut store = MemStore::new();
                let run = sim.run_with_checkpoints(
                    &placement, &knobs(every, 2), &mut store, &mut NoopRecorder);
                prop_assert!(run.save_errors.is_empty(), "{what}: save errors");
                assert_bit_identical(&baseline, &run.outcome, &format!("{what}: hooked run"));

                if steps > every {
                    // Snapshots exist: resuming re-runs the tail to the
                    // same bits — possibly at a *different* thread count
                    // (the fingerprint deliberately ignores threads).
                    let resume_threads = if layout == RngLayout::Shared { 1 } else { 4 };
                    let resumed_sim = Simulator::new(
                        &vms, &pms, &policy,
                        SimConfig { threads: resume_threads, ..cfg });
                    let (resumed, report) = resumed_sim
                        .resume_with_checkpoints(&knobs(every, 2), &mut store, &mut NoopRecorder)
                        .unwrap();
                    prop_assert!(report.discarded.is_empty(), "{what}: discards");
                    prop_assert_eq!(report.step % every, 0, "boundary snapshot");
                    assert_bit_identical(&baseline, &resumed.outcome, &format!("{what}: resumed"));
                }
            }
        }
    }

    /// A recorder attached across the interruption reproduces the
    /// uninterrupted journal exactly: events before the snapshot come
    /// from the restored journal, events after from the re-run tail —
    /// none lost, none duplicated.
    #[test]
    fn resumed_journal_equals_uninterrupted_journal(
        n in 8usize..16,
        steps in 40usize..90,
        seed in 0u64..500,
        every in 9usize..17,
    ) {
        let (vms, pms) = fleet(n);
        let (placement, policy) = queue_setup(&vms, &pms);
        let cfg = config(steps, seed, true, RngLayout::Shared, 1);
        let sim = Simulator::new(&vms, &pms, &policy, cfg);

        let mut full = MemoryRecorder::new(8192).with_cvr_sampling(5);
        sim.run_recorded(&placement, &mut full);

        let mut store = MemStore::new();
        let mut rec = MemoryRecorder::new(8192).with_cvr_sampling(5);
        sim.run_with_checkpoints(&placement, &knobs(every, 2), &mut store, &mut rec);
        if steps > every {
            let mut resumed = MemoryRecorder::new(8192).with_cvr_sampling(5);
            sim.resume_with_checkpoints(&knobs(every, 2), &mut store, &mut resumed)
                .unwrap();
            prop_assert_eq!(full.to_jsonl(), resumed.to_jsonl());
        }
    }

    /// The fault-injection property: no torn write, failed rename, or
    /// silent bit flip can make resume produce anything but (a) the
    /// exact baseline outcome from an older verifying snapshot or (b) a
    /// typed error. Sweeps fault probabilities from rare to brutal.
    #[test]
    fn injected_store_faults_never_yield_corrupt_state(
        seed in 0u64..2_000,
        p_short in 0u8..96,
        p_rename in 0u8..96,
        p_flip in 0u8..96,
    ) {
        let (vms, pms) = fleet(12);
        let (placement, policy) = queue_setup(&vms, &pms);
        let cfg = config(80, seed, true, RngLayout::Shared, 1);
        let sim = Simulator::new(&vms, &pms, &policy, cfg);
        let baseline = sim.run(&placement);

        let mut store = FailingStore::new(MemStore::new(), seed, p_short, p_rename, p_flip);
        let run = sim.run_with_checkpoints(
            &placement, &knobs(10, 2), &mut store, &mut NoopRecorder);
        // Whatever the store did, the run itself is never perturbed.
        assert_bit_identical(&baseline, &run.outcome, "run through failing store");

        match sim.resume_with_checkpoints(&knobs(10, 2), store.inner_mut(), &mut NoopRecorder) {
            Ok((resumed, report)) => {
                // Every discard must carry a reason; the loaded snapshot
                // reproduces the baseline bits exactly.
                for (name, why) in &report.discarded {
                    prop_assert!(!why.is_empty(), "{name}: empty discard reason");
                }
                assert_bit_identical(&baseline, &resumed.outcome, "resumed after faults");
            }
            Err(CheckpointError::NoUsableCheckpoint { discarded }) => {
                // Legal only when no write survived intact enough to
                // verify; every leftover file must carry a reason.
                for (name, why) in &discarded {
                    prop_assert!(!why.is_empty(), "{name}: empty discard reason");
                }
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other}"),
        }
    }
}

/// Deterministic spot check outside proptest: a specific brutal fault
/// pattern (every write torn) must leave resume with the typed
/// no-usable-checkpoint error, never a panic or a bogus outcome.
#[test]
fn all_writes_torn_is_a_typed_error() {
    let (vms, pms) = fleet(10);
    let (placement, policy) = queue_setup(&vms, &pms);
    let cfg = config(50, 3, false, RngLayout::Shared, 1);
    let sim = Simulator::new(&vms, &pms, &policy, cfg);

    let mut store = FailingStore::new(MemStore::new(), 7, 255, 0, 0);
    let run = sim.run_with_checkpoints(&placement, &knobs(10, 2), &mut store, &mut NoopRecorder);
    assert_eq!(run.saves, 0, "every save must have failed");
    assert!(!run.save_errors.is_empty());

    let err = sim
        .resume_with_checkpoints(&knobs(10, 2), store.inner_mut(), &mut NoopRecorder)
        .unwrap_err();
    match err {
        CheckpointError::NoUsableCheckpoint { discarded } => {
            assert!(!discarded.is_empty(), "torn files must be listed");
        }
        other => panic!("expected NoUsableCheckpoint, got {other}"),
    }
}
