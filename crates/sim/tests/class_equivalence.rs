//! Distributional-equivalence harness for [`RngLayout::ClassAggregated`]
//! (PR 6 tentpole): the class-aggregated layout replaces per-VM coin
//! flips with two binomial draws per (PM, class) cell, so it can never be
//! bit-identical to the `PerVm` oracle — the contract is *distributional*
//! (DESIGN.md §8). This harness pins each clause of that contract:
//!
//! 1. per-PM ON-count marginals follow the superposed chain's stationary
//!    law `Binomial(k, p_on/(p_on+p_off))` — a chi-square goodness-of-fit
//!    over the cell chain itself;
//! 2. the empirical CVR of exactly-tight PMs stays statistically
//!    consistent with the analytic `certified_cvr` (Wilson interval at
//!    the AR(1)-discounted effective sample size) — the same
//!    certification the `PerVm` oracle passes, run against both layouts
//!    side by side;
//! 3. integrated energy agrees with the oracle to within the long-run
//!    averaging noise;
//! 4. outcomes are `to_bits`-identical across thread counts (the layout
//!    is deterministic even though it is only distributionally faithful).

use bursty_obs::certify_cvr;
use bursty_placement::{first_fit, MappingTable, QueueStrategy};
use bursty_sim::rng::{class_cell_key, class_hash, keyed_binomial};
use bursty_sim::{FaultConfig, QueuePolicy, RngLayout, SimConfig, SimOutcome, Simulator};
use bursty_workload::{PmSpec, VmSpec};

const K: usize = 16;
const PMS: usize = 3;
const STEPS: usize = 40_000;
const P_ON: f64 = 0.01;
const P_OFF: f64 = 0.09;
const RHO: f64 = 0.05;
const CONF: f64 = 0.99;

/// Exactly-tight single-class fleet: every PM hosts `K` identical VMs on
/// a capacity admitting `r = mapping(K)` concurrent spikes with zero
/// slack, so a violation step is precisely "more than `r` VMs ON" — the
/// event `certified_cvr` computes. Identical VMs also mean the whole
/// fleet is ONE class: the layout under test collapses each PM to a
/// single binomial counter.
fn tight_fleet() -> (Vec<VmSpec>, Vec<PmSpec>, QueueStrategy, f64) {
    let mapping = MappingTable::build(K, P_ON, P_OFF, RHO);
    let r = mapping.blocks_for(K);
    let analytic = mapping.certified_cvr(K);
    assert!(analytic <= RHO + 1e-12, "MapCal bound broken analytically");
    let capacity = (K as f64) * 10.0 + (r as f64) * 10.0;
    let vms: Vec<VmSpec> = (0..K * PMS)
        .map(|i| VmSpec::new(i, P_ON, P_OFF, 10.0, 10.0))
        .collect();
    let pms: Vec<PmSpec> = (0..PMS).map(|j| PmSpec::new(j, capacity)).collect();
    let strategy = QueueStrategy::build(K, P_ON, P_OFF, RHO);
    (vms, pms, strategy, analytic)
}

fn run_layout(layout: RngLayout, threads: usize, seed: u64) -> SimOutcome {
    let (vms, pms, strategy, _) = tight_fleet();
    let placement = first_fit(&vms, &pms, &strategy).unwrap();
    let policy = QueuePolicy::new(strategy);
    let cfg = SimConfig {
        steps: STEPS,
        seed,
        migrations_enabled: false,
        rng_layout: layout,
        threads,
        ..Default::default()
    };
    Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
}

/// Certifies every PM's empirical CVR against the analytic bound, the
/// same check `cvr_certification.rs` applies to the other layouts.
fn certify_outcome(outcome: &SimOutcome, analytic: f64, label: &str) {
    let lag1 = (1.0 - P_ON - P_OFF).clamp(0.0, 0.999);
    assert_eq!(outcome.cvr_per_pm.len(), PMS, "{label}: all PMs active");
    for &(pm, cvr) in &outcome.cvr_per_pm {
        let violations = (cvr * STEPS as f64).round() as u64;
        let check = certify_cvr(pm, violations, STEPS as u64, analytic, CONF, lag1);
        assert!(check.consistent(), "{label}: {}", check.describe());
    }
}

#[test]
fn class_layout_certifies_the_analytic_cvr() {
    let (.., analytic) = tight_fleet();
    let outcome = run_layout(RngLayout::ClassAggregated, 1, 2013);
    certify_outcome(&outcome, analytic, "class-aggregated");
}

#[test]
fn class_layout_matches_the_pervm_oracle_distributionally() {
    // Same fleet, same seed, both layouts: each must certify against the
    // same analytic CVR, and long-run energy must agree to within the
    // averaging noise of a 40k-step run (the draws themselves differ —
    // the layouts share no sample paths).
    let (.., analytic) = tight_fleet();
    let oracle = run_layout(RngLayout::PerVm, 1, 2013);
    let class = run_layout(RngLayout::ClassAggregated, 1, 2013);
    certify_outcome(&oracle, analytic, "per-vm oracle");
    certify_outcome(&class, analytic, "class-aggregated");
    let rel = (class.energy_joules - oracle.energy_joules).abs() / oracle.energy_joules;
    assert!(
        rel < 0.02,
        "energy drift {rel:.4} (class {} vs oracle {})",
        class.energy_joules,
        oracle.energy_joules
    );
    assert_eq!(class.final_pms_used, oracle.final_pms_used);
}

#[test]
fn class_layout_on_count_marginal_passes_chi_square() {
    // Drive one (PM, class) cell chain directly — k chains superposed,
    // `n_on' = n_on − B(n_on, p_off) + B(n_off, p_on)` — and test its
    // stationary marginal against Binomial(k, π) with a chi-square
    // goodness-of-fit. Samples are taken every 10 steps so the AR(1)
    // correlation (lag-1 = 1 − p_on − p_off = 0.5 here) has decayed to
    // ~1e-3 and the counts are effectively independent.
    let (k, p_on, p_off) = (16u32, 0.3, 0.2);
    let pi = p_on / (p_on + p_off);
    let key = class_cell_key(7, 0, class_hash([1, 2, 3, 4]));
    let mut n_on = 0u32;
    let mut counts = vec![0u64; k as usize + 1];
    let (burn_in, thin, samples) = (500u64, 10u64, 4000u64);
    for step in 0..burn_in + thin * samples {
        let out = keyed_binomial(key, 2 * step, n_on, p_off);
        let inn = keyed_binomial(key, 2 * step + 1, k - n_on, p_on);
        n_on = n_on - out + inn;
        if step >= burn_in && (step - burn_in) % thin == thin - 1 {
            counts[n_on as usize] += 1;
        }
    }
    assert_eq!(counts.iter().sum::<u64>(), samples);

    // Binomial(k, π) pmf by the standard recurrence.
    let q = 1.0 - pi;
    let mut pmf = vec![q.powi(k as i32)];
    for j in 0..k {
        let last = *pmf.last().unwrap();
        pmf.push(last * (k - j) as f64 / (j + 1) as f64 * pi / q);
    }

    // Pool bins until every pooled cell expects ≥ 5 counts, then sum
    // (observed − expected)² / expected.
    let mut chi2 = 0.0;
    let mut df = 0usize;
    let (mut obs_pool, mut exp_pool) = (0.0f64, 0.0f64);
    for j in 0..=k as usize {
        obs_pool += counts[j] as f64;
        exp_pool += pmf[j] * samples as f64;
        if exp_pool >= 5.0 && j < k as usize {
            chi2 += (obs_pool - exp_pool).powi(2) / exp_pool;
            df += 1;
            obs_pool = 0.0;
            exp_pool = 0.0;
        }
    }
    if exp_pool > 0.0 {
        chi2 += (obs_pool - exp_pool).powi(2) / exp_pool;
        df += 1;
    }
    df -= 1;
    // 99.9% critical values for the df this pooling yields sit below 35;
    // a wrong marginal (e.g. the saturated-sampler bug class) lands in
    // the hundreds. The run is seeded, so this is a frozen regression
    // check, not a flaky statistical one.
    assert!(
        df >= 5,
        "pooling collapsed too far (df = {df}) — test lost its power"
    );
    assert!(chi2 < 35.0, "chi-square {chi2:.1} at {df} df");
}

#[test]
fn class_layout_outcome_is_thread_count_invariant() {
    // End-to-end determinism with churn in the counters: faults crash
    // PMs (cells merge into limbo), evacuations move VMs back out, and
    // migrations shuttle victims — all while worker threads split the
    // PM range. Outcomes must be identical at every thread count.
    // 1100 PMs spans three CLASS_PM_CHUNK chunks, so two workers really
    // do run concurrently.
    let m = 1100usize;
    let per_pm = 8usize;
    let vms: Vec<VmSpec> = (0..m * per_pm)
        .map(|i| match i % 3 {
            0 => VmSpec::new(i, 0.02, 0.08, 8.0, 12.0),
            1 => VmSpec::new(i, 0.05, 0.05, 4.0, 20.0),
            _ => VmSpec::new(i, 0.10, 0.02, 2.0, 6.0),
        })
        .collect();
    let pms: Vec<PmSpec> = (0..m).map(|j| PmSpec::new(j, 200.0)).collect();
    let strategy = QueueStrategy::build(per_pm, 0.05, 0.05, RHO);
    let placement = first_fit(&vms, &pms, &strategy).unwrap();
    let policy = QueuePolicy::new(strategy);
    let run = |threads: usize| {
        let cfg = SimConfig {
            steps: 1200,
            seed: 77,
            rng_layout: RngLayout::ClassAggregated,
            threads,
            faults: Some(FaultConfig {
                mtbf_steps: 200_000.0,
                ..Default::default()
            }),
            ..Default::default()
        };
        Simulator::new(&vms, &pms, &policy, cfg).run(&placement)
    };
    let base = run(1);
    assert!(
        !base.fault_events.is_empty(),
        "faults must fire for the invariance check to exercise crashes"
    );
    for threads in [2usize, 8] {
        let other = run(threads);
        assert_eq!(
            base.energy_joules.to_bits(),
            other.energy_joules.to_bits(),
            "energy diverged at {threads} threads"
        );
        assert_eq!(base.cvr_per_pm, other.cvr_per_pm);
        assert_eq!(base.total_violation_steps, other.total_violation_steps);
        assert_eq!(base.migrations.len(), other.migrations.len());
        assert_eq!(base.fault_events, other.fault_events);
        assert_eq!(base.final_pms_used, other.final_pms_used);
    }
}
