//! Statistical certification of MapCal's CVR guarantee (satellite of the
//! observability PR): pack exactly-tight PMs, run long-horizon
//! simulations, and assert that every PM's *empirical* capacity-violation
//! ratio is statistically consistent with the *analytic*
//! [`MappingTable::certified_cvr`] — a Wilson 99% interval around the
//! observed fraction, discounted to the AR(1) effective sample size,
//! must contain the analytic value.
//!
//! The construction makes the comparison exact rather than merely
//! bounded: every PM hosts `k` identical VMs (`R_b = R_e = 10`) on a
//! capacity of exactly `k·R_b + r·R_e` with `r = mapping(k)`, so a
//! violation step is precisely "more than `r` VMs ON" — the event whose
//! stationary probability `certified_cvr(k)` computes (Eq. 16).

use bursty_obs::{certify_cvr, MemoryRecorder};
use bursty_placement::{first_fit, MappingTable, QueueStrategy};
use bursty_sim::{QueuePolicy, SimConfig, Simulator};
use bursty_workload::{PmSpec, VmSpec};

const K: usize = 16;
const PMS: usize = 3;
const STEPS: usize = 40_000;
const CONF: f64 = 0.99;

/// Runs one grid cell and certifies every PM in it.
fn certify_cell(p_on: f64, p_off: f64, rho: f64, seed: u64) {
    let mapping = MappingTable::build(K, p_on, p_off, rho);
    let r = mapping.blocks_for(K);
    let analytic = mapping.certified_cvr(K);
    assert!(analytic <= rho + 1e-12, "MapCal bound broken analytically");

    // Exactly-tight PMs: Eq. 17 admits the k-th VM with zero slack, so
    // the engine's violation predicate (`observed > C + ε`) fires iff
    // more than `r` VMs are ON.
    let capacity = (K as f64) * 10.0 + (r as f64) * 10.0;
    let vms: Vec<VmSpec> = (0..K * PMS)
        .map(|i| VmSpec::new(i, p_on, p_off, 10.0, 10.0))
        .collect();
    let pms: Vec<PmSpec> = (0..PMS).map(|j| PmSpec::new(j, capacity)).collect();
    let strategy = QueueStrategy::build(K, p_on, p_off, rho);
    let placement = first_fit(&vms, &pms, &strategy).unwrap();
    for j in 0..PMS {
        assert_eq!(placement.vms_on(j).len(), K, "PM {j} must host exactly k");
    }

    let policy = QueuePolicy::new(strategy);
    let cfg = SimConfig {
        steps: STEPS,
        seed,
        migrations_enabled: false,
        ..Default::default()
    };
    let mut rec = MemoryRecorder::new(4096).with_cvr_sampling(1000);
    let outcome = Simulator::new(&vms, &pms, &policy, cfg).run_recorded(&placement, &mut rec);

    // Lag-1 autocorrelation of every VM's ON/OFF chain — and of the
    // aggregate ON-count the violation indicator thresholds.
    let lag1 = (1.0 - p_on - p_off).clamp(0.0, 0.999);
    for pm in 0..PMS {
        let (violations, active) = rec.cvr_series()[pm]
            .last_counts()
            .expect("sampled at least once");
        assert_eq!(active, STEPS as u64, "PM {pm} active every step");
        let check = certify_cvr(pm, violations, active, analytic, CONF, lag1);
        if !check.consistent() {
            let tail: String = rec
                .journal()
                .tail(15, Some(pm))
                .into_iter()
                .map(|e| e.to_json_line())
                .collect();
            panic!(
                "cell (p_on={p_on}, p_off={p_off}, rho={rho}, seed={seed}): {}\n\
                 event-journal tail for PM {pm}:\n{tail}",
                check.describe(),
            );
        }
    }
    // Cross-check against the engine's own CVR accounting.
    for &(pm, cvr) in &outcome.cvr_per_pm {
        let (violations, active) = rec.cvr_series()[pm].last_counts().unwrap();
        let empirical = violations as f64 / active as f64;
        assert!(
            (cvr - empirical).abs() < 1e-12,
            "recorder series and SimOutcome disagree on PM {pm}"
        );
    }
}

#[test]
fn paper_defaults_certify_at_one_percent() {
    certify_cell(0.01, 0.09, 0.01, 101);
}

#[test]
fn paper_defaults_certify_at_five_percent() {
    certify_cell(0.01, 0.09, 0.05, 102);
}

#[test]
fn faster_switching_certifies_at_one_percent() {
    certify_cell(0.02, 0.18, 0.01, 103);
}

#[test]
fn faster_switching_certifies_at_five_percent() {
    certify_cell(0.02, 0.18, 0.05, 104);
}

#[test]
fn hotter_vms_certify_at_one_percent() {
    certify_cell(0.05, 0.15, 0.01, 105);
}

#[test]
fn hotter_vms_certify_at_five_percent() {
    certify_cell(0.05, 0.15, 0.05, 106);
}
