//! Differential properties of the fault process: the incremental
//! [`FaultProcess::step`] replay, the batch [`FaultProcess::schedule`]
//! oracle, and the snapshot/restore seam must all describe the same
//! event stream. The engine consumes `step` online and the checkpoint
//! layer restores the process mid-chain, so any divergence between the
//! three would silently fork a resumed run's fault history.

use bursty_sim::{FaultConfig, FaultProcess};
use proptest::prelude::*;

fn any_config() -> impl Strategy<Value = FaultConfig> {
    (2u64..200, 1u64..50, 1usize..5, 0u64..1_000).prop_map(|(mtbf, mttr, group, seed)| {
        FaultConfig {
            mtbf_steps: mtbf as f64,
            mttr_steps: mttr as f64,
            correlated_group_size: group,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batch schedule is exactly the concatenated step replay —
    /// same events, same order, for any configuration and fleet size.
    #[test]
    fn schedule_equals_step_replay(cfg in any_config(), m in 1usize..40, steps in 1usize..300) {
        let oracle = FaultProcess::schedule(cfg, m, steps);
        let mut process = FaultProcess::new(cfg, m);
        let mut replay = Vec::new();
        for t in 0..steps {
            replay.extend(process.step(t));
        }
        prop_assert_eq!(replay, oracle);
    }

    /// Restoring from a mid-run snapshot continues the exact stream:
    /// run to a cut point, snapshot, rebuild, and the tail events match
    /// the uninterrupted schedule event for event. `is_up` must agree
    /// at the cut too — the engine reads it when deciding evacuations.
    #[test]
    fn restore_continues_the_exact_stream(
        cfg in any_config(),
        m in 1usize..30,
        cut in 1usize..150,
        tail in 1usize..150,
    ) {
        let steps = cut + tail;
        let oracle = FaultProcess::schedule(cfg, m, steps);

        let mut process = FaultProcess::new(cfg, m);
        let mut events = Vec::new();
        for t in 0..cut {
            events.extend(process.step(t));
        }
        let mut restored = FaultProcess::restore(
            cfg,
            m,
            process.rng_state(),
            process.domain_states().to_vec(),
        )
        .unwrap();
        for j in 0..m {
            prop_assert_eq!(restored.is_up(j), process.is_up(j), "PM {} at the cut", j);
        }
        for t in cut..steps {
            events.extend(restored.step(t));
        }
        prop_assert_eq!(events, oracle);
    }

    /// Every PM's up/down state is the fold of its crash/recovery
    /// events: replaying the schedule against a boolean per PM always
    /// reproduces `is_up`. Catches events emitted without a state
    /// change (or vice versa) for any correlated group size.
    #[test]
    fn is_up_is_the_fold_of_the_event_stream(
        cfg in any_config(),
        m in 1usize..30,
        steps in 1usize..200,
    ) {
        use bursty_sim::FaultKind;
        let mut process = FaultProcess::new(cfg, m);
        let mut up = vec![true; m];
        for t in 0..steps {
            for ev in process.step(t) {
                prop_assert_eq!(ev.step, t);
                match ev.kind {
                    FaultKind::Crash => {
                        prop_assert!(up[ev.pm], "crash of an already-down PM {}", ev.pm);
                        up[ev.pm] = false;
                    }
                    FaultKind::Recovery => {
                        prop_assert!(!up[ev.pm], "recovery of an up PM {}", ev.pm);
                        up[ev.pm] = true;
                    }
                }
            }
            for (j, &u) in up.iter().enumerate() {
                prop_assert_eq!(process.is_up(j), u, "PM {} state diverged at step {}", j, t);
            }
        }
    }
}
