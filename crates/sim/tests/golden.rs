//! Frozen-baseline differential test: with fault injection disabled (the
//! default), the simulator must reproduce the exact outcomes the engine
//! produced before the fault subsystem existed. The constants below were
//! captured from the pre-fault engine on these scenarios (both of which
//! finish with zero failed migrations, so the retry queue stays empty and
//! the fault-free path must be bit-for-bit unchanged); any drift in the
//! default configuration is a regression.

use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};
use bursty_sim::{ObservedPolicy, QueuePolicy, RecoveryStats, SimConfig, Simulator};
use bursty_workload::{PmSpec, VmSpec};

fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
    VmSpec::new(id, 0.01, 0.09, r_b, r_e)
}

fn farm(count: usize, cap: f64) -> Vec<PmSpec> {
    (0..count).map(|j| PmSpec::new(j, cap)).collect()
}

#[test]
fn rb_with_migrations_matches_pre_fault_engine_bit_for_bit() {
    let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
    let pms = farm(200, 100.0);
    let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 100,
        seed: 7,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);

    assert_eq!(out.total_migrations(), 18);
    assert_eq!(out.failed_migrations, 0);
    assert_eq!(out.final_pms_used, 8);
    assert_eq!(out.peak_pms_used, 8);
    assert_eq!(out.total_violation_steps, 53);
    assert_eq!(out.energy_joules.to_bits(), 4707864810224615424);
    assert_eq!(out.vm_violation_steps.iter().sum::<usize>(), 509);

    let first = out.migrations.first().unwrap();
    assert_eq!(
        (first.step, first.vm_id, first.from_pm, first.to_pm),
        (5, 26, 2, 6)
    );
    let last = out.migrations.last().unwrap();
    assert_eq!(
        (last.step, last.vm_id, last.from_pm, last.to_pm),
        (79, 6, 4, 6)
    );

    // The fault machinery must not have engaged at all.
    assert_eq!(out.retried_migrations, 0);
    assert!(out.fault_events.is_empty());
    assert!(out.evacuations.is_empty());
    assert_eq!(out.recovery, RecoveryStats::default());
}

#[test]
fn queue_without_migrations_matches_pre_fault_engine_bit_for_bit() {
    let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
    let pms = farm(48, 100.0);
    let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    let placement = first_fit(&vms, &pms, &strategy).unwrap();
    let policy = QueuePolicy::new(strategy);
    let cfg = SimConfig {
        steps: 5_000,
        seed: 1,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);

    assert_eq!(out.total_migrations(), 0);
    assert_eq!(out.failed_migrations, 0);
    assert_eq!(out.final_pms_used, 7);
    assert_eq!(out.peak_pms_used, 7);
    assert_eq!(out.total_violation_steps, 47);
    assert_eq!(out.energy_joules.to_bits(), 4732213460996194304);
    assert_eq!(out.mean_cvr().to_bits(), 4563835658409401586);

    assert_eq!(out.retried_migrations, 0);
    assert!(out.fault_events.is_empty());
    assert!(out.evacuations.is_empty());
    assert_eq!(out.recovery, RecoveryStats::default());
}
