//! Frozen-baseline differential tests.
//!
//! The first two pins freeze the fault-free engine: with fault injection
//! disabled (the default), the simulator must reproduce the exact
//! outcomes the engine produced before the fault subsystem existed. The
//! third pin freezes a faults-enabled run — captured from the engine as
//! it stood *before* the structure-of-arrays hot path landed — so both
//! the workload stream and the independent fault stream are locked.
//!
//! All three run under the default `RngLayout::Shared`, whose contract
//! (DESIGN.md §8) is bit-identity with the historical serial engine;
//! any drift in these constants is a regression, not a re-baseline.

use bursty_placement::{first_fit, BaseStrategy, QueueStrategy};
use bursty_sim::{
    FaultConfig, FaultKind, ObservedPolicy, QueuePolicy, RecoveryStats, SimConfig, Simulator,
};
use bursty_workload::{PmSpec, VmSpec};

fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
    VmSpec::new(id, 0.01, 0.09, r_b, r_e)
}

fn farm(count: usize, cap: f64) -> Vec<PmSpec> {
    (0..count).map(|j| PmSpec::new(j, cap)).collect()
}

#[test]
fn rb_with_migrations_matches_pre_fault_engine_bit_for_bit() {
    let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
    let pms = farm(200, 100.0);
    let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 100,
        seed: 7,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);

    assert_eq!(out.total_migrations(), 18);
    assert_eq!(out.failed_migrations, 0);
    assert_eq!(out.final_pms_used, 8);
    assert_eq!(out.peak_pms_used, 8);
    assert_eq!(out.total_violation_steps, 53);
    assert_eq!(out.energy_joules.to_bits(), 4707864810224615424);
    assert_eq!(out.vm_violation_steps.iter().sum::<usize>(), 509);

    let first = out.migrations.first().unwrap();
    assert_eq!(
        (first.step, first.vm_id, first.from_pm, first.to_pm),
        (5, 26, 2, 6)
    );
    let last = out.migrations.last().unwrap();
    assert_eq!(
        (last.step, last.vm_id, last.from_pm, last.to_pm),
        (79, 6, 4, 6)
    );

    // The fault machinery must not have engaged at all.
    assert_eq!(out.retried_migrations, 0);
    assert!(out.fault_events.is_empty());
    assert!(out.evacuations.is_empty());
    assert_eq!(out.recovery, RecoveryStats::default());
}

#[test]
fn rb_with_faults_matches_pre_soa_engine_bit_for_bit() {
    let vms: Vec<VmSpec> = (0..64).map(|i| vm(i, 10.0, 10.0)).collect();
    let pms = farm(200, 100.0);
    let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 400,
        seed: 7,
        faults: Some(FaultConfig {
            mtbf_steps: 150.0,
            mttr_steps: 25.0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);

    assert_eq!(out.total_migrations(), 76);
    assert_eq!(out.failed_migrations, 0);
    assert_eq!(out.retried_migrations, 0);
    assert_eq!(out.final_pms_used, 8);
    assert_eq!(out.peak_pms_used, 9);
    assert_eq!(out.total_violation_steps, 128);
    assert_eq!(out.energy_joules.to_bits(), 4716916140268322816);
    assert_eq!(out.vm_violation_steps.iter().sum::<usize>(), 1182);

    // Fault stream: crash/recovery counts and the exact first event.
    assert_eq!(out.recovery.crashes, 486);
    assert_eq!(out.recovery.recoveries, 460);
    assert_eq!(out.fault_events.len(), 946);
    assert_eq!(out.evacuations.len(), 137);
    assert_eq!(out.recovery.stranded_vm_steps, 0);
    assert_eq!(out.recovery.degraded_admissions, 0);
    assert_eq!(out.recovery.degraded_violation_steps, 0);
    assert_eq!(out.recovery.unrestored_crashes, 0);
    assert_eq!(out.recovery.time_to_restore, vec![0; 17]);

    let first = out.migrations.first().unwrap();
    assert_eq!(
        (first.step, first.vm_id, first.from_pm, first.to_pm),
        (5, 26, 2, 6)
    );
    let last = out.migrations.last().unwrap();
    assert_eq!(
        (last.step, last.vm_id, last.from_pm, last.to_pm),
        (396, 54, 3, 2)
    );
    let evac = out.evacuations.first().unwrap();
    assert_eq!(
        (
            evac.step,
            evac.vm_id,
            evac.from_pm,
            evac.to_pm,
            evac.degraded
        ),
        (47, 13, 5, Some(7), false)
    );
    let fault = out.fault_events.first().unwrap();
    assert_eq!(
        (fault.step, fault.pm, fault.kind),
        (0, 193, FaultKind::Crash)
    );
}

#[test]
fn queue_without_migrations_matches_pre_fault_engine_bit_for_bit() {
    let vms: Vec<VmSpec> = (0..48).map(|i| vm(i, 10.0, 10.0)).collect();
    let pms = farm(48, 100.0);
    let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    let placement = first_fit(&vms, &pms, &strategy).unwrap();
    let policy = QueuePolicy::new(strategy);
    let cfg = SimConfig {
        steps: 5_000,
        seed: 1,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);

    assert_eq!(out.total_migrations(), 0);
    assert_eq!(out.failed_migrations, 0);
    assert_eq!(out.final_pms_used, 7);
    assert_eq!(out.peak_pms_used, 7);
    assert_eq!(out.total_violation_steps, 47);
    assert_eq!(out.energy_joules.to_bits(), 4732213460996194304);
    assert_eq!(out.mean_cvr().to_bits(), 4563835658409401586);

    assert_eq!(out.retried_migrations, 0);
    assert!(out.fault_events.is_empty());
    assert!(out.evacuations.is_empty());
    assert_eq!(out.recovery, RecoveryStats::default());
}
