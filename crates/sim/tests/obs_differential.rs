//! Differential tests for the observability layer: attaching any
//! [`Recorder`](bursty_obs::Recorder) — including the fully active
//! [`MemoryRecorder`] with the event journal, histograms, step events and
//! CVR sampling all enabled — must leave every simulation outcome
//! `f64::to_bits`-identical to the uninstrumented run, under both RNG
//! layouts and at any thread count.
//!
//! `Simulator::run` *is* `run_recorded::<NoopRecorder>`, so these tests
//! pin the stronger claim: the live recorder observes the run without
//! perturbing it (no RNG draws, no reordering, no float arithmetic on
//! simulation state).

use bursty_obs::MemoryRecorder;
use bursty_placement::{first_fit, BaseStrategy};
use bursty_sim::{FaultConfig, ObservedPolicy, RngLayout, SimConfig, SimOutcome, Simulator};
use bursty_workload::{PmSpec, VmSpec};
use proptest::prelude::*;

fn fleet(n: usize) -> (Vec<VmSpec>, Vec<PmSpec>) {
    let vms = (0..n)
        .map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0))
        .collect();
    let pms = (0..4 * n).map(|j| PmSpec::new(j, 100.0)).collect();
    (vms, pms)
}

/// Field-by-field bit equality; `==` on floats would also accept
/// `-0.0 == 0.0`, which is exactly the kind of drift this suite exists
/// to catch.
fn assert_bit_identical(a: &SimOutcome, b: &SimOutcome, what: &str) {
    assert_eq!(a.cvr_per_pm.len(), b.cvr_per_pm.len(), "{what}: cvr len");
    for (x, y) in a.cvr_per_pm.iter().zip(&b.cvr_per_pm) {
        assert_eq!(x.0, y.0, "{what}: cvr pm index");
        assert_eq!(x.1.to_bits(), y.1.to_bits(), "{what}: cvr bits pm {}", x.0);
    }
    assert_eq!(a.migrations, b.migrations, "{what}: migrations");
    assert_eq!(a.failed_migrations, b.failed_migrations, "{what}");
    assert_eq!(a.retried_migrations, b.retried_migrations, "{what}");
    assert_eq!(a.final_pms_used, b.final_pms_used, "{what}");
    assert_eq!(a.peak_pms_used, b.peak_pms_used, "{what}");
    assert_eq!(a.total_violation_steps, b.total_violation_steps, "{what}");
    assert_eq!(a.vm_violation_steps, b.vm_violation_steps, "{what}");
    assert_eq!(
        a.energy_joules.to_bits(),
        b.energy_joules.to_bits(),
        "{what}: energy bits"
    );
    assert_eq!(a.fault_events, b.fault_events, "{what}: fault events");
    assert_eq!(a.evacuations, b.evacuations, "{what}: evacuations");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery stats");
    assert_eq!(
        a.pms_used_series.len(),
        b.pms_used_series.len(),
        "{what}: series len"
    );
    for ((t1, v1), (t2, v2)) in a.pms_used_series.points().zip(b.pms_used_series.points()) {
        assert_eq!(t1.to_bits(), t2.to_bits(), "{what}: series time bits");
        assert_eq!(v1.to_bits(), v2.to_bits(), "{what}: series value bits");
    }
}

/// A recorder with every optional feature switched on, so the
/// instrumented run exercises the journal, the histograms, per-step
/// events and periodic CVR sampling.
fn loud_recorder() -> MemoryRecorder {
    MemoryRecorder::new(4096)
        .with_cvr_sampling(7)
        .with_step_events()
}

fn config(steps: usize, seed: u64, faults: bool, layout: RngLayout, threads: usize) -> SimConfig {
    SimConfig {
        steps,
        seed,
        faults: faults.then(|| FaultConfig {
            mtbf_steps: 120.0,
            mttr_steps: 20.0,
            ..Default::default()
        }),
        rng_layout: layout,
        threads,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole invariant: a fully active MemoryRecorder never
    /// changes the outcome, for either RNG layout, at 1/2/8 threads,
    /// with and without fault injection.
    #[test]
    fn recorded_runs_are_bit_identical_to_plain_runs(
        n in 8usize..24,
        steps in 60usize..200,
        seed in 0u64..1_000,
        fault_bit in 0u8..2,
    ) {
        let faults = fault_bit == 1;
        let (vms, pms) = fleet(n);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        for layout in [RngLayout::Shared, RngLayout::PerVm] {
            for threads in [1usize, 2, 8] {
                let cfg = config(steps, seed, faults, layout, threads);
                let plain = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
                let mut rec = loud_recorder();
                let recorded = Simulator::new(&vms, &pms, &policy, cfg)
                    .run_recorded(&placement, &mut rec);
                assert_bit_identical(
                    &plain,
                    &recorded,
                    &format!("{layout:?}/{threads}t/faults={faults}"),
                );
            }
        }
    }

    /// Under the per-VM layout the recorder itself must be thread-count
    /// invariant: every recorder call sits in a serial engine section, so
    /// counters, journal contents and CVR samples match exactly.
    #[test]
    fn per_vm_recorder_state_is_thread_count_invariant(
        n in 8usize..20,
        steps in 60usize..160,
        seed in 0u64..1_000,
        fault_bit in 0u8..2,
    ) {
        let faults = fault_bit == 1;
        let (vms, pms) = fleet(n);
        let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
        let policy = ObservedPolicy::rb();
        let dump_at = |threads: usize| {
            let cfg = config(steps, seed, faults, RngLayout::PerVm, threads);
            let mut rec = loud_recorder();
            Simulator::new(&vms, &pms, &policy, cfg).run_recorded(&placement, &mut rec);
            rec.to_jsonl()
        };
        let one = dump_at(1);
        prop_assert_eq!(&one, &dump_at(2), "2 threads");
        prop_assert_eq!(&one, &dump_at(8), "8 threads");
    }
}

/// Deterministic pin of the same invariant on the golden faults
/// scenario, so a violation fails fast (and on every run) rather than
/// only under proptest's sampling.
#[test]
fn golden_faults_scenario_is_unperturbed_by_recording() {
    let (vms, pms) = fleet(64);
    let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 400,
        seed: 7,
        faults: Some(FaultConfig {
            mtbf_steps: 150.0,
            mttr_steps: 25.0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let plain = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
    let mut rec = loud_recorder();
    let recorded = Simulator::new(&vms, &pms, &policy, cfg).run_recorded(&placement, &mut rec);
    assert_bit_identical(&plain, &recorded, "golden faults");
    // And the recorder saw the run: the step counter matches exactly.
    use bursty_obs::Counter;
    assert_eq!(rec.counter(Counter::Steps), 400);
    assert_eq!(
        rec.counter(Counter::Crashes) as usize,
        plain.recovery.crashes
    );
    assert_eq!(
        rec.counter(Counter::Migrations) as usize,
        plain.total_migrations()
    );
}
