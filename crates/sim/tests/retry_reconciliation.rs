//! Retry-queue accounting reconciliation (satellite of the observability
//! PR): the journal-derived view of the retry queue — enqueues,
//! re-enqueues, abandons, cancellations, landings, end-of-run residue —
//! must reconcile *exactly* with the counters and with the engine's own
//! [`RecoveryStats`] / [`SimOutcome`] accounting. Any drift means an
//! instrumentation site was missed or double-counted.

use bursty_obs::{Counter, Event, MemoryRecorder, RetryCause};
use bursty_placement::{first_fit, BaseStrategy};
use bursty_sim::{FaultConfig, ObservedPolicy, SimConfig, SimOutcome, Simulator};
use bursty_workload::{PmSpec, VmSpec};

/// A pool with no spare headroom: 32 identical VMs base-fill 4 PMs
/// (10 + 10 + 10 + 2), so a crash displaces VMs into a pool that mostly
/// cannot take them and overload migrations usually find no target —
/// maximal retry-queue pressure on both the overload and the
/// evacuation causes.
fn tight_cluster() -> (Vec<VmSpec>, Vec<PmSpec>) {
    let vms = (0..32)
        .map(|i| VmSpec::new(i, 0.01, 0.09, 10.0, 10.0))
        .collect();
    let pms = (0..4).map(|j| PmSpec::new(j, 100.0)).collect();
    (vms, pms)
}

fn run_recorded(cfg: SimConfig) -> (SimOutcome, MemoryRecorder) {
    let (vms, pms) = tight_cluster();
    let placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let policy = ObservedPolicy::rb();
    let mut rec = MemoryRecorder::new(262_144);
    let out = Simulator::new(&vms, &pms, &policy, cfg).run_recorded(&placement, &mut rec);
    assert_eq!(rec.journal().dropped(), 0, "journal must hold the full run");
    (out, rec)
}

/// Journal-derived retry tallies.
#[derive(Default, Debug)]
struct JournalTally {
    initial_overload: u64,
    initial_evacuation: u64,
    reenqueues: u64,
    abandons: u64,
    cancels: u64,
    retried_landings: u64,
    unplaced_evacuations: u64,
}

fn tally(rec: &MemoryRecorder) -> JournalTally {
    let mut t = JournalTally::default();
    for e in rec.journal().iter() {
        match e {
            Event::RetryEnqueued {
                attempts, cause, ..
            } => match (attempts, cause) {
                (0, RetryCause::Overload) => t.initial_overload += 1,
                (0, RetryCause::Evacuation) => t.initial_evacuation += 1,
                _ => t.reenqueues += 1,
            },
            Event::RetryAbandoned { .. } => t.abandons += 1,
            Event::RetryCancelled { .. } => t.cancels += 1,
            Event::Migration { retried: true, .. } => t.retried_landings += 1,
            Event::Evacuation { to: None, .. } => t.unplaced_evacuations += 1,
            _ => {}
        }
    }
    t
}

#[test]
fn faulted_tight_pool_reconciles_journal_counters_and_recovery_stats() {
    let cfg = SimConfig {
        steps: 600,
        seed: 11,
        faults: Some(FaultConfig {
            mtbf_steps: 80.0,
            mttr_steps: 30.0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let (out, rec) = run_recorded(cfg);
    let t = tally(&rec);
    let c = |x| rec.counter(x);

    // The scenario actually exercises the queue on both causes.
    assert!(c(Counter::RetryEnqueued) > 0, "no retry pressure generated");
    assert!(
        t.initial_evacuation > 0,
        "no evacuation retries generated: {t:?}"
    );

    // Journal ↔ counters: every event class matches its counter exactly.
    assert_eq!(
        t.initial_overload + t.initial_evacuation,
        c(Counter::RetryEnqueued)
    );
    assert_eq!(t.reenqueues, c(Counter::RetryReenqueued));
    assert_eq!(t.abandons, c(Counter::RetryAbandoned));
    assert_eq!(t.cancels, c(Counter::RetryCancelled));
    assert_eq!(t.retried_landings, c(Counter::RetriedMigrations));
    assert_eq!(
        t.unplaced_evacuations,
        c(Counter::RetryEnqueued) - t.initial_overload
    );

    // Conservation: every initial enqueue terminates in exactly one of
    // landing, abandonment, cancellation, or end-of-run residue.
    assert_eq!(
        c(Counter::RetryEnqueued),
        c(Counter::RetryLandedOverload)
            + c(Counter::RetryLandedEvacuation)
            + c(Counter::RetryAbandoned)
            + c(Counter::RetryCancelled)
            + c(Counter::RetryResidualOverload)
            + c(Counter::RetryResidualEvacuation),
        "retry-queue conservation law broken: {t:?}"
    );

    // Counters ↔ the engine's own outcome accounting.
    assert_eq!(
        c(Counter::RetryLandedOverload) as usize,
        out.retried_migrations
    );
    assert_eq!(c(Counter::Migrations) as usize, out.total_migrations());
    assert_eq!(c(Counter::FailedMigrations) as usize, out.failed_migrations);
    assert_eq!(c(Counter::Crashes) as usize, out.recovery.crashes);
    assert_eq!(c(Counter::Recoveries) as usize, out.recovery.recoveries);
    assert_eq!(
        c(Counter::StrandedVmSteps) as usize,
        out.recovery.stranded_vm_steps
    );
    assert_eq!(
        c(Counter::EvacuationsDegraded) as usize,
        out.recovery.degraded_admissions
    );
    assert_eq!(
        c(Counter::ViolationSteps) as usize,
        out.total_violation_steps
    );
    assert_eq!(
        c(Counter::DegradedViolationSteps) as usize,
        out.recovery.degraded_violation_steps
    );

    // A failed trigger-time migration seeds an overload retry entry only
    // when the VM is not already queued, so the enqueues are bounded by
    // (not equal to) the failures.
    assert!(t.initial_overload <= c(Counter::FailedMigrations));
}

/// Journal-side lifecycle replay (the conservation law re-proven from
/// events alone, without trusting any counter): every retry entry's
/// history — open, back off, re-enqueue at the due step, then land,
/// abandon, cancel, or survive to the end of the run — must be fully
/// reconstructible from the journal, with the exponential-backoff law
/// `due = step + base·2^min(attempts, max_retries, 16)` holding on
/// every enqueue and abandonment firing at exactly `max_retries`
/// attempts.
#[test]
fn journal_replays_the_full_retry_lifecycle_per_vm() {
    use std::collections::HashMap;

    let cfg = SimConfig {
        steps: 600,
        seed: 11,
        faults: Some(FaultConfig {
            mtbf_steps: 80.0,
            mttr_steps: 30.0,
            ..Default::default()
        }),
        ..Default::default()
    };
    let (_, rec) = run_recorded(cfg);
    let base = cfg.retry_base_steps as u64;
    let max_retries = cfg.max_retries as u32;

    struct OpenEntry {
        cause: RetryCause,
        attempts: u32,
        due: u64,
    }
    let mut open: HashMap<usize, OpenEntry> = HashMap::new();
    let (mut opens, mut abandons) = (0u64, 0u64);
    for e in rec.journal().iter() {
        match *e {
            Event::RetryEnqueued {
                step,
                vm,
                cause,
                attempts,
                due_step,
            } => {
                let exp = attempts.min(max_retries).min(16);
                assert_eq!(
                    due_step,
                    step + (base << exp),
                    "backoff law broken for vm {vm} at step {step}"
                );
                match open.remove(&vm) {
                    None => {
                        assert_eq!(attempts, 0, "re-enqueue of vm {vm} without an open entry");
                        opens += 1;
                    }
                    Some(prev) => {
                        assert_eq!(attempts, prev.attempts + 1, "vm {vm} skipped an attempt");
                        assert_eq!(cause, prev.cause, "vm {vm} switched cause mid-flight");
                        assert_eq!(step, prev.due, "vm {vm} re-enqueued off its due step");
                    }
                }
                open.insert(
                    vm,
                    OpenEntry {
                        cause,
                        attempts,
                        due: due_step,
                    },
                );
            }
            Event::RetryAbandoned { step, vm, attempts } => {
                let prev = open
                    .remove(&vm)
                    .unwrap_or_else(|| panic!("abandon of vm {vm} without an open entry"));
                assert_eq!(
                    prev.cause,
                    RetryCause::Overload,
                    "evacuations never abandon"
                );
                assert_eq!(attempts, prev.attempts + 1);
                assert_eq!(attempts, max_retries, "abandoned before exhausting retries");
                assert_eq!(step, prev.due, "abandoned off the due step");
                abandons += 1;
            }
            Event::RetryCancelled { step, vm } => {
                let prev = open
                    .remove(&vm)
                    .unwrap_or_else(|| panic!("cancel of vm {vm} without an open entry"));
                assert_eq!(prev.cause, RetryCause::Overload, "evacuations never cancel");
                // Due-time cancels fire at the due step; crash-time
                // cancels (the evacuation path taking over) fire early.
                assert!(step <= prev.due, "cancel after the due step");
            }
            Event::Migration {
                step,
                vm,
                retried: true,
                ..
            } => {
                let prev = open
                    .remove(&vm)
                    .unwrap_or_else(|| panic!("retried landing of vm {vm} without an entry"));
                assert_eq!(prev.cause, RetryCause::Overload);
                assert_eq!(step, prev.due, "retried landing off the due step");
            }
            // Closes an evacuation retry only when one is due now;
            // crash-step placements never have an open entry.
            Event::Evacuation {
                step,
                vm,
                to: Some(_),
                ..
            } if open
                .get(&vm)
                .is_some_and(|p| p.cause == RetryCause::Evacuation && p.due == step) =>
            {
                open.remove(&vm);
            }
            _ => {}
        }
    }

    // The fold's terminal states reconcile with the counters: entries
    // opened, abandoned, and left open at the end of the run.
    assert!(opens > 0, "scenario generated no retry traffic");
    assert_eq!(opens, rec.counter(Counter::RetryEnqueued));
    assert_eq!(abandons, rec.counter(Counter::RetryAbandoned));
    assert_eq!(
        open.len() as u64,
        rec.counter(Counter::RetryResidualOverload) + rec.counter(Counter::RetryResidualEvacuation),
        "journal-derived residue disagrees with the end-of-run flush"
    );
}

#[test]
fn fault_free_run_keeps_every_retry_counter_at_zero() {
    let cfg = SimConfig {
        steps: 400,
        seed: 5,
        ..Default::default()
    };
    let (out, rec) = run_recorded(cfg);
    for counter in [
        Counter::RetryLandedEvacuation,
        Counter::RetryResidualEvacuation,
        Counter::Crashes,
        Counter::Recoveries,
        Counter::StrandedVmSteps,
        Counter::DisplacedVms,
        Counter::EvacuationsPlaced,
        Counter::EvacuationsDegraded,
    ] {
        assert_eq!(rec.counter(counter), 0, "{counter:?}");
    }
    // Overload retries still occur (tight pool, migrations enabled) and
    // may re-enqueue or abandon; they must reconcile without the fault
    // machinery.
    let t = tally(&rec);
    assert_eq!(t.initial_evacuation, 0);
    assert_eq!(t.initial_overload, rec.counter(Counter::RetryEnqueued));
    assert_eq!(
        rec.counter(Counter::RetryEnqueued),
        rec.counter(Counter::RetryLandedOverload)
            + rec.counter(Counter::RetryAbandoned)
            + rec.counter(Counter::RetryCancelled)
            + rec.counter(Counter::RetryResidualOverload)
    );
    assert_eq!(
        rec.counter(Counter::RetryLandedOverload) as usize,
        out.retried_migrations
    );
}
