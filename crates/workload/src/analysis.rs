//! Burstiness analysis of demand traces.
//!
//! The related work the paper builds on (Mi et al., Casale et al.)
//! characterizes burstiness with a handful of standard statistics. This
//! module implements them so traces — measured or generated — can be
//! compared quantitatively: sample autocorrelation, the index of
//! dispersion for counts, burst-run statistics, and a composite
//! "burstiness profile".

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample (population) variance.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Sample autocorrelation at `lag` (0 for degenerate inputs).
///
/// For an ON-OFF chain this should approach `(1 − p_on − p_off)^lag`
/// (see [`crate::spec::VmSpec::chain`] and `OnOffChain::autocorrelation`).
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if xs.len() <= lag || lag == 0 && xs.len() < 2 {
        return if lag == 0 { 1.0 } else { 0.0 };
    }
    let m = mean(xs);
    let var = variance(xs);
    if var == 0.0 {
        return 0.0;
    }
    let cov = xs
        .windows(lag + 1)
        .map(|w| (w[0] - m) * (w[lag] - m))
        .sum::<f64>()
        / (xs.len() - lag) as f64;
    cov / var
}

/// Index of dispersion for counts at window size `w`:
/// `IDC(w) = Var[S_w] / E[S_w]` where `S_w` sums `w` consecutive samples.
///
/// For i.i.d. samples IDC is flat in `w`; positive temporal correlation —
/// burstiness — makes it grow with `w`. Mi et al. use exactly this
/// signature to verify injected burstiness.
pub fn index_of_dispersion(xs: &[f64], window: usize) -> f64 {
    assert!(window > 0, "window must be positive");
    if xs.len() < 2 * window {
        return f64::NAN;
    }
    let sums: Vec<f64> = xs.chunks_exact(window).map(|c| c.iter().sum()).collect();
    let m = mean(&sums);
    if m == 0.0 {
        return 0.0;
    }
    variance(&sums) / m
}

/// Run statistics of a boolean (ON/OFF) sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunStats {
    /// Number of maximal ON runs (spikes).
    pub runs: usize,
    /// Mean ON-run length (0 when there are no runs).
    pub mean_length: f64,
    /// Longest ON run.
    pub max_length: usize,
}

/// Computes ON-run statistics for a state sequence.
pub fn run_stats(on: &[bool]) -> RunStats {
    let (mut runs, mut total, mut max_len) = (0usize, 0usize, 0usize);
    let mut current = 0usize;
    for &s in on {
        if s {
            if current == 0 {
                runs += 1;
            }
            current += 1;
            total += 1;
            max_len = max_len.max(current);
        } else {
            current = 0;
        }
    }
    RunStats {
        runs,
        mean_length: if runs == 0 {
            0.0
        } else {
            total as f64 / runs as f64
        },
        max_length: max_len,
    }
}

/// A composite burstiness profile of a demand trace.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstinessProfile {
    /// Lag-1 autocorrelation of the demand series.
    pub acf1: f64,
    /// IDC at a moderate window (16 samples).
    pub idc16: f64,
    /// Peak-to-mean demand ratio.
    pub peak_to_mean: f64,
    /// Fraction of samples above the midpoint threshold.
    pub on_fraction: f64,
    /// ON-run statistics at the midpoint threshold.
    pub runs: RunStats,
}

/// Profiles a demand trace. Returns `None` for traces shorter than 32
/// samples (IDC would be meaningless).
pub fn profile(demands: &[f64]) -> Option<BurstinessProfile> {
    if demands.len() < 32 {
        return None;
    }
    let lo = demands.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = demands.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let threshold = (lo + hi) / 2.0;
    let on: Vec<bool> = demands.iter().map(|&d| d > threshold).collect();
    let m = mean(demands);
    Some(BurstinessProfile {
        acf1: autocorrelation(demands, 1),
        idc16: index_of_dispersion(demands, 16),
        peak_to_mean: if m > 0.0 { hi / m } else { 0.0 },
        on_fraction: on.iter().filter(|&&s| s).count() as f64 / on.len() as f64,
        runs: run_stats(&on),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::VmSpec;
    use crate::trace::DemandTrace;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        assert_eq!(autocorrelation(&[4.0; 100], 1), 0.0);
    }

    #[test]
    fn autocorrelation_of_alternating_is_negative() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        assert!(autocorrelation(&xs, 1) < -0.9);
    }

    #[test]
    fn onoff_trace_acf_matches_theory() {
        let vm = VmSpec::new(0, 0.01, 0.09, 10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        let tr = DemandTrace::sample(vm, 400_000, &mut rng);
        let demands = tr.demands();
        for lag in [1usize, 2, 5] {
            let theory = vm.chain().autocorrelation(lag as u32);
            let sample = autocorrelation(&demands, lag);
            assert!(
                (sample - theory).abs() < 0.01,
                "lag {lag}: {sample:.4} vs {theory:.4}"
            );
        }
    }

    #[test]
    fn idc_grows_with_window_for_bursty_series_only() {
        // Bursty ON-OFF trace: IDC(64) >> IDC(1)-scale.
        let vm = VmSpec::new(0, 0.01, 0.09, 10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(6);
        let bursty = DemandTrace::sample(vm, 200_000, &mut rng).demands();
        let idc_small = index_of_dispersion(&bursty, 2);
        let idc_large = index_of_dispersion(&bursty, 64);
        assert!(
            idc_large > 3.0 * idc_small,
            "bursty: IDC(64)={idc_large:.2} vs IDC(2)={idc_small:.2}"
        );

        // An i.i.d. series with the same marginal: IDC roughly flat.
        let iid: Vec<f64> = (0..200_000)
            .map(|_| if rng.gen::<f64>() < 0.1 { 20.0 } else { 10.0 })
            .collect();
        let flat_small = index_of_dispersion(&iid, 2);
        let flat_large = index_of_dispersion(&iid, 64);
        assert!(
            flat_large < 2.0 * flat_small.max(0.5),
            "iid: IDC(64)={flat_large:.2} vs IDC(2)={flat_small:.2}"
        );
    }

    #[test]
    fn idc_of_short_series_is_nan() {
        assert!(index_of_dispersion(&[1.0; 10], 8).is_nan());
    }

    #[test]
    fn run_stats_counts_runs() {
        let on = [false, true, true, false, true, false, true, true, true];
        let rs = run_stats(&on);
        assert_eq!(rs.runs, 3);
        assert_eq!(rs.max_length, 3);
        assert!((rs.mean_length - 2.0).abs() < 1e-12);
    }

    #[test]
    fn run_stats_empty_and_all_off() {
        assert_eq!(
            run_stats(&[]),
            RunStats {
                runs: 0,
                mean_length: 0.0,
                max_length: 0
            }
        );
        assert_eq!(
            run_stats(&[false; 10]),
            RunStats {
                runs: 0,
                mean_length: 0.0,
                max_length: 0
            }
        );
    }

    #[test]
    fn profile_distinguishes_bursty_from_smooth() {
        let vm = VmSpec::new(0, 0.01, 0.09, 10.0, 10.0);
        let mut rng = StdRng::seed_from_u64(7);
        let bursty = profile(&DemandTrace::sample(vm, 100_000, &mut rng).demands()).unwrap();
        assert!(bursty.acf1 > 0.8, "acf1 {}", bursty.acf1);
        assert!((bursty.peak_to_mean - 20.0 / 11.0).abs() < 0.1);
        assert!((bursty.runs.mean_length - 1.0 / 0.09).abs() < 1.5);

        let smooth: Vec<f64> = (0..100_000)
            .map(|_| if rng.gen::<f64>() < 0.1 { 20.0 } else { 10.0 })
            .collect();
        let smooth_profile = profile(&smooth).unwrap();
        assert!(smooth_profile.acf1.abs() < 0.05);
        // Same marginal statistics, utterly different temporal structure —
        // the reason the paper's Markov model beats i.i.d. SBP models.
        assert!((smooth_profile.on_fraction - bursty.on_fraction).abs() < 0.01);
    }

    #[test]
    fn profile_rejects_short_traces() {
        assert!(profile(&[1.0; 31]).is_none());
        assert!(profile(&[1.0; 32]).is_some());
    }
}
