//! Equivalence classes of VM specifications.
//!
//! The paper's admission test (Eq. 17) depends on a VM only through its
//! four-tuple `(p_on, p_off, R_b, R_e)` — two VMs with identical tuples are
//! interchangeable everywhere in the consolidation pipeline. Production
//! fleets are built from a handful of instance types (Table I has seven
//! rows), so a million-VM input typically collapses to a few dozen
//! classes. This module extracts that structure:
//!
//! * [`VmClass`] — the tuple itself, hashable by exact bit pattern (no
//!   tolerance matching: only bit-identical specs are interchangeable
//!   under bit-identical arithmetic).
//! * [`class_runs`] — run-length-encodes a placement *order* into maximal
//!   runs of consecutive same-class VMs, preserving the order exactly (the
//!   paper's cluster-by-`R_e` / sort-by-`R_b` order puts same-class VMs
//!   next to each other, so the encoding is near-perfect there, but any
//!   order is legal — runs just get shorter).
//! * [`collapse`] — exact-key dedup into `(VmClass, count)` pairs in
//!   first-appearance order, for collapse-factor decisions and reporting.

use crate::spec::VmSpec;
use std::collections::HashMap;

/// An equivalence class of VMs: the spec four-tuple without the id.
/// Equality and hashing use the exact bit patterns of the four fields, so
/// two classes compare equal exactly when every packing/admission
/// computation treats their members identically.
#[derive(Debug, Clone, Copy)]
pub struct VmClass {
    /// OFF→ON switch probability.
    pub p_on: f64,
    /// ON→OFF switch probability.
    pub p_off: f64,
    /// Normal-level (base) demand `R_b`.
    pub r_b: f64,
    /// Spike size `R_e`.
    pub r_e: f64,
}

impl VmClass {
    /// The class of a VM.
    #[inline]
    pub fn of(vm: &VmSpec) -> Self {
        Self {
            p_on: vm.p_on,
            p_off: vm.p_off,
            r_b: vm.r_b,
            r_e: vm.r_e,
        }
    }

    /// The exact dedup key: bit patterns of the four fields.
    #[inline]
    pub fn key(&self) -> [u64; 4] {
        [
            self.p_on.to_bits(),
            self.p_off.to_bits(),
            self.r_b.to_bits(),
            self.r_e.to_bits(),
        ]
    }

    /// Whether `vm` belongs to this class (bit-exact).
    #[inline]
    pub fn matches(&self, vm: &VmSpec) -> bool {
        self.key() == Self::of(vm).key()
    }
}

impl PartialEq for VmClass {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for VmClass {}

impl std::hash::Hash for VmClass {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

/// A maximal run of consecutive same-class VMs inside a placement order:
/// positions `start .. start + len` of the order slice all hold VMs of
/// `class`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassRun {
    /// The shared spec tuple of every VM in the run.
    pub class: VmClass,
    /// First position in the *order* slice (not a VM index).
    pub start: usize,
    /// Number of consecutive same-class positions.
    pub len: usize,
}

/// Run-length-encodes `order` (a permutation of VM indices, e.g. the
/// output of a packing strategy's ordering) into maximal [`ClassRun`]s.
/// Concatenating the runs reproduces `order` exactly, so a packer that
/// processes runs left to right visits VMs in the same sequence a per-VM
/// packer would.
pub fn class_runs(vms: &[VmSpec], order: &[usize]) -> Vec<ClassRun> {
    let mut runs: Vec<ClassRun> = Vec::new();
    for (pos, &i) in order.iter().enumerate() {
        let class = VmClass::of(&vms[i]);
        match runs.last_mut() {
            Some(run) if run.class == class => run.len += 1,
            _ => runs.push(ClassRun {
                class,
                start: pos,
                len: 1,
            }),
        }
    }
    runs
}

/// Exact-key dedup of a fleet into `(VmClass, count)` pairs, ordered by
/// first appearance in `vms`.
pub fn collapse(vms: &[VmSpec]) -> Vec<(VmClass, usize)> {
    let mut slot: HashMap<[u64; 4], usize> = HashMap::with_capacity(vms.len().min(1024));
    let mut pairs: Vec<(VmClass, usize)> = Vec::new();
    for vm in vms {
        let class = VmClass::of(vm);
        match slot.get(&class.key()) {
            Some(&at) => pairs[at].1 += 1,
            None => {
                slot.insert(class.key(), pairs.len());
                pairs.push((class, 1));
            }
        }
    }
    pairs
}

/// Number of distinct classes in the fleet (the length of [`collapse`]
/// without materializing the pairs).
pub fn distinct_classes(vms: &[VmSpec]) -> usize {
    let mut keys: HashMap<[u64; 4], ()> = HashMap::with_capacity(vms.len().min(1024));
    for vm in vms {
        keys.insert(VmClass::of(vm).key(), ());
    }
    keys.len()
}

/// Collapse factor `n / distinct_classes` — how many VMs the average class
/// absorbs (1.0 for an all-distinct fleet, `n` for a single-class one).
/// Empty fleets report 1.0.
pub fn collapse_factor(vms: &[VmSpec]) -> f64 {
    if vms.is_empty() {
        return 1.0;
    }
    vms.len() as f64 / distinct_classes(vms) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(id: usize, r_b: f64, r_e: f64) -> VmSpec {
        VmSpec::new(id, 0.01, 0.09, r_b, r_e)
    }

    #[test]
    fn class_equality_is_bit_exact() {
        let a = VmClass::of(&vm(0, 5.0, 2.0));
        let b = VmClass::of(&vm(9, 5.0, 2.0));
        let c = VmClass::of(&vm(1, 5.0, 2.0 + 1e-12));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.matches(&vm(3, 5.0, 2.0)));
        assert!(!a.matches(&vm(3, 5.0, 2.5)));
    }

    #[test]
    fn probabilities_are_part_of_the_key() {
        let a = VmClass::of(&VmSpec::new(0, 0.01, 0.09, 5.0, 2.0));
        let b = VmClass::of(&VmSpec::new(0, 0.02, 0.09, 5.0, 2.0));
        assert_ne!(a, b);
    }

    #[test]
    fn runs_cover_the_order_exactly() {
        let vms = vec![vm(0, 5.0, 2.0), vm(1, 5.0, 2.0), vm(2, 3.0, 2.0)];
        let order = [2, 0, 1];
        let runs = class_runs(&vms, &order);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].start, runs[0].len), (0, 1));
        assert_eq!((runs[1].start, runs[1].len), (1, 2));
        assert!(runs[1].class.matches(&vms[0]));
        let total: usize = runs.iter().map(|r| r.len).sum();
        assert_eq!(total, order.len());
    }

    #[test]
    fn interleaved_classes_split_runs() {
        // Same class at positions 0 and 2 with a different class between:
        // three runs, not two.
        let vms = vec![vm(0, 5.0, 2.0), vm(1, 4.0, 2.0), vm(2, 5.0, 2.0)];
        let runs = class_runs(&vms, &[0, 1, 2]);
        assert_eq!(runs.len(), 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(class_runs(&[], &[]).is_empty());
        assert!(collapse(&[]).is_empty());
        assert_eq!(distinct_classes(&[]), 0);
        assert_eq!(collapse_factor(&[]), 1.0);
    }

    #[test]
    fn collapse_counts_and_orders_by_first_appearance() {
        let vms = vec![
            vm(0, 5.0, 2.0),
            vm(1, 3.0, 1.0),
            vm(2, 5.0, 2.0),
            vm(3, 5.0, 2.0),
        ];
        let pairs = collapse(&vms);
        assert_eq!(pairs.len(), 2);
        assert!(pairs[0].0.matches(&vms[0]));
        assert_eq!(pairs[0].1, 3);
        assert!(pairs[1].0.matches(&vms[1]));
        assert_eq!(pairs[1].1, 1);
        assert_eq!(distinct_classes(&vms), 2);
        assert_eq!(collapse_factor(&vms), 2.0);
    }

    #[test]
    fn table_i_fleet_collapses_hard() {
        use crate::fleet::FleetGenerator;
        use crate::patterns::WorkloadPattern;
        let mut g = FleetGenerator::new(5);
        let vms = g.vms_table_i(1000, WorkloadPattern::EqualSpike);
        // Equal-spike Table I has three rows: (S,S), (M,M), (L,L).
        assert_eq!(distinct_classes(&vms), 3);
        let pairs = collapse(&vms);
        assert_eq!(pairs.iter().map(|&(_, c)| c).sum::<usize>(), 1000);
    }
}
