//! Production-style traces: diurnal base load plus ON-OFF bursts.
//!
//! The ON-OFF model captures bursts but real services also breathe daily.
//! This generator superimposes the two — a sinusoidal day/night base level
//! with ON-OFF spikes on top — producing traces that *violate* the
//! two-level model's assumptions. The test suite uses them to probe how
//! the fitting pipeline degrades under model mismatch (answer: the fitted
//! `R_b` lands mid-swing and the fitted spike inflates to cover the
//! diurnal crest, which is conservative — violations are over- not
//! under-estimated when the planner consumes the fit).

use crate::spec::VmSpec;
use bursty_markov::{OnOffChain, VmState};
use rand::Rng;

/// Parameters of a diurnal + bursty trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalSpec {
    /// Mean base demand (the sinusoid's midline).
    pub base_mean: f64,
    /// Peak-to-midline amplitude of the daily swing.
    pub amplitude: f64,
    /// Period of the swing in steps (e.g. 2880 × 30 s = one day).
    pub period_steps: f64,
    /// Spike size added while the ON-OFF chain is ON.
    pub spike: f64,
    /// The burst chain.
    pub chain: OnOffChain,
}

impl DiurnalSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics if the base can go non-positive (`amplitude ≥ base_mean`),
    /// the period is non-positive, or the spike is negative.
    pub fn new(
        base_mean: f64,
        amplitude: f64,
        period_steps: f64,
        spike: f64,
        chain: OnOffChain,
    ) -> Self {
        assert!(base_mean > 0.0, "base must be positive");
        assert!(
            amplitude >= 0.0 && amplitude < base_mean,
            "amplitude must be in [0, base_mean)"
        );
        assert!(period_steps > 0.0, "period must be positive");
        assert!(spike >= 0.0, "spike must be nonnegative");
        Self {
            base_mean,
            amplitude,
            period_steps,
            spike,
            chain,
        }
    }

    /// The deterministic diurnal base level at step `t`.
    pub fn base_at(&self, t: usize) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t as f64 / self.period_steps;
        self.base_mean + self.amplitude * phase.sin()
    }

    /// Samples a `len`-step demand trace starting OFF at phase 0.
    pub fn sample<R: Rng + ?Sized>(&self, len: usize, rng: &mut R) -> Vec<f64> {
        let mut out = Vec::with_capacity(len);
        let mut state = VmState::Off;
        for t in 0..len {
            let demand = self.base_at(t) + if state.is_on() { self.spike } else { 0.0 };
            out.push(demand);
            state = self.chain.step(state, rng);
        }
        out
    }

    /// The *worst-case* two-level envelope of this workload: base at the
    /// crest, spike on top — what a conservative planner should assume.
    pub fn envelope(&self, id: usize) -> VmSpec {
        VmSpec::new(
            id,
            self.chain.p_on(),
            self.chain.p_off(),
            self.base_mean + self.amplitude,
            self.spike,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fitting::fit_trace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn spec() -> DiurnalSpec {
        DiurnalSpec::new(10.0, 3.0, 2880.0, 12.0, OnOffChain::new(0.01, 0.09))
    }

    #[test]
    fn base_oscillates_within_bounds() {
        let s = spec();
        for t in 0..6000 {
            let b = s.base_at(t);
            assert!((7.0..=13.0).contains(&b), "t={t}: {b}");
        }
        // Hits (near) both extremes across a period.
        let values: Vec<f64> = (0..2880).map(|t| s.base_at(t)).collect();
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max > 12.9 && min < 7.1);
    }

    #[test]
    fn sampled_trace_mixes_both_signals() {
        let s = spec();
        let mut rng = StdRng::seed_from_u64(1);
        let trace = s.sample(20_000, &mut rng);
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        let min = trace.iter().cloned().fold(f64::MAX, f64::min);
        // Peak ≈ crest + spike = 13 + 12 = 25; trough ≈ 7.
        assert!(max > 22.0, "max {max}");
        assert!(min < 7.5, "min {min}");
    }

    #[test]
    fn fit_under_model_mismatch_is_conservative() {
        // The two-level fit of a diurnal+burst trace must cover the true
        // burst: the midpoint threshold puts the diurnal crest partly in
        // the "ON" class, inflating R_e. What matters for the guarantee
        // is that the fitted envelope (r_b + r_e) is not *below* the
        // typical peak demand.
        let s = spec();
        let mut rng = StdRng::seed_from_u64(2);
        let trace = s.sample(50_000, &mut rng);
        let fit = fit_trace(&trace).unwrap();
        // Fitted peak envelope covers the crest-plus-spike minus slack.
        assert!(
            fit.r_b + fit.r_e >= 0.8 * (13.0 + 12.0),
            "fitted envelope {} too small",
            fit.r_b + fit.r_e
        );
        // And R_b does not overstate the trough (packing stays feasible).
        assert!(fit.r_b >= 7.0 && fit.r_b <= 14.5, "fitted R_b {}", fit.r_b);
    }

    #[test]
    fn envelope_spec_dominates_every_sample() {
        let s = spec();
        let env = s.envelope(0);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = s.sample(30_000, &mut rng);
        let max = trace.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            env.r_p() >= max - 1e-9,
            "envelope {} vs max {max}",
            env.r_p()
        );
    }

    #[test]
    fn pure_sinusoid_when_spike_is_zero() {
        let s = DiurnalSpec::new(10.0, 2.0, 100.0, 0.0, OnOffChain::new(0.01, 0.09));
        let mut rng = StdRng::seed_from_u64(4);
        let trace = s.sample(200, &mut rng);
        for (t, &d) in trace.iter().enumerate() {
            assert!((d - s.base_at(t)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn rejects_amplitude_swallowing_base() {
        let _ = DiurnalSpec::new(10.0, 10.0, 100.0, 1.0, OnOffChain::new(0.1, 0.1));
    }
}
