//! Fitting the ON-OFF model to observed demand traces.
//!
//! The paper assumes every VM's `(p_on, p_off, R_b, R_e)` is known. In
//! production the operator has *traces* — per-interval demand samples from
//! a monitor. This module closes that gap: it classifies each sample as
//! ON/OFF and estimates the four-tuple by maximum likelihood on the
//! two-state chain (transition counts), giving the consolidation pipeline
//! a data-driven entry point.

use crate::spec::VmSpec;
use std::fmt;

/// Why a trace could not be fitted.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Fewer than two samples — no transition information at all.
    TooShort { len: usize },
    /// The trace never leaves one state (constant demand, or the split
    /// threshold classifies every sample identically): the switch
    /// probabilities are unidentifiable.
    NoTransitions,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::TooShort { len } => {
                write!(f, "trace has {len} samples; at least 2 are required")
            }
            FitError::NoTransitions => {
                write!(
                    f,
                    "trace shows no ON/OFF transitions; model is unidentifiable"
                )
            }
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted ON-OFF model plus fit diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedModel {
    /// Estimated OFF→ON switch probability (MLE: ON-entries / OFF-steps).
    pub p_on: f64,
    /// Estimated ON→OFF switch probability.
    pub p_off: f64,
    /// Estimated normal-level demand (mean of OFF-classified samples).
    pub r_b: f64,
    /// Estimated spike size: the ON-demand *envelope* above the normal
    /// level (max ON demand − mean OFF demand). The maximum rather than
    /// the ON mean, because the planner's CVR guarantee needs the fitted
    /// peak `R_b + R_e` to dominate the demand actually observed while
    /// ON; a mean-based spike under-reserves whenever the trace violates
    /// the two-level assumption (e.g. a diurnal base under the bursts).
    /// For genuinely two-level traces the two estimators coincide.
    pub r_e: f64,
    /// The demand threshold used to classify ON vs OFF.
    pub threshold: f64,
    /// Number of OFF→ON transitions observed.
    pub on_entries: usize,
    /// Number of ON→OFF transitions observed.
    pub off_entries: usize,
    /// Fraction of samples classified ON.
    pub on_fraction: f64,
}

impl FittedModel {
    /// Converts the fit into a [`VmSpec`] with the given id.
    ///
    /// Degenerate estimates are nudged into the spec's valid domain:
    /// probabilities are clamped to `(0, 1]` (a state that was never left
    /// gets the smallest resolvable rate, one event per trace length).
    pub fn to_spec(&self, id: usize, trace_len: usize) -> VmSpec {
        let floor = 1.0 / trace_len.max(2) as f64;
        VmSpec::new(
            id,
            self.p_on.clamp(floor, 1.0),
            self.p_off.clamp(floor, 1.0),
            self.r_b.max(f64::MIN_POSITIVE),
            self.r_e.max(0.0),
        )
    }
}

/// Fits the two-state model to a demand trace.
///
/// Classification threshold: midpoint between the trace's minimum and
/// maximum demand — correct for genuinely two-level traces (the model's
/// own output) and a robust default for noisy ones. Use
/// [`fit_trace_with_threshold`] to override.
///
/// # Examples
/// ```
/// use bursty_workload::fit_trace;
///
/// // A hand-made two-level trace: base 10, one 3-step spike to 25.
/// let demands = [10.0, 10.0, 10.0, 25.0, 25.0, 25.0, 10.0, 10.0];
/// let fit = fit_trace(&demands).unwrap();
/// assert_eq!(fit.r_b, 10.0);
/// assert_eq!(fit.r_e, 15.0);
/// assert_eq!(fit.on_entries, 1); // one spike observed
/// ```
///
/// # Errors
/// [`FitError`] for traces too short or without transitions.
pub fn fit_trace(demands: &[f64]) -> Result<FittedModel, FitError> {
    if demands.len() < 2 {
        return Err(FitError::TooShort { len: demands.len() });
    }
    let lo = demands.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = demands.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    fit_trace_with_threshold(demands, (lo + hi) / 2.0)
}

/// Fits with an explicit ON/OFF classification threshold (a sample is ON
/// when `demand > threshold`).
///
/// # Errors
/// [`FitError`] for traces too short or without transitions.
pub fn fit_trace_with_threshold(demands: &[f64], threshold: f64) -> Result<FittedModel, FitError> {
    if demands.len() < 2 {
        return Err(FitError::TooShort { len: demands.len() });
    }
    let on: Vec<bool> = demands.iter().map(|&d| d > threshold).collect();

    // Transition counts (MLE for a two-state chain).
    let (mut on_entries, mut off_entries) = (0usize, 0usize);
    let (mut off_steps, mut on_steps) = (0usize, 0usize);
    for w in on.windows(2) {
        match (w[0], w[1]) {
            (false, true) => {
                on_entries += 1;
                off_steps += 1;
            }
            (false, false) => off_steps += 1,
            (true, false) => {
                off_entries += 1;
                on_steps += 1;
            }
            (true, true) => on_steps += 1,
        }
    }
    if on_entries + off_entries == 0 {
        return Err(FitError::NoTransitions);
    }

    let p_on = if off_steps > 0 {
        on_entries as f64 / off_steps as f64
    } else {
        0.0
    };
    let p_off = if on_steps > 0 {
        off_entries as f64 / on_steps as f64
    } else {
        0.0
    };

    // Level estimates: OFF mean for the normal level, ON *envelope* for
    // the peak (see [`FittedModel::r_e`] — the guarantee consumes the
    // fitted peak, so it must dominate every observed ON demand).
    let mut off_sum = 0.0;
    let mut off_count = 0usize;
    let mut on_max = f64::NEG_INFINITY;
    let mut on_count = 0usize;
    for (&d, &s) in demands.iter().zip(&on) {
        if s {
            on_max = on_max.max(d);
            on_count += 1;
        } else {
            off_sum += d;
            off_count += 1;
        }
    }
    let r_b = if off_count > 0 {
        off_sum / off_count as f64
    } else {
        0.0
    };
    let r_p = if on_count > 0 { on_max } else { 0.0 };

    Ok(FittedModel {
        p_on,
        p_off,
        r_b,
        r_e: (r_p - r_b).max(0.0),
        threshold,
        on_entries,
        off_entries,
        on_fraction: on_count as f64 / on.len() as f64,
    })
}

/// Fits a whole fleet of traces, skipping unfittable ones; returns the
/// specs (ids `0..`) and the indices of traces that failed.
pub fn fit_fleet(traces: &[Vec<f64>]) -> (Vec<VmSpec>, Vec<usize>) {
    let mut specs = Vec::new();
    let mut failed = Vec::new();
    for (idx, trace) in traces.iter().enumerate() {
        match fit_trace(trace) {
            Ok(model) => specs.push(model.to_spec(specs.len(), trace.len())),
            Err(_) => failed.push(idx),
        }
    }
    (specs, failed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::DemandTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn recovers_parameters_from_generated_trace() {
        let truth = VmSpec::new(0, 0.02, 0.1, 10.0, 8.0);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = DemandTrace::sample(truth, 300_000, &mut rng);
        let fit = fit_trace(&trace.demands()).unwrap();
        assert!((fit.p_on - 0.02).abs() < 0.002, "p_on {}", fit.p_on);
        assert!((fit.p_off - 0.1).abs() < 0.01, "p_off {}", fit.p_off);
        assert!((fit.r_b - 10.0).abs() < 1e-9);
        assert!((fit.r_e - 8.0).abs() < 1e-9);
    }

    #[test]
    fn fitted_spec_round_trips_through_consolidation_types() {
        let truth = VmSpec::new(0, 0.01, 0.09, 12.0, 6.0);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = DemandTrace::sample(truth, 100_000, &mut rng);
        let fit = fit_trace(&trace.demands()).unwrap();
        let spec = fit.to_spec(7, 100_000);
        assert_eq!(spec.id, 7);
        assert!(spec.p_on > 0.0 && spec.p_on <= 1.0);
        assert!((spec.mean_demand() - truth.mean_demand()).abs() < 0.3);
    }

    #[test]
    fn handles_noisy_levels_with_explicit_threshold() {
        // Two noisy levels around 10 and 20.
        let mut demands = Vec::new();
        for i in 0..1000 {
            let on = (i / 50) % 2 == 1;
            let base = if on { 20.0 } else { 10.0 };
            demands.push(base + ((i * 7) % 5) as f64 * 0.2 - 0.4);
        }
        let fit = fit_trace_with_threshold(&demands, 15.0).unwrap();
        assert!((fit.r_b - 10.0).abs() < 0.5);
        assert!((fit.r_e - 10.0).abs() < 0.8);
        // Deterministic 50-step alternation: p ≈ 1/50.
        assert!((fit.p_on - 0.02).abs() < 0.005);
        assert!((fit.p_off - 0.02).abs() < 0.005);
    }

    #[test]
    fn too_short_and_constant_traces_error() {
        assert_eq!(fit_trace(&[5.0]), Err(FitError::TooShort { len: 1 }));
        assert_eq!(fit_trace(&[]), Err(FitError::TooShort { len: 0 }));
        assert_eq!(fit_trace(&[5.0; 100]), Err(FitError::NoTransitions));
    }

    #[test]
    fn single_step_square_wave() {
        // Alternating every step: p_on = p_off = 1.
        let demands: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { 3.0 })
            .collect();
        let fit = fit_trace(&demands).unwrap();
        assert!((fit.p_on - 1.0).abs() < 1e-9);
        assert!((fit.p_off - 1.0).abs() < 1e-9);
        assert!((fit.on_fraction - 0.5).abs() < 0.01);
    }

    #[test]
    fn fleet_fitting_skips_bad_traces() {
        let truth = VmSpec::new(0, 0.05, 0.2, 5.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        let good1 = DemandTrace::sample(truth, 20_000, &mut rng).demands();
        let good2 = DemandTrace::sample(truth, 20_000, &mut rng).demands();
        let traces = vec![good1, vec![7.0; 50], good2, vec![]];
        let (specs, failed) = fit_fleet(&traces);
        assert_eq!(specs.len(), 2);
        assert_eq!(failed, vec![1, 3]);
        assert_eq!(specs[0].id, 0);
        assert_eq!(specs[1].id, 1);
    }

    #[test]
    fn error_messages_are_informative() {
        assert!(FitError::TooShort { len: 1 }.to_string().contains('1'));
        assert!(FitError::NoTransitions.to_string().contains("transition"));
    }

    #[test]
    fn to_spec_clamps_degenerate_probabilities() {
        // A trace with one ON sample at the very end: p_off estimate is 0
        // (never observed leaving ON); to_spec must clamp it positive.
        let mut demands = vec![1.0; 99];
        demands.push(10.0);
        let fit = fit_trace(&demands).unwrap();
        assert_eq!(fit.p_off, 0.0);
        let spec = fit.to_spec(0, demands.len());
        assert!(spec.p_off > 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::trace::DemandTrace;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn fit_recovers_levels_exactly_for_clean_traces(
            p_on in 0.02f64..0.5,
            p_off in 0.02f64..0.5,
            r_b in 1.0f64..50.0,
            r_e in 1.0f64..50.0,
            seed in 0u64..1000,
        ) {
            let truth = VmSpec::new(0, p_on, p_off, r_b, r_e);
            let mut rng = StdRng::seed_from_u64(seed);
            let trace = DemandTrace::sample(truth, 50_000, &mut rng);
            // Two-level traces have exact level recovery; probabilities
            // are statistical.
            if let Ok(fit) = fit_trace(&trace.demands()) {
                prop_assert!((fit.r_b - r_b).abs() < 1e-9);
                prop_assert!((fit.r_e - r_e).abs() < 1e-9);
                prop_assert!((fit.p_on - p_on).abs() < 0.15 * p_on.max(0.05));
                prop_assert!((fit.p_off - p_off).abs() < 0.15 * p_off.max(0.05));
            }
        }
    }
}
