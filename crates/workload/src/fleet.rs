//! Seeded random generation of VM and PM fleets (Fig. 5 / Table I setups).

use crate::patterns::{defaults, SizeClass, TableIRow, WorkloadPattern, TABLE_I};
use crate::spec::{PmSpec, VmSpec};
use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`FleetGenerator`]. Defaults match the paper's captions:
/// `p_on = 0.01`, `p_off = 0.09`, `C_j ∈ [80, 100]`.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// Spike frequency, uniform across the fleet (the base algorithm
    /// assumes common switch probabilities).
    pub p_on: f64,
    /// Reciprocal spike duration.
    pub p_off: f64,
    /// PM capacity sampling range.
    pub pm_capacity: std::ops::Range<f64>,
}

impl Default for FleetOptions {
    fn default() -> Self {
        Self {
            p_on: defaults::P_ON,
            p_off: defaults::P_OFF,
            pm_capacity: defaults::PM_CAPACITY_RANGE,
        }
    }
}

/// Deterministic (seeded) generator of experiment fleets.
///
/// # Examples
/// ```
/// use bursty_workload::{FleetGenerator, WorkloadPattern};
///
/// let mut gen = FleetGenerator::new(42);
/// let vms = gen.vms(100, WorkloadPattern::LargeSpike);
/// let pms = gen.pms(100);
/// assert!(vms.iter().all(|v| v.r_b < v.r_e)); // large spikes
/// assert!(pms.iter().all(|p| (80.0..100.0).contains(&p.capacity)));
/// // Same seed, same fleet — every experiment is reproducible.
/// assert_eq!(FleetGenerator::new(42).vms(100, WorkloadPattern::LargeSpike), vms);
/// ```
#[derive(Debug)]
pub struct FleetGenerator {
    rng: StdRng,
    opts: FleetOptions,
}

impl FleetGenerator {
    /// Creates a generator with the paper-default options.
    pub fn new(seed: u64) -> Self {
        Self::with_options(seed, FleetOptions::default())
    }

    /// Creates a generator with explicit options.
    pub fn with_options(seed: u64, opts: FleetOptions) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            opts,
        }
    }

    /// Samples `n` VMs with `R_b`/`R_e` drawn uniformly from the pattern's
    /// Fig.-5 ranges. Ids are `0..n`.
    pub fn vms(&mut self, n: usize, pattern: WorkloadPattern) -> Vec<VmSpec> {
        let rb = Uniform::from(pattern.r_b_range());
        let re = Uniform::from(pattern.r_e_range());
        (0..n)
            .map(|id| {
                VmSpec::new(
                    id,
                    self.opts.p_on,
                    self.opts.p_off,
                    rb.sample(&mut self.rng),
                    re.sample(&mut self.rng),
                )
            })
            .collect()
    }

    /// Samples `n` VMs whose `(R_b, R_e)` size classes are drawn uniformly
    /// from the Table-I rows of `pattern` (the §V-D setup).
    pub fn vms_table_i(&mut self, n: usize, pattern: WorkloadPattern) -> Vec<VmSpec> {
        let rows: Vec<&TableIRow> = TABLE_I.iter().filter(|r| r.pattern == pattern).collect();
        assert!(!rows.is_empty(), "no Table I rows for {pattern}");
        (0..n)
            .map(|id| {
                let row = rows[self.rng.gen_range(0..rows.len())];
                VmSpec::new(
                    id,
                    self.opts.p_on,
                    self.opts.p_off,
                    row.r_b.resource_units(),
                    row.r_e.resource_units(),
                )
            })
            .collect()
    }

    /// Samples `m` PMs with capacities from the configured range.
    /// Ids are `0..m`.
    pub fn pms(&mut self, m: usize) -> Vec<PmSpec> {
        let cap = Uniform::from(self.opts.pm_capacity.clone());
        (0..m)
            .map(|id| PmSpec::new(id, cap.sample(&mut self.rng)))
            .collect()
    }

    /// Samples a single VM of explicit size classes (used by online-arrival
    /// scenarios).
    pub fn vm_of_classes(&mut self, id: usize, r_b: SizeClass, r_e: SizeClass) -> VmSpec {
        VmSpec::new(
            id,
            self.opts.p_on,
            self.opts.p_off,
            r_b.resource_units(),
            r_e.resource_units(),
        )
    }

    /// Access to the underlying RNG for callers that need extra draws tied
    /// to the same seed.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_draws_stay_in_pattern_ranges() {
        let mut g = FleetGenerator::new(1);
        for pattern in WorkloadPattern::ALL {
            for v in g.vms(200, pattern) {
                assert!(pattern.r_b_range().contains(&v.r_b), "{pattern}: {v:?}");
                assert!(pattern.r_e_range().contains(&v.r_e), "{pattern}: {v:?}");
                assert_eq!(v.p_on, defaults::P_ON);
                assert_eq!(v.p_off, defaults::P_OFF);
            }
        }
    }

    #[test]
    fn small_spike_pattern_guarantees_inequality() {
        let mut g = FleetGenerator::new(2);
        for v in g.vms(500, WorkloadPattern::SmallSpike) {
            assert!(v.r_b > v.r_e);
        }
        for v in g.vms(500, WorkloadPattern::LargeSpike) {
            assert!(v.r_b < v.r_e);
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut g = FleetGenerator::new(3);
        let vms = g.vms(10, WorkloadPattern::EqualSpike);
        for (i, v) in vms.iter().enumerate() {
            assert_eq!(v.id, i);
        }
        let pms = g.pms(4);
        for (j, h) in pms.iter().enumerate() {
            assert_eq!(h.id, j);
        }
    }

    #[test]
    fn pm_capacities_in_default_range() {
        let mut g = FleetGenerator::new(4);
        for h in g.pms(100) {
            assert!((80.0..100.0).contains(&h.capacity));
        }
    }

    #[test]
    fn same_seed_same_fleet() {
        let a = FleetGenerator::new(7).vms(50, WorkloadPattern::LargeSpike);
        let b = FleetGenerator::new(7).vms(50, WorkloadPattern::LargeSpike);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_fleet() {
        let a = FleetGenerator::new(7).vms(50, WorkloadPattern::LargeSpike);
        let b = FleetGenerator::new(8).vms(50, WorkloadPattern::LargeSpike);
        assert_ne!(a, b);
    }

    #[test]
    fn table_i_vms_use_class_units() {
        let mut g = FleetGenerator::new(5);
        let vms = g.vms_table_i(300, WorkloadPattern::EqualSpike);
        for v in vms {
            // Equal pattern rows: (S,S), (M,M), (L,L).
            assert_eq!(v.r_b, v.r_e);
            assert!([5.0, 10.0, 20.0].contains(&v.r_b));
        }
    }

    #[test]
    fn table_i_vms_respect_pattern() {
        let mut g = FleetGenerator::new(6);
        for v in g.vms_table_i(300, WorkloadPattern::SmallSpike) {
            assert!(v.r_b > v.r_e);
        }
        for v in g.vms_table_i(300, WorkloadPattern::LargeSpike) {
            assert!(v.r_b < v.r_e);
        }
    }

    #[test]
    fn custom_options_are_respected() {
        let opts = FleetOptions {
            p_on: 0.2,
            p_off: 0.5,
            pm_capacity: 10.0..11.0,
        };
        let mut g = FleetGenerator::with_options(1, opts);
        let v = &g.vms(1, WorkloadPattern::EqualSpike)[0];
        assert_eq!(v.p_on, 0.2);
        assert_eq!(v.p_off, 0.5);
        assert!((10.0..11.0).contains(&g.pms(1)[0].capacity));
    }

    #[test]
    fn vm_of_classes_builds_expected_spec() {
        let mut g = FleetGenerator::new(9);
        let v = g.vm_of_classes(42, SizeClass::Small, SizeClass::Large);
        assert_eq!(v.id, 42);
        assert_eq!(v.r_b, 5.0);
        assert_eq!(v.r_e, 20.0);
    }
}
