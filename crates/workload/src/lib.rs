//! Workload modelling: VM/PM specifications, the paper's workload patterns,
//! fleet generators, demand traces and the web-server request model.
//!
//! A VM is the paper's four-tuple `V_i = (p_on, p_off, R_b, R_e)`
//! ([`spec::VmSpec`]); a PM is its capacity ([`spec::PmSpec`]). The three
//! experimental workload patterns of §V ([`patterns::WorkloadPattern`]) and
//! the Table-I size classes ([`patterns::SizeClass`]) parameterize the
//! seeded generators in [`fleet`]. [`trace`] turns specs into demand time
//! series `W_i(t)`; [`webserver`] reproduces §V-D's user/think-time request
//! workload (Fig. 8); [`multidim`] carries the §IV-E multi-resource
//! extension.

//! [`fitting`] estimates the four-tuple from measured traces and
//! [`analysis`] quantifies burstiness (autocorrelation, index of
//! dispersion, run statistics) the way the paper's related work does.

pub mod analysis;
pub mod classes;
pub mod diurnal;
pub mod fitting;
pub mod fleet;
pub mod multidim;
pub mod patterns;
pub mod spec;
pub mod trace;
pub mod webserver;

pub use analysis::{profile, BurstinessProfile};
pub use classes::{class_runs, collapse, collapse_factor, distinct_classes, ClassRun, VmClass};
pub use fitting::{fit_fleet, fit_trace, FitError, FittedModel};
pub use fleet::{FleetGenerator, FleetOptions};
pub use patterns::{SizeClass, TableIRow, WorkloadPattern, TABLE_I};
pub use spec::{PmSpec, VmSpec};
pub use trace::DemandTrace;
pub use webserver::{WebServerOptions, WebServerWorkload};
