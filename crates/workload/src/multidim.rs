//! Multi-dimensional resource vectors (paper §IV-E).
//!
//! The base algorithm is one-dimensional. For uncorrelated resource
//! dimensions the paper prescribes applying the queuing reservation to each
//! dimension independently and falling back to plain First Fit; for
//! correlated dimensions, mapping them to one scalar first. Both paths are
//! supported here.

use crate::spec::VmSpec;

/// A small fixed-arity resource vector, e.g. `[cpu, memory, net]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceVec(pub Vec<f64>);

impl ResourceVec {
    /// Creates a vector, validating non-negativity.
    ///
    /// # Panics
    /// Panics on an empty vector or any negative component.
    pub fn new(components: Vec<f64>) -> Self {
        assert!(!components.is_empty(), "resource vector must be non-empty");
        assert!(
            components.iter().all(|&x| x >= 0.0),
            "resource components must be nonnegative: {components:?}"
        );
        Self(components)
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.0.len()
    }

    /// Component access.
    #[inline]
    pub fn get(&self, d: usize) -> f64 {
        self.0[d]
    }

    /// Componentwise sum.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn add(&self, other: &ResourceVec) -> ResourceVec {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        ResourceVec(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// `true` iff every component of `self` is ≤ the matching component of
    /// `other` (the multi-dimensional capacity test).
    pub fn fits_within(&self, other: &ResourceVec) -> bool {
        assert_eq!(self.dims(), other.dims(), "dimension mismatch");
        self.0.iter().zip(&other.0).all(|(a, b)| a <= b)
    }

    /// Projects the vector to one dimension with the given weights —
    /// the paper's "map them to one dimension" route for correlated
    /// resources.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn project(&self, weights: &[f64]) -> f64 {
        assert_eq!(self.dims(), weights.len(), "weight dimension mismatch");
        self.0.iter().zip(weights).map(|(x, w)| x * w).sum()
    }
}

/// A VM whose base demand and spike size are resource vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiDimVmSpec {
    /// Caller-assigned id.
    pub id: usize,
    /// OFF→ON switch probability (shared across dimensions — a spike
    /// raises all dimensions simultaneously, per the ON-OFF model).
    pub p_on: f64,
    /// ON→OFF switch probability.
    pub p_off: f64,
    /// Base demand per dimension.
    pub r_b: ResourceVec,
    /// Spike size per dimension.
    pub r_e: ResourceVec,
}

impl MultiDimVmSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics on probability/dimension violations.
    pub fn new(id: usize, p_on: f64, p_off: f64, r_b: ResourceVec, r_e: ResourceVec) -> Self {
        assert!(p_on > 0.0 && p_on <= 1.0, "p_on must be in (0,1]");
        assert!(p_off > 0.0 && p_off <= 1.0, "p_off must be in (0,1]");
        assert_eq!(r_b.dims(), r_e.dims(), "r_b/r_e dimension mismatch");
        Self {
            id,
            p_on,
            p_off,
            r_b,
            r_e,
        }
    }

    /// Number of resource dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.r_b.dims()
    }

    /// Peak demand per dimension.
    pub fn r_p(&self) -> ResourceVec {
        self.r_b.add(&self.r_e)
    }

    /// The one-dimensional projection of this VM under `weights` —
    /// collapses correlated dimensions so the scalar algorithms apply.
    pub fn project(&self, weights: &[f64]) -> VmSpec {
        VmSpec::new(
            self.id,
            self.p_on,
            self.p_off,
            self.r_b.project(weights),
            self.r_e.project(weights),
        )
    }

    /// The scalar sub-problem for one dimension — used by the
    /// per-dimension reservation path.
    ///
    /// A zero base demand in some dimension is nudged to a tiny positive
    /// value so the scalar invariant `r_b > 0` holds.
    pub fn dimension(&self, d: usize) -> VmSpec {
        VmSpec::new(
            self.id,
            self.p_on,
            self.p_off,
            self.r_b.get(d).max(f64::MIN_POSITIVE),
            self.r_e.get(d),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rv(xs: &[f64]) -> ResourceVec {
        ResourceVec::new(xs.to_vec())
    }

    #[test]
    fn add_and_fits() {
        let a = rv(&[1.0, 2.0]);
        let b = rv(&[3.0, 4.0]);
        assert_eq!(a.add(&b), rv(&[4.0, 6.0]));
        assert!(a.fits_within(&b));
        assert!(!b.fits_within(&a));
    }

    #[test]
    fn fits_is_componentwise_not_total() {
        // Smaller total but one oversized component must not fit.
        let a = rv(&[5.0, 0.0]);
        let b = rv(&[4.0, 10.0]);
        assert!(!a.fits_within(&b));
    }

    #[test]
    fn projection_is_weighted_sum() {
        let a = rv(&[2.0, 3.0]);
        assert_eq!(a.project(&[1.0, 2.0]), 8.0);
    }

    #[test]
    fn multidim_peak_and_dims() {
        let v = MultiDimVmSpec::new(0, 0.01, 0.09, rv(&[10.0, 4.0]), rv(&[5.0, 2.0]));
        assert_eq!(v.dims(), 2);
        assert_eq!(v.r_p(), rv(&[15.0, 6.0]));
    }

    #[test]
    fn projected_vm_keeps_switch_probabilities() {
        let v = MultiDimVmSpec::new(7, 0.02, 0.08, rv(&[10.0, 4.0]), rv(&[5.0, 2.0]));
        let s = v.project(&[0.5, 0.5]);
        assert_eq!(s.id, 7);
        assert_eq!(s.p_on, 0.02);
        assert_eq!(s.r_b, 7.0);
        assert_eq!(s.r_e, 3.5);
    }

    #[test]
    fn dimension_extracts_scalar_subproblem() {
        let v = MultiDimVmSpec::new(1, 0.01, 0.09, rv(&[10.0, 4.0]), rv(&[5.0, 2.0]));
        let d1 = v.dimension(1);
        assert_eq!(d1.r_b, 4.0);
        assert_eq!(d1.r_e, 2.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dims_panic() {
        let _ = rv(&[1.0]).add(&rv(&[1.0, 2.0]));
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_component_panics() {
        let _ = rv(&[1.0, -0.1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vector_panics() {
        let _ = ResourceVec::new(vec![]);
    }
}
