//! The paper's workload patterns (§V, Fig. 5 caption and Table I).

use std::fmt;
use std::ops::Range;

/// The three workload patterns distinguished in every experiment of §V.
///
/// Names follow the paper's inequality between base demand and spike size:
/// `R_b = R_e` is a "normal" spike, `R_b > R_e` a small spike, `R_b < R_e`
/// a large spike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadPattern {
    /// `R_b = R_e`: normal spike size. Fig. 5(a): both drawn from `[2, 20]`.
    EqualSpike,
    /// `R_b > R_e`: small spike. Fig. 5(b): `R_b ∈ [12, 20]`, `R_e ∈ [2, 10]`.
    SmallSpike,
    /// `R_b < R_e`: large spike. Fig. 5(c): `R_b ∈ [2, 10]`, `R_e ∈ [12, 20]`.
    LargeSpike,
}

impl WorkloadPattern {
    /// All three patterns, in the paper's presentation order.
    pub const ALL: [WorkloadPattern; 3] = [
        WorkloadPattern::EqualSpike,
        WorkloadPattern::SmallSpike,
        WorkloadPattern::LargeSpike,
    ];

    /// The `R_b` sampling range used in the Fig.-5 packing experiments.
    pub fn r_b_range(self) -> Range<f64> {
        match self {
            WorkloadPattern::EqualSpike => 2.0..20.0,
            WorkloadPattern::SmallSpike => 12.0..20.0,
            WorkloadPattern::LargeSpike => 2.0..10.0,
        }
    }

    /// The `R_e` sampling range used in the Fig.-5 packing experiments.
    pub fn r_e_range(self) -> Range<f64> {
        match self {
            WorkloadPattern::EqualSpike => 2.0..20.0,
            WorkloadPattern::SmallSpike => 2.0..10.0,
            WorkloadPattern::LargeSpike => 12.0..20.0,
        }
    }

    /// The paper's compact label (`R_b = R_e` etc.).
    pub fn label(self) -> &'static str {
        match self {
            WorkloadPattern::EqualSpike => "Rb = Re",
            WorkloadPattern::SmallSpike => "Rb > Re",
            WorkloadPattern::LargeSpike => "Rb < Re",
        }
    }
}

impl fmt::Display for WorkloadPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Table I's size classes for the §V-D live-migration experiments.
///
/// Each class accommodates a fixed user population; demand is quantified by
/// the request rate that population generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeClass {
    /// 400 users.
    Small,
    /// 800 users.
    Medium,
    /// 1600 users.
    Large,
}

impl SizeClass {
    /// The user population this class accommodates (Table I).
    pub fn users(self) -> u32 {
        match self {
            SizeClass::Small => 400,
            SizeClass::Medium => 800,
            SizeClass::Large => 1600,
        }
    }

    /// Nominal resource units for this class. Users map linearly onto the
    /// abstract resource scale used by the Fig.-5 experiments
    /// (400 users ≙ 5 units), so both experiment families share PM sizing.
    pub fn resource_units(self) -> f64 {
        self.users() as f64 / 80.0
    }
}

impl fmt::Display for SizeClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SizeClass::Small => "small",
            SizeClass::Medium => "medium",
            SizeClass::Large => "large",
        };
        f.write_str(s)
    }
}

/// One row of Table I: a `(pattern, R_b class, R_e class)` combination with
/// its normal/peak user capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableIRow {
    /// Which of the three workload patterns the row belongs to.
    pub pattern: WorkloadPattern,
    /// Size class of the base demand `R_b`.
    pub r_b: SizeClass,
    /// Size class of the spike `R_e`.
    pub r_e: SizeClass,
}

impl TableIRow {
    /// Users accommodated at the normal workload level (Table I column 4).
    pub fn normal_capability(&self) -> u32 {
        self.r_b.users()
    }

    /// Users accommodated at the peak workload level (Table I column 5).
    pub fn peak_capability(&self) -> u32 {
        self.r_b.users() + self.r_e.users()
    }
}

/// The seven rows of Table I, in the paper's order.
pub const TABLE_I: [TableIRow; 7] = [
    TableIRow {
        pattern: WorkloadPattern::EqualSpike,
        r_b: SizeClass::Small,
        r_e: SizeClass::Small,
    },
    TableIRow {
        pattern: WorkloadPattern::EqualSpike,
        r_b: SizeClass::Medium,
        r_e: SizeClass::Medium,
    },
    TableIRow {
        pattern: WorkloadPattern::EqualSpike,
        r_b: SizeClass::Large,
        r_e: SizeClass::Large,
    },
    TableIRow {
        pattern: WorkloadPattern::SmallSpike,
        r_b: SizeClass::Medium,
        r_e: SizeClass::Small,
    },
    TableIRow {
        pattern: WorkloadPattern::SmallSpike,
        r_b: SizeClass::Large,
        r_e: SizeClass::Medium,
    },
    TableIRow {
        pattern: WorkloadPattern::LargeSpike,
        r_b: SizeClass::Small,
        r_e: SizeClass::Medium,
    },
    TableIRow {
        pattern: WorkloadPattern::LargeSpike,
        r_b: SizeClass::Medium,
        r_e: SizeClass::Large,
    },
];

/// The paper's default experiment parameters (Fig. 5/9 captions).
pub mod defaults {
    /// CVR bound `ρ`.
    pub const RHO: f64 = 0.01;
    /// Max VMs per PM, `d`.
    pub const MAX_VMS_PER_PM: usize = 16;
    /// Spike frequency `p_on`.
    pub const P_ON: f64 = 0.01;
    /// Reciprocal spike duration `p_off`.
    pub const P_OFF: f64 = 0.09;
    /// PM capacity range `C_j ∈ [80, 100]`.
    pub const PM_CAPACITY_RANGE: std::ops::Range<f64> = 80.0..100.0;
    /// RB-EX reservation fraction `δ`.
    pub const DELTA: f64 = 0.3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_ranges_respect_their_inequality() {
        // SmallSpike: every possible R_b exceeds every possible R_e? Not
        // quite (12 > 10 holds at the boundaries) — the ranges guarantee
        // R_b > R_e for all draws.
        let p = WorkloadPattern::SmallSpike;
        assert!(p.r_b_range().start >= p.r_e_range().end);
        let p = WorkloadPattern::LargeSpike;
        assert!(p.r_e_range().start >= p.r_b_range().end);
        let p = WorkloadPattern::EqualSpike;
        assert_eq!(p.r_b_range(), p.r_e_range());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(WorkloadPattern::EqualSpike.to_string(), "Rb = Re");
        assert_eq!(WorkloadPattern::SmallSpike.to_string(), "Rb > Re");
        assert_eq!(WorkloadPattern::LargeSpike.to_string(), "Rb < Re");
    }

    #[test]
    fn size_class_users_match_table() {
        assert_eq!(SizeClass::Small.users(), 400);
        assert_eq!(SizeClass::Medium.users(), 800);
        assert_eq!(SizeClass::Large.users(), 1600);
    }

    #[test]
    fn table_i_capabilities_match_paper() {
        // Row order: (400,800), (800,1600), (1600,3200), (800,1200),
        // (1600,2400), (400,1200), (800,2400).
        let expect = [
            (400, 800),
            (800, 1600),
            (1600, 3200),
            (800, 1200),
            (1600, 2400),
            (400, 1200),
            (800, 2400),
        ];
        for (row, &(n, p)) in TABLE_I.iter().zip(&expect) {
            assert_eq!(row.normal_capability(), n, "{row:?}");
            assert_eq!(row.peak_capability(), p, "{row:?}");
        }
    }

    #[test]
    fn table_i_covers_all_patterns() {
        for pattern in WorkloadPattern::ALL {
            assert!(TABLE_I.iter().any(|r| r.pattern == pattern));
        }
    }

    #[test]
    fn resource_units_scale_linearly() {
        assert_eq!(SizeClass::Small.resource_units(), 5.0);
        assert_eq!(SizeClass::Medium.resource_units(), 10.0);
        assert_eq!(SizeClass::Large.resource_units(), 20.0);
    }

    #[test]
    fn defaults_match_figure_captions() {
        assert_eq!(defaults::RHO, 0.01);
        assert_eq!(defaults::MAX_VMS_PER_PM, 16);
        assert_eq!(defaults::P_ON, 0.01);
        assert_eq!(defaults::P_OFF, 0.09);
        assert_eq!(defaults::DELTA, 0.3);
    }
}
