//! VM and PM specifications (paper Eq. 1–2).

use bursty_markov::OnOffChain;

/// A virtual machine's workload specification — the paper's four-tuple
/// `V_i = (p_on, p_off, R_b, R_e)` (Eq. 1).
///
/// * `r_b` — resource demand of the normal (OFF) workload level,
/// * `r_e` — the spike size, so the peak demand is `R_p = R_b + R_e`,
/// * `p_on` — OFF→ON switch probability (spike frequency),
/// * `p_off` — ON→OFF switch probability (reciprocal spike duration).
///
/// Resource units are deliberately abstract: the paper uses memory, but any
/// one-dimensional resource (or a one-dimensional mapping of several) works.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmSpec {
    /// Caller-assigned identifier; placement mappings index VMs by
    /// position, this id survives sorting/clustering.
    pub id: usize,
    /// OFF→ON switch probability.
    pub p_on: f64,
    /// ON→OFF switch probability.
    pub p_off: f64,
    /// Normal-level (base) demand `R_b`.
    pub r_b: f64,
    /// Spike size `R_e = R_p − R_b`.
    pub r_e: f64,
}

impl VmSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics if probabilities are outside `(0, 1]`, `r_b ≤ 0`, or
    /// `r_e < 0` (a spike-free VM is allowed with `r_e = 0`).
    pub fn new(id: usize, p_on: f64, p_off: f64, r_b: f64, r_e: f64) -> Self {
        assert!(
            p_on > 0.0 && p_on <= 1.0,
            "p_on must be in (0,1], got {p_on}"
        );
        assert!(
            p_off > 0.0 && p_off <= 1.0,
            "p_off must be in (0,1], got {p_off}"
        );
        assert!(r_b > 0.0, "r_b must be positive, got {r_b}");
        assert!(r_e >= 0.0, "r_e must be nonnegative, got {r_e}");
        Self {
            id,
            p_on,
            p_off,
            r_b,
            r_e,
        }
    }

    /// Peak demand `R_p = R_b + R_e`.
    #[inline]
    pub fn r_p(&self) -> f64 {
        self.r_b + self.r_e
    }

    /// The VM's ON-OFF chain.
    #[inline]
    pub fn chain(&self) -> OnOffChain {
        OnOffChain::new(self.p_on, self.p_off)
    }

    /// Long-run mean demand `R_b + π_on · R_e`.
    #[inline]
    pub fn mean_demand(&self) -> f64 {
        self.r_b + self.chain().stationary_on() * self.r_e
    }

    /// Demand at a given workload state.
    #[inline]
    pub fn demand(&self, on: bool) -> f64 {
        if on {
            self.r_p()
        } else {
            self.r_b
        }
    }
}

/// A physical machine's specification — its capacity (paper Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PmSpec {
    /// Caller-assigned identifier.
    pub id: usize,
    /// Capacity `C_j` in the same units as VM demands.
    pub capacity: f64,
}

impl PmSpec {
    /// Creates a validated spec.
    ///
    /// # Panics
    /// Panics if `capacity ≤ 0`.
    pub fn new(id: usize, capacity: f64) -> Self {
        assert!(capacity > 0.0, "capacity must be positive, got {capacity}");
        Self { id, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_base_plus_spike() {
        let v = VmSpec::new(0, 0.01, 0.09, 10.0, 5.0);
        assert_eq!(v.r_p(), 15.0);
        assert_eq!(v.demand(false), 10.0);
        assert_eq!(v.demand(true), 15.0);
    }

    #[test]
    fn mean_demand_uses_stationary_on_fraction() {
        // 10% ON => mean = 10 + 0.1 * 5 = 10.5.
        let v = VmSpec::new(0, 0.01, 0.09, 10.0, 5.0);
        assert!((v.mean_demand() - 10.5).abs() < 1e-12);
    }

    #[test]
    fn zero_spike_is_allowed() {
        let v = VmSpec::new(1, 0.5, 0.5, 4.0, 0.0);
        assert_eq!(v.r_p(), v.r_b);
    }

    #[test]
    fn chain_round_trip() {
        let v = VmSpec::new(0, 0.02, 0.08, 1.0, 1.0);
        assert_eq!(v.chain().p_on(), 0.02);
        assert_eq!(v.chain().p_off(), 0.08);
    }

    #[test]
    #[should_panic(expected = "r_b")]
    fn rejects_nonpositive_base() {
        let _ = VmSpec::new(0, 0.1, 0.1, 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "r_e")]
    fn rejects_negative_spike() {
        let _ = VmSpec::new(0, 0.1, 0.1, 1.0, -0.5);
    }

    #[test]
    #[should_panic(expected = "p_on")]
    fn rejects_bad_p_on() {
        let _ = VmSpec::new(0, 0.0, 0.1, 1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn rejects_nonpositive_capacity() {
        let _ = PmSpec::new(0, 0.0);
    }

    #[test]
    fn pm_spec_holds_fields() {
        let h = PmSpec::new(3, 96.0);
        assert_eq!(h.id, 3);
        assert_eq!(h.capacity, 96.0);
    }
}
