//! Demand traces `W_i(t)` generated from a VM's ON-OFF chain (paper Fig. 1).

use crate::spec::VmSpec;
use bursty_markov::VmState;
use rand::Rng;

/// A sampled demand time series for one VM.
#[derive(Debug, Clone, PartialEq)]
pub struct DemandTrace {
    /// The spec the trace was sampled from.
    pub vm: VmSpec,
    /// The ON/OFF state at each step.
    pub states: Vec<VmState>,
}

impl DemandTrace {
    /// Samples a `len`-step trace. The initial state is drawn from the
    /// stationary distribution so traces start "in the middle" of the
    /// process rather than cold.
    pub fn sample<R: Rng + ?Sized>(vm: VmSpec, len: usize, rng: &mut R) -> Self {
        let chain = vm.chain();
        let start = chain.sample_stationary(rng);
        let states = chain.sample_trace(start, len, rng);
        Self { vm, states }
    }

    /// Samples a trace that starts OFF (normal traffic), matching the
    /// paper's assumption that the initial placement happens at `t = 0`
    /// with every VM at its normal level.
    pub fn sample_from_off<R: Rng + ?Sized>(vm: VmSpec, len: usize, rng: &mut R) -> Self {
        let chain = vm.chain();
        let states = chain.sample_trace(VmState::Off, len, rng);
        Self { vm, states }
    }

    /// Length of the trace in steps.
    #[inline]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the trace has no steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The demand `W_i(t)` at step `t`.
    #[inline]
    pub fn demand_at(&self, t: usize) -> f64 {
        self.vm.demand(self.states[t].is_on())
    }

    /// The full demand series.
    pub fn demands(&self) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| self.vm.demand(s.is_on()))
            .collect()
    }

    /// Fraction of steps spent ON.
    pub fn on_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 0.0;
        }
        self.states.iter().filter(|s| s.is_on()).count() as f64 / self.states.len() as f64
    }

    /// Number of distinct spikes (maximal ON runs).
    pub fn spike_count(&self) -> usize {
        let mut count = 0;
        let mut prev_on = false;
        for s in &self.states {
            let on = s.is_on();
            if on && !prev_on {
                count += 1;
            }
            prev_on = on;
        }
        count
    }
}

/// Sums the demands of several traces at step `t` — the PM-level aggregate
/// load `Σᵢ xᵢⱼ Wᵢ(t)` of paper Eq. 3.
pub fn aggregate_demand_at(traces: &[&DemandTrace], t: usize) -> f64 {
    traces.iter().map(|tr| tr.demand_at(t)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vm() -> VmSpec {
        VmSpec::new(0, 0.01, 0.09, 10.0, 5.0)
    }

    #[test]
    fn demands_are_base_or_peak_only() {
        let mut rng = StdRng::seed_from_u64(1);
        let tr = DemandTrace::sample(vm(), 1000, &mut rng);
        for d in tr.demands() {
            assert!(d == 10.0 || d == 15.0, "unexpected demand {d}");
        }
    }

    #[test]
    fn from_off_starts_at_base_demand() {
        let mut rng = StdRng::seed_from_u64(2);
        let tr = DemandTrace::sample_from_off(vm(), 10, &mut rng);
        assert_eq!(tr.demand_at(0), 10.0);
    }

    #[test]
    fn on_fraction_converges_to_stationary() {
        let mut rng = StdRng::seed_from_u64(3);
        let tr = DemandTrace::sample(vm(), 300_000, &mut rng);
        assert!(
            (tr.on_fraction() - 0.1).abs() < 0.01,
            "{}",
            tr.on_fraction()
        );
    }

    #[test]
    fn spike_count_counts_maximal_runs() {
        use VmState::{Off as F, On as N};
        let tr = DemandTrace {
            vm: vm(),
            states: vec![F, N, N, F, N, F, F, N, N, N],
        };
        assert_eq!(tr.spike_count(), 3);
    }

    #[test]
    fn spikes_are_short_and_infrequent_with_paper_parameters() {
        // p_on = 0.01 => ~1 spike per 100 steps of OFF time;
        // p_off = 0.09 => mean spike length ~11 steps.
        let mut rng = StdRng::seed_from_u64(4);
        let tr = DemandTrace::sample_from_off(vm(), 200_000, &mut rng);
        let spikes = tr.spike_count() as f64;
        let on_steps = tr.on_fraction() * tr.len() as f64;
        let mean_len = on_steps / spikes;
        assert!(
            (mean_len - 1.0 / 0.09).abs() < 1.0,
            "mean spike length {mean_len}"
        );
    }

    #[test]
    fn aggregate_demand_sums_members() {
        use VmState::{Off as F, On as N};
        let a = DemandTrace {
            vm: vm(),
            states: vec![F, N],
        };
        let b = DemandTrace {
            vm: VmSpec::new(1, 0.1, 0.1, 3.0, 2.0),
            states: vec![N, N],
        };
        assert_eq!(aggregate_demand_at(&[&a, &b], 0), 10.0 + 5.0);
        assert_eq!(aggregate_demand_at(&[&a, &b], 1), 15.0 + 5.0);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let tr = DemandTrace {
            vm: vm(),
            states: vec![],
        };
        assert!(tr.is_empty());
        assert_eq!(tr.on_fraction(), 0.0);
        assert_eq!(tr.spike_count(), 0);
    }
}
