//! The §V-D web-server request workload (paper Fig. 8).
//!
//! Each VM simulates a web server visited by a population of users. A user
//! sends a request, then "thinks" for `max(floor, Exp(mean))` seconds and
//! repeats. When the VM's ON-OFF chain is OFF the normal population
//! (`R_b`-level users) is active; a spike (ON) raises the population to the
//! peak level. The workload is quantified by requests per sampling interval.

use bursty_markov::{OnOffChain, VmState};
use rand::Rng;

/// Think-time model parameters. Paper values: negative-exponential with
/// mean 1 s, floored at 0.1 s ("in reality the user think time cannot be
/// infinitely small").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServerOptions {
    /// Mean of the exponential think time, seconds.
    pub think_mean: f64,
    /// Lower clamp on think time, seconds.
    pub think_floor: f64,
}

impl Default for WebServerOptions {
    fn default() -> Self {
        Self {
            think_mean: 1.0,
            think_floor: 0.1,
        }
    }
}

impl WebServerOptions {
    /// Mean of the clamped think time `Y = max(floor, Exp(mean))`:
    /// `E[Y] = floor + mean · e^(−floor/mean)`.
    pub fn mean_think(&self) -> f64 {
        self.think_floor + self.think_mean * (-self.think_floor / self.think_mean).exp()
    }

    /// Variance of the clamped think time (from the closed-form second
    /// moment `E[Y²] = floor² + e^(−floor/mean)(2·floor·mean + 2·mean²)`).
    pub fn var_think(&self) -> f64 {
        let (f, m) = (self.think_floor, self.think_mean);
        let e = (-f / m).exp();
        let m2 = f * f + e * (2.0 * f * m + 2.0 * m * m);
        m2 - self.mean_think().powi(2)
    }

    /// Steady-state requests per second per user: `1 / E[Y]`.
    pub fn rate_per_user(&self) -> f64 {
        1.0 / self.mean_think()
    }

    /// Draws one clamped think time.
    pub fn sample_think<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-CDF exponential, then clamp.
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let x = -self.think_mean * u.ln();
        x.max(self.think_floor)
    }
}

/// A web-server VM: a user population modulated by an ON-OFF chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServerWorkload {
    /// Users active at the normal (OFF) level — the `R_b` capability.
    pub normal_users: u32,
    /// Users active during a spike (ON) — the `R_p` capability.
    pub peak_users: u32,
    /// The VM's ON-OFF switching chain.
    pub chain: OnOffChain,
    /// Think-time model.
    pub opts: WebServerOptions,
}

impl WebServerWorkload {
    /// Creates a workload; `peak_users ≥ normal_users ≥ 1` is required.
    ///
    /// # Panics
    /// Panics if the populations are inconsistent.
    pub fn new(normal_users: u32, peak_users: u32, chain: OnOffChain) -> Self {
        assert!(normal_users >= 1, "need at least one normal user");
        assert!(
            peak_users >= normal_users,
            "peak population must be ≥ normal ({peak_users} < {normal_users})"
        );
        Self {
            normal_users,
            peak_users,
            chain,
            opts: WebServerOptions::default(),
        }
    }

    /// Active users in the given state.
    #[inline]
    pub fn active_users(&self, state: VmState) -> u32 {
        if state.is_on() {
            self.peak_users
        } else {
            self.normal_users
        }
    }

    /// Exact renewal-process simulation of the number of requests `users`
    /// users generate in `dt` seconds. Each user's first request lands at a
    /// uniformly-distributed phase of one think interval (stationary start).
    pub fn requests_exact<R: Rng + ?Sized>(&self, users: u32, dt: f64, rng: &mut R) -> u64 {
        let mut total = 0u64;
        for _ in 0..users {
            let mut t = rng.gen::<f64>() * self.opts.sample_think(rng);
            while t < dt {
                total += 1;
                t += self.opts.sample_think(rng);
            }
        }
        total
    }

    /// Gaussian approximation of [`requests_exact`](Self::requests_exact):
    /// the renewal counting process over `dt` has mean `users·dt/E[Y]` and
    /// variance `users·dt·Var[Y]/E[Y]³`. Orders of magnitude faster for the
    /// large populations of Table I; used by the live-migration simulator.
    pub fn requests_fast<R: Rng + ?Sized>(&self, users: u32, dt: f64, rng: &mut R) -> u64 {
        let mu = self.opts.mean_think();
        let mean = users as f64 * dt / mu;
        let var = users as f64 * dt * self.opts.var_think() / (mu * mu * mu);
        let std = var.sqrt();
        // Box–Muller.
        let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(f64::MIN_POSITIVE), rng.gen());
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (mean + std * z).round().max(0.0) as u64
    }

    /// Generates a Fig.-8-style trace: `(state, requests)` per interval of
    /// `dt` seconds for `len` intervals, starting OFF.
    pub fn generate_trace<R: Rng + ?Sized>(
        &self,
        len: usize,
        dt: f64,
        rng: &mut R,
    ) -> Vec<(VmState, u64)> {
        let mut out = Vec::with_capacity(len);
        let mut state = VmState::Off;
        for _ in 0..len {
            let reqs = self.requests_exact(self.active_users(state), dt, rng);
            out.push((state, reqs));
            state = self.chain.step(state, rng);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn chain() -> OnOffChain {
        OnOffChain::new(0.01, 0.09)
    }

    #[test]
    fn clamped_think_time_moments_match_closed_forms() {
        let o = WebServerOptions::default();
        // E[Y] = 0.1 + e^{-0.1} ≈ 1.004837.
        assert!((o.mean_think() - 1.0048374).abs() < 1e-6);
        // Var from second moment ≈ 0.99095.
        assert!((o.var_think() - 0.99095).abs() < 1e-4);
    }

    #[test]
    fn sampled_think_times_respect_floor_and_mean() {
        let o = WebServerOptions::default();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let y = o.sample_think(&mut rng);
            assert!(y >= o.think_floor);
            sum += y;
        }
        let mean = sum / n as f64;
        assert!(
            (mean - o.mean_think()).abs() < 0.01,
            "empirical mean {mean}"
        );
    }

    #[test]
    fn exact_request_count_matches_rate() {
        let w = WebServerWorkload::new(400, 800, chain());
        let mut rng = StdRng::seed_from_u64(2);
        let dt = 30.0;
        let reps = 50;
        let total: u64 = (0..reps).map(|_| w.requests_exact(400, dt, &mut rng)).sum();
        let mean = total as f64 / reps as f64;
        let expect = 400.0 * dt * w.opts.rate_per_user();
        assert!(
            (mean - expect).abs() / expect < 0.02,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn fast_approximation_matches_exact_in_mean() {
        let w = WebServerWorkload::new(400, 1200, chain());
        let mut rng = StdRng::seed_from_u64(3);
        let dt = 30.0;
        let reps = 200;
        let exact: f64 = (0..reps)
            .map(|_| w.requests_exact(1200, dt, &mut rng) as f64)
            .sum::<f64>()
            / reps as f64;
        let fast: f64 = (0..reps)
            .map(|_| w.requests_fast(1200, dt, &mut rng) as f64)
            .sum::<f64>()
            / reps as f64;
        assert!(
            (exact - fast).abs() / exact < 0.02,
            "exact {exact} vs fast {fast}"
        );
    }

    #[test]
    fn peak_state_generates_more_requests() {
        let w = WebServerWorkload::new(400, 1600, chain());
        let mut rng = StdRng::seed_from_u64(4);
        let off = w.requests_exact(w.active_users(VmState::Off), 10.0, &mut rng);
        let on = w.requests_exact(w.active_users(VmState::On), 10.0, &mut rng);
        assert!(on > off * 2, "on={on}, off={off}");
    }

    #[test]
    fn trace_has_len_and_starts_off() {
        let w = WebServerWorkload::new(10, 20, chain());
        let mut rng = StdRng::seed_from_u64(5);
        let tr = w.generate_trace(50, 1.0, &mut rng);
        assert_eq!(tr.len(), 50);
        assert_eq!(tr[0].0, VmState::Off);
    }

    #[test]
    fn trace_request_level_tracks_state() {
        let w = WebServerWorkload::new(100, 1600, OnOffChain::new(0.2, 0.2));
        let mut rng = StdRng::seed_from_u64(6);
        let tr = w.generate_trace(400, 1.0, &mut rng);
        let on_mean = {
            let xs: Vec<u64> = tr
                .iter()
                .filter(|(s, _)| s.is_on())
                .map(|&(_, r)| r)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64
        };
        let off_mean = {
            let xs: Vec<u64> = tr
                .iter()
                .filter(|(s, _)| !s.is_on())
                .map(|&(_, r)| r)
                .collect();
            xs.iter().sum::<u64>() as f64 / xs.len().max(1) as f64
        };
        assert!(on_mean > 4.0 * off_mean, "on {on_mean} vs off {off_mean}");
    }

    #[test]
    #[should_panic(expected = "peak population")]
    fn rejects_peak_below_normal() {
        let _ = WebServerWorkload::new(800, 400, chain());
    }

    #[test]
    fn rate_per_user_is_just_under_one() {
        let o = WebServerOptions::default();
        let r = o.rate_per_user();
        assert!(r > 0.99 && r < 1.0, "rate {r}");
    }
}
