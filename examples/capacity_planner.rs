//! A capacity-planning what-if tool built on Algorithm 1 (MapCal).
//!
//! For an operator deciding how aggressively to consolidate: given the
//! fleet's burstiness (`p_on`, `p_off`) and an SLA violation budget `ρ`,
//! print how many spike blocks a PM must reserve per co-location level,
//! the implied CVR, and the capacity a PM needs for k identical VMs.
//!
//! ```text
//! cargo run --example capacity_planner --release
//! ```

use bursty_core::markov::AggregateChain;
use bursty_core::metrics::Table;
use bursty_core::prelude::*;

fn main() {
    let (p_on, p_off) = (0.01, 0.09);
    let on_fraction = p_on / (p_on + p_off);
    println!(
        "fleet burstiness: p_on = {p_on}, p_off = {p_off} \
         (ON {:.0}% of the time; mean spike length {:.1} periods)\n",
        on_fraction * 100.0,
        1.0 / p_off
    );

    // Reservation table across SLA budgets.
    let rhos = [0.001, 0.01, 0.05];
    let mut table = Table::new(&[
        "k",
        "blocks @ rho=0.1%",
        "@ 1%",
        "@ 5%",
        "CVR @ 1% blocks",
        "saved vs peak",
    ]);
    for k in [1usize, 2, 4, 8, 12, 16, 24, 32] {
        let chain = AggregateChain::new(k, p_on, p_off);
        let blocks: Vec<usize> = rhos
            .iter()
            .map(|&r| chain.blocks_needed(r).unwrap())
            .collect();
        let cvr = chain.cvr_with_blocks(blocks[1]).unwrap();
        table.row(&[
            k.to_string(),
            blocks[0].to_string(),
            blocks[1].to_string(),
            blocks[2].to_string(),
            format!("{cvr:.5}"),
            format!("{}", k - blocks[1]),
        ]);
    }
    println!("{}", table.render());

    // What does that mean in capacity terms? k identical VMs
    // (R_b = R_e = 10) on one PM:
    println!("capacity needed for k identical VMs (R_b = R_e = 10), rho = 1%:");
    let mapping = MappingTable::build(32, p_on, p_off, 0.01);
    let mut table = Table::new(&["k", "peak provisioning", "QUEUE reservation", "normal only"]);
    for k in [4usize, 8, 16, 32] {
        let peak = 20.0 * k as f64;
        let queue = 10.0 * k as f64 + 10.0 * mapping.blocks_for(k) as f64;
        let base = 10.0 * k as f64;
        table.row(&[
            k.to_string(),
            format!("{peak:.0}"),
            format!("{queue:.0} ({:.0}% of peak)", queue / peak * 100.0),
            format!("{base:.0}"),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading: the QUEUE column is the provable sweet spot — every PM\n\
         tolerates spikes with probability ≥ 99% per period, at a fraction\n\
         of peak provisioning's footprint."
    );
}
