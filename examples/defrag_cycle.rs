//! The full operational cycle: consolidate → churn fragments the cluster
//! → plan a conservative defragmentation → execute it → verify the
//! performance constraint still holds.
//!
//! ```text
//! cargo run --example defrag_cycle --release
//! ```

use bursty_core::placement::defrag::{apply_plan, plan_defrag};
use bursty_core::placement::online::OnlineCluster;
use bursty_core::prelude::*;
use bursty_core::sim::migration_cost::{total_cost, MigrationParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // Day 0: a QueuingFFD-managed cluster fills up online.
    let mut gen = FleetGenerator::new(42);
    let pms = gen.pms(150);
    let mut cluster = OnlineCluster::new(pms.clone(), 16, 0.01, 0.09, 0.01);
    let fleet = gen.vms(120, WorkloadPattern::EqualSpike);
    for vm in &fleet {
        cluster.arrive(*vm).expect("pool suffices");
    }
    println!(
        "day 0: {} VMs on {} PMs",
        cluster.n_vms(),
        cluster.pms_used()
    );

    // Weeks pass: 45% of tenants leave, holes appear.
    let mut rng = StdRng::seed_from_u64(43);
    let mut survivors = Vec::new();
    for vm in &fleet {
        if rng.gen_bool(0.45) {
            cluster.depart(vm.id);
        } else {
            survivors.push(*vm);
        }
    }
    let fragmented_pms = cluster.pms_used();
    println!(
        "after churn: {} VMs on {fragmented_pms} PMs (fresh packing would need {})",
        survivors.len(),
        Consolidator::new(Scheme::Queue)
            .place(&survivors, &pms)
            .unwrap()
            .pms_used(),
    );

    // Plan a drain-only defrag under the same Eq.-17 strategy, budgeted.
    let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    let assignment: Vec<usize> = survivors
        .iter()
        .map(|vm| cluster.host_of(vm.id).unwrap())
        .collect();
    let plan = plan_defrag(&survivors, &pms, &assignment, &strategy, 25);
    let cost = total_cost(plan.moves.len(), MigrationParams::default());
    println!(
        "defrag plan: {} moves free {} PMs ({:.1} moves/PM, ~{:.0} s of \
         migration traffic, downtime {:.1} s total)",
        plan.moves.len(),
        plan.freed_pms.len(),
        plan.moves_per_freed_pm(),
        cost.total_secs,
        cost.downtime_secs,
    );

    // Execute and verify: the new layout must still honor ρ in simulation.
    let next = apply_plan(&survivors, &assignment, &plan);
    let placement = Placement {
        assignment: next.iter().map(|&j| Some(j)).collect(),
        n_pms: pms.len(),
    };
    let policy = QueuePolicy::new(strategy);
    let cfg = SimConfig {
        steps: 20_000,
        seed: 44,
        migrations_enabled: false,
        ..SimConfig::default()
    };
    let out = Simulator::new(&survivors, &pms, &policy, cfg).run(&placement);
    println!(
        "after defrag: {} PMs, simulated mean CVR {:.4} (bound 0.01) — the \
         energy win costs nothing in guaranteed performance",
        placement.pms_used(),
        out.mean_cvr(),
    );
    assert!(placement.pms_used() < fragmented_pms);
    assert!(out.mean_cvr() <= 0.01);
}
