//! Heterogeneous burstiness: rounding vs grouping.
//!
//! When the fleet mixes calm and hot tenants, the paper's rounding
//! prescription forces one `(p_on, p_off)` on everyone. Mean rounding can
//! silently under-reserve; conservative rounding is safe but prices every
//! calm VM as hot. Grouping the fleet into burstiness bands — each with
//! its own mapping table — recovers most of the waste while keeping the
//! guarantee. This example measures all three on a bimodal fleet.
//!
//! ```text
//! cargo run --example grouped_fleets --release
//! ```

use bursty_core::placement::grouping::grouped_consolidation;
use bursty_core::placement::rounding::{round_with_policy, spread, RoundingPolicy};
use bursty_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A bimodal fleet: half calm (2% ON), half hot (25% ON).
    let mut rng = StdRng::seed_from_u64(2023);
    let vms: Vec<VmSpec> = (0..80)
        .map(|id| {
            let (p_on, p_off) = if id % 2 == 0 {
                (0.002, 0.1)
            } else {
                (0.03, 0.09)
            };
            VmSpec::new(
                id,
                p_on,
                p_off,
                rng.gen_range(8.0..12.0),
                rng.gen_range(8.0..12.0),
            )
        })
        .collect();
    let pms: Vec<PmSpec> = (0..240).map(|j| PmSpec::new(j, 100.0)).collect();

    let s = spread(&vms).unwrap();
    println!(
        "fleet heterogeneity: p_on ∈ [{:.3}, {:.3}], conservative rounding \
         over-reserves ×{:.1}\n",
        s.p_on_range.0, s.p_on_range.1, s.over_reservation_factor
    );

    // Option A: conservative rounding, one mapping table for everyone.
    let (c_on, c_off) = round_with_policy(&vms, RoundingPolicy::Conservative).unwrap();
    let conservative = Consolidator::new(Scheme::Queue)
        .with_probabilities(c_on, c_off)
        .place(&vms, &pms)
        .unwrap();

    // Option B: mean rounding (unsafe — shown for contrast only).
    let (m_on, m_off) = round_with_policy(&vms, RoundingPolicy::Mean).unwrap();
    let mean = Consolidator::new(Scheme::Queue)
        .with_probabilities(m_on, m_off)
        .place(&vms, &pms)
        .unwrap();

    // Option C: grouped consolidation, 2 burstiness bands.
    let grouped = grouped_consolidation(&vms, &pms, 16, 0.01, 2).unwrap();

    println!("PMs used:");
    println!("  conservative rounding : {}", conservative.pms_used());
    println!(
        "  mean rounding         : {} (no guarantee!)",
        mean.pms_used()
    );
    println!("  grouped (2 bands)     : {}", grouped.pms_used());
    for (gi, info) in grouped.groups.iter().enumerate() {
        println!(
            "    band {gi}: {} VMs, rounded (p_on, p_off) = ({:.3}, {:.3})",
            info.members.len(),
            info.rounded.0,
            info.rounded.1
        );
    }

    // Verify the safety claims in simulation against the TRUE chains.
    let cfg = SimConfig {
        steps: 20_000,
        seed: 7,
        migrations_enabled: false,
        ..SimConfig::default()
    };
    let policy = ObservedPolicy::rb(); // passive monitor; no migration
    let check = |label: &str, placement: &Placement| {
        let out = Simulator::new(&vms, &pms, &policy, cfg).run(placement);
        println!("  {label:<22}: simulated mean CVR {:.4}", out.mean_cvr());
        out.mean_cvr()
    };
    println!("\nsimulated against the true heterogeneous workloads:");
    let c_cvr = check("conservative rounding", &conservative);
    let m_cvr = check("mean rounding", &mean);
    let g_cvr = check("grouped (2 bands)", &grouped.to_placement());

    assert!(c_cvr <= 0.01, "conservative must hold the bound");
    assert!(g_cvr <= 0.01, "grouping must hold the bound");
    println!(
        "\nReading: grouping packs {} PMs fewer than conservative rounding \
         while both honor ρ; mean rounding {} (CVR {m_cvr:.4}).",
        conservative.pms_used() as i64 - grouped.pms_used() as i64,
        if m_cvr > 0.01 {
            "breaks the bound"
        } else {
            "happened to hold here"
        },
    );
}
