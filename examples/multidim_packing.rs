//! Multi-dimensional consolidation (§IV-E): CPU and memory packed with
//! per-dimension queuing reservation, versus projecting correlated
//! dimensions to one scalar.
//!
//! ```text
//! cargo run --example multidim_packing --release
//! ```

use bursty_core::placement::multidim::{first_fit_multidim, MultiDimPmSpec};
use bursty_core::prelude::*;
use bursty_core::workload::multidim::{MultiDimVmSpec, ResourceVec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);

    // 80 VMs with independent CPU/memory demands: dimension 0 = CPU,
    // dimension 1 = memory.
    let vms: Vec<MultiDimVmSpec> = (0..80)
        .map(|id| {
            MultiDimVmSpec::new(
                id,
                0.01,
                0.09,
                ResourceVec::new(vec![rng.gen_range(2.0..12.0), rng.gen_range(4.0..16.0)]),
                ResourceVec::new(vec![rng.gen_range(2.0..12.0), rng.gen_range(4.0..16.0)]),
            )
        })
        .collect();
    let pms: Vec<MultiDimPmSpec> = (0..80)
        .map(|id| MultiDimPmSpec {
            id,
            capacity: ResourceVec::new(vec![64.0, 96.0]),
        })
        .collect();

    // Route 1 (uncorrelated dimensions): per-dimension reservation + FF.
    let mapping = MappingTable::build(16, 0.01, 0.09, 0.01);
    let placement = first_fit_multidim(&vms, &pms, &mapping).expect("pool suffices");
    println!(
        "per-dimension reservation: {} PMs for {} VMs",
        placement.pms_used(),
        vms.len()
    );

    // Route 2 (correlated dimensions): project to one scalar and reuse the
    // full Algorithm-2 pipeline. Weights normalize each dimension by the
    // PM capacity so both contribute equally.
    let weights = [1.0 / 64.0, 1.0 / 96.0];
    let scalar_vms: Vec<VmSpec> = vms.iter().map(|v| v.project(&weights)).collect();
    let scalar_pms: Vec<PmSpec> = pms
        .iter()
        .map(|p| PmSpec::new(p.id, p.capacity.project(&weights)))
        .collect();
    let scalar_placement = Consolidator::new(Scheme::Queue)
        .place(&scalar_vms, &scalar_pms)
        .expect("pool suffices");
    println!(
        "projected-scalar QueuingFFD: {} PMs (bound is optimistic — a \n\
         scalar fit can hide per-dimension overflow, which is why the paper \n\
         reserves per dimension when resources are uncorrelated)",
        scalar_placement.pms_used()
    );

    // Peak-provisioning reference in the bottleneck dimension.
    let peak_placement = Consolidator::new(Scheme::Rp)
        .place(&scalar_vms, &scalar_pms)
        .expect("pool suffices");
    println!(
        "projected-scalar FFD by R_p: {} PMs",
        peak_placement.pms_used()
    );
}
