//! Online consolidation (§IV-E): VMs arrive and leave a live cluster.
//!
//! Demonstrates single arrivals (first PM satisfying Eq. 17), departures
//! (queue size recalculated), batch arrivals (Algorithm-2 ordering), and
//! periodic re-rounding of heterogeneous switch probabilities.
//!
//! ```text
//! cargo run --example online_cloud --release
//! ```

use bursty_core::placement::online::{round_probabilities, OnlineCluster};
use bursty_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut gen = FleetGenerator::new(77);
    let pms = gen.pms(120);
    let mut cluster = OnlineCluster::new(pms, 16, 0.01, 0.09, 0.01);
    let mut rng = StdRng::seed_from_u64(3);

    // Day 0: a tenant brings up 60 VMs at once (batch arrival).
    let batch = gen.vms_table_i(60, WorkloadPattern::EqualSpike);
    let placed = cluster.arrive_batch(batch).expect("capacity suffices");
    println!(
        "batch of {} VMs placed on {} PMs",
        placed.len(),
        cluster.pms_used()
    );

    // Then a steady trickle: 100 arrival/departure events.
    let mut next_id = 1000;
    let mut live: Vec<usize> = placed.iter().map(|&(id, _)| id).collect();
    let (mut arrivals, mut departures, mut rejections) = (0, 0, 0);
    for _ in 0..100 {
        if rng.gen_bool(0.6) || live.is_empty() {
            // Arrival with its own (heterogeneous) switch probabilities.
            let vm = VmSpec::new(
                next_id,
                rng.gen_range(0.005..0.02),
                rng.gen_range(0.05..0.15),
                rng.gen_range(4.0..16.0),
                rng.gen_range(4.0..16.0),
            );
            next_id += 1;
            match cluster.arrive(vm) {
                Ok(_) => {
                    live.push(vm.id);
                    arrivals += 1;
                }
                Err(_) => rejections += 1,
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            cluster.depart(id);
            departures += 1;
        }
    }
    println!(
        "after churn: {arrivals} arrivals, {departures} departures, \
         {rejections} rejections; {} VMs on {} PMs",
        cluster.n_vms(),
        cluster.pms_used()
    );

    // Periodic recalibration: the mapping table is rebuilt around the
    // population's rounded p_on/p_off (the paper's heterogeneity fix).
    // Tightened probabilities can leave incumbent PMs over-committed under
    // the *new* Eq. 17 — those would be migration candidates.
    if let Some((p_on, p_off)) = cluster.recalibrate() {
        println!("recalibrated switch probabilities: p_on = {p_on:.4}, p_off = {p_off:.4}");
    }
    cluster
        .check_consistency()
        .expect("cluster invariants hold");
    let drifted = cluster.infeasible_pms();
    println!(
        "cluster invariants verified; {} PM(s) over-committed under the \
         recalibrated table{}",
        drifted.len(),
        if drifted.is_empty() {
            ""
        } else {
            " (would migrate to fix)"
        }
    );

    // Rounding in isolation, for the curious:
    let sample = vec![
        VmSpec::new(0, 0.01, 0.05, 1.0, 1.0),
        VmSpec::new(1, 0.03, 0.15, 1.0, 1.0),
    ];
    let (p_on, p_off) = round_probabilities(&sample).unwrap();
    println!("rounding example: ({p_on:.3}, {p_off:.3}) from two heterogeneous VMs");
}
