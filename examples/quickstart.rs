//! Quickstart: consolidate a bursty fleet and verify the performance
//! constraint holds at runtime.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use bursty_core::prelude::*;

fn main() {
    // 1. A fleet of 100 bursty VMs (equal base/spike sizes) and a PM pool.
    //    Every VM follows a two-state Markov chain: it spikes rarely
    //    (p_on = 0.01 per 30 s period) and briefly (mean 1/p_off ≈ 11
    //    periods).
    let mut gen = FleetGenerator::new(2013);
    let vms = gen.vms(100, WorkloadPattern::EqualSpike);
    let pms = gen.pms(120);

    // 2. Consolidate three ways: the paper's queuing-theory reservation
    //    (QUEUE), peak provisioning (RP) and normal provisioning (RB).
    for scheme in [Scheme::Queue, Scheme::Rp, Scheme::Rb] {
        let consolidator = Consolidator::new(scheme);
        let placement = consolidator
            .place(&vms, &pms)
            .expect("pool is large enough");

        // 3. Run the cluster for 100 update periods (the paper's σ = 30 s,
        //    100 σ evaluation period) with live migration enabled.
        let outcome = consolidator.simulate(
            &vms,
            &pms,
            &placement,
            SimConfig {
                seed: 7,
                ..SimConfig::default()
            },
        );

        println!(
            "{:<6} initial PMs: {:>3}   final PMs: {:>3}   migrations: {:>3}   \
             mean CVR: {:.4}   energy: {:.2} kWh",
            scheme.label(),
            placement.pms_used(),
            outcome.final_pms_used,
            outcome.total_migrations(),
            outcome.mean_cvr(),
            outcome.energy_joules / 3.6e6,
        );
    }

    // Expected shape (cf. paper Figs. 5/9): QUEUE uses ~30% fewer PMs than
    // RP while keeping CVR ≤ ρ = 0.01 and migrating almost never; RB uses
    // the fewest PMs but migrates constantly.
}
