//! The data-driven pipeline: from raw monitoring traces to a consolidated,
//! SLA-guaranteed cluster.
//!
//! The paper assumes each VM's `(p_on, p_off, R_b, R_e)` is known. Here we
//! start one step earlier: "measured" demand traces (sampled, in reality,
//! from a monitor) are fitted to the ON-OFF model, burstiness is profiled,
//! heterogeneous switch probabilities are rounded conservatively, and the
//! fitted specs drive QueuingFFD. A final simulation confirms the CVR
//! bound holds for the *true* (generating) workloads.
//!
//! ```text
//! cargo run --example trace_fitting --release
//! ```

use bursty_core::placement::rounding::{round_with_policy, spread, RoundingPolicy};
use bursty_core::prelude::*;
use bursty_core::workload::analysis;
use bursty_core::workload::trace::DemandTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // --- Step 0: the "truth" — heterogeneous VMs we pretend not to know.
    let mut rng = StdRng::seed_from_u64(60);
    let truth: Vec<VmSpec> = (0..60)
        .map(|id| {
            VmSpec::new(
                id,
                rng.gen_range(0.008..0.02),
                rng.gen_range(0.06..0.15),
                rng.gen_range(4.0..16.0),
                rng.gen_range(4.0..16.0),
            )
        })
        .collect();

    // --- Step 1: "monitoring" — sample a demand trace per VM.
    let traces: Vec<Vec<f64>> = truth
        .iter()
        .map(|vm| DemandTrace::sample(*vm, 20_000, &mut rng).demands())
        .collect();

    // --- Step 2: profile and fit.
    let sample_profile = analysis::profile(&traces[0]).unwrap();
    println!(
        "trace 0 burstiness: lag-1 autocorrelation {:.3}, IDC(16) {:.1}, \
         mean spike length {:.1} periods",
        sample_profile.acf1, sample_profile.idc16, sample_profile.runs.mean_length
    );

    let mut fitted = Vec::new();
    for (id, trace) in traces.iter().enumerate() {
        let model = fit_trace(trace).expect("bursty traces are fittable");
        fitted.push(model.to_spec(id, trace.len()));
    }
    let fit_err: f64 = fitted
        .iter()
        .zip(&truth)
        .map(|(f, t)| ((f.p_on - t.p_on) / t.p_on).abs())
        .sum::<f64>()
        / truth.len() as f64;
    println!(
        "fitted {} VMs; mean relative p_on error {:.1}%",
        fitted.len(),
        fit_err * 100.0
    );

    // --- Step 3: round heterogeneous probabilities conservatively.
    let s = spread(&fitted).unwrap();
    let (p_on, p_off) = round_with_policy(&fitted, RoundingPolicy::Conservative).unwrap();
    println!(
        "probability spread: p_on in [{:.3}, {:.3}], p_off in [{:.3}, {:.3}] → \
         conservative rounding ({p_on:.3}, {p_off:.3}), over-reservation ×{:.2}",
        s.p_on_range.0, s.p_on_range.1, s.p_off_range.0, s.p_off_range.1, s.over_reservation_factor
    );

    // --- Step 4: consolidate on the fitted specs.
    let mut gen = FleetGenerator::new(61);
    let pms = gen.pms(120);
    let consolidator = Consolidator::new(Scheme::Queue).with_probabilities(p_on, p_off);
    let placement = consolidator.place(&fitted, &pms).expect("pool suffices");
    println!("consolidated onto {} PMs", placement.pms_used());

    // --- Step 5: validate against the TRUE workloads.
    let policy = consolidator.policy();
    let cfg = SimConfig {
        steps: 20_000,
        seed: 62,
        migrations_enabled: false,
        ..SimConfig::default()
    };
    let out = Simulator::new(&truth, &pms, policy.as_ref(), cfg).run(&placement);
    println!(
        "simulated against the generating workloads: mean CVR {:.4} \
         (bound rho = 0.01) — the conservative rounding absorbs both fit \
         error and heterogeneity",
        out.mean_cvr()
    );
    assert!(out.mean_cvr() <= 0.01, "the pipeline's guarantee must hold");
}
