//! A web-server farm under flash crowds — the paper's §V-D scenario.
//!
//! Each VM is a web server visited by a user population (Table I size
//! classes). Users think for `max(0.1 s, Exp(1 s))` between requests; a
//! flash crowd (the ON state) triples the population. We consolidate the
//! farm with each scheme and watch migrations, PM usage and the actual
//! request traffic of one server.
//!
//! ```text
//! cargo run --example webserver_farm --release
//! ```

use bursty_core::markov::OnOffChain;
use bursty_core::metrics::plot::ascii_series;
use bursty_core::prelude::*;
use bursty_core::workload::WebServerWorkload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // --- Part 1: what one server's traffic actually looks like. ---------
    let chain = OnOffChain::new(0.05, 0.09);
    let server = WebServerWorkload::new(
        SizeClass::Medium.users(),
        SizeClass::Medium.users() + SizeClass::Large.users(),
        chain,
    );
    let mut rng = StdRng::seed_from_u64(1);
    let trace = server.generate_trace(300, 1.0, &mut rng);
    let series: Vec<f64> = trace.iter().map(|&(_, r)| r as f64).collect();
    println!("One medium web server (800 users, flash crowds to 2400), requests/s:");
    println!("{}", ascii_series(&series, 90, 8));

    // --- Part 2: consolidating a farm of 150 such servers. --------------
    let pattern = WorkloadPattern::LargeSpike; // flash crowds: R_e > R_b
    let mut gen = FleetGenerator::new(99);
    let vms = gen.vms_table_i(150, pattern);
    let pms = gen.pms(450);

    println!("Farm: 150 web servers, pattern {pattern}, 10 replications each:\n");
    println!(
        "{:<6} {:>12} {:>12} {:>12} {:>12}",
        "scheme", "migrations", "final PMs", "mean CVR", "energy kWh"
    );
    for scheme in [Scheme::Queue, Scheme::Rb, Scheme::RbEx(0.3)] {
        let consolidator = Consolidator::new(scheme);
        let outcomes = replicate(10, 5000, |seed| {
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let (_, out) = consolidator
                .evaluate(&vms, &pms, cfg)
                .expect("pool suffices");
            out
        });
        let migrations = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.total_migrations() as f64)
                .collect::<Vec<_>>(),
        );
        let final_pms = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.final_pms_used as f64)
                .collect::<Vec<_>>(),
        );
        let cvr = Summary::of(
            &outcomes
                .iter()
                .map(SimOutcome::mean_cvr)
                .collect::<Vec<_>>(),
        );
        let energy = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.energy_joules / 3.6e6)
                .collect::<Vec<_>>(),
        );
        println!(
            "{:<6} {:>12} {:>12} {:>12} {:>12}",
            scheme.label(),
            format!("{:.1}", migrations.mean),
            format!("{:.1}", final_pms.mean),
            format!("{:.4}", cvr.mean),
            format!("{:.2}", energy.mean),
        );
    }
    println!(
        "\nShape check (paper Fig. 9, R_b < R_e): RB migrates an order of\n\
         magnitude more than QUEUE; RB-EX sits in between; QUEUE's CVR\n\
         stays near ρ = 0.01 while RB's packing melts down."
    );
}
