//! Cross-validation between independent implementations of the same
//! quantities — the strongest correctness evidence the workspace has:
//! two things built separately must agree or one is wrong.

use bursty_core::markov::birthdeath::BirthDeathApprox;
use bursty_core::markov::BinomialPmf;
use bursty_core::metrics::slo;
use bursty_core::placement::multidim::{first_fit_multidim, MultiDimPmSpec};
use bursty_core::prelude::*;
use bursty_core::sim::des::{DesConfig, DesSimulator};
use bursty_core::sim::multidim::simulate_multidim;
use bursty_core::workload::diurnal::DiurnalSpec;
use bursty_core::workload::multidim::{MultiDimVmSpec, ResourceVec};

#[test]
fn three_independent_stationary_distributions_agree() {
    // (1) dense Eq.-12 matrix + Gaussian elimination, (2) power
    // iteration, (3) birth-death product form — all must coincide.
    for &(k, p_on, p_off) in &[(8usize, 0.01, 0.09), (12, 0.2, 0.3), (5, 0.5, 0.4)] {
        let chain = AggregateChain::new(k, p_on, p_off);
        let direct = chain.stationary().unwrap();
        let power = chain.stationary_by_power().unwrap();
        let product = BirthDeathApprox::new(k, p_on, p_off).stationary();
        // And the closed-form binomial, the fourth witness.
        let binom = BinomialPmf::new(k as u64, p_on / (p_on + p_off)).pmf_all();
        for i in 0..=k {
            assert!(
                (direct[i] - power[i]).abs() < 1e-8,
                "direct vs power at {i}"
            );
            assert!(
                (direct[i] - product[i]).abs() < 1e-9,
                "direct vs product at {i}"
            );
            assert!(
                (direct[i] - binom[i]).abs() < 1e-9,
                "direct vs binomial at {i}"
            );
        }
    }
}

#[test]
fn des_migration_duration_equals_stepped_dual_count_in_expectation() {
    // The stepped engine's `dual_count_steps` and the DES's
    // `migration_duration` model the same copy overhead. With matched
    // settings, violation pressure should land in the same ballpark.
    let mut gen = FleetGenerator::new(1);
    let vms = gen.vms(60, WorkloadPattern::EqualSpike);
    let pms = gen.pms(180);
    let placement = Consolidator::new(Scheme::Rb).place(&vms, &pms).unwrap();
    let policy = ObservedPolicy::rb();

    let stepped: f64 = (0..6)
        .map(|seed| {
            let cfg = SimConfig {
                seed,
                dual_count_steps: 2,
                ..Default::default()
            };
            Simulator::new(&vms, &pms, &policy, cfg)
                .run(&placement)
                .total_violation_steps as f64
        })
        .sum::<f64>()
        / 6.0;
    let des: f64 = (0..6)
        .map(|seed| {
            let cfg = DesConfig {
                seed,
                migration_duration: 2.0,
                ..Default::default()
            };
            DesSimulator::new(&vms, &pms, &policy, cfg)
                .run(&placement)
                .total_violation_steps as f64
        })
        .sum::<f64>()
        / 6.0;
    let ratio = stepped.max(des) / stepped.min(des).max(1.0);
    assert!(ratio < 2.5, "stepped {stepped} vs DES {des}");
}

#[test]
fn diurnal_fit_plan_simulate_stays_conservative() {
    // Model mismatch end to end: fit two-level models to diurnal+burst
    // traces, plan with QueuingFFD, then simulate the *actual* diurnal
    // workloads against the plan by replaying fresh samples.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let chain = OnOffChain::new(0.01, 0.09);
    let specs: Vec<DiurnalSpec> = (0..24)
        .map(|i| DiurnalSpec::new(10.0 + (i % 4) as f64, 2.5, 2880.0, 10.0, chain))
        .collect();
    let mut rng = StdRng::seed_from_u64(5);
    let fitted: Vec<VmSpec> = specs
        .iter()
        .enumerate()
        .map(|(id, s)| {
            let trace = s.sample(30_000, &mut rng);
            fit_trace(&trace).unwrap().to_spec(id, trace.len())
        })
        .collect();
    let mut gen = FleetGenerator::new(6);
    let pms = gen.pms(48);
    let consolidator = Consolidator::new(Scheme::Queue);
    let placement = consolidator.place(&fitted, &pms).unwrap();

    // Replay the true diurnal processes against the placement and count
    // violations manually.
    let steps = 20_000usize;
    let per_pm = placement.per_pm();
    let traces: Vec<Vec<f64>> = specs.iter().map(|s| s.sample(steps, &mut rng)).collect();
    let mut violations = 0usize;
    let mut active = 0usize;
    #[allow(clippy::needless_range_loop)] // t indexes a column across rows
    for t in 0..steps {
        for (j, hosted) in per_pm.iter().enumerate() {
            if hosted.is_empty() {
                continue;
            }
            active += 1;
            let demand: f64 = hosted.iter().map(|&i| traces[i][t]).sum();
            if demand > pms[j].capacity + 1e-9 {
                violations += 1;
            }
        }
    }
    let cvr = violations as f64 / active as f64;
    assert!(
        cvr <= 0.01,
        "conservative fit must keep the true diurnal fleet within rho: {cvr}"
    );
}

#[test]
fn multidim_pack_and_simulate_close_the_loop() {
    let vms: Vec<MultiDimVmSpec> = (0..30)
        .map(|i| {
            MultiDimVmSpec::new(
                i,
                0.01,
                0.09,
                ResourceVec::new(vec![8.0 + (i % 3) as f64, 5.0]),
                ResourceVec::new(vec![6.0, 4.0 + (i % 2) as f64]),
            )
        })
        .collect();
    let pms: Vec<MultiDimPmSpec> = (0..30)
        .map(|id| MultiDimPmSpec {
            id,
            capacity: ResourceVec::new(vec![70.0, 45.0]),
        })
        .collect();
    let mapping = MappingTable::build(16, 0.01, 0.09, 0.01);
    let placement = first_fit_multidim(&vms, &pms, &mapping).unwrap();
    assert!(placement.pms_used() < 30, "must consolidate");
    let out = simulate_multidim(&vms, &pms, &placement, 20_000, 7);
    assert!(out.mean_cvr() <= 0.012, "multidim CVR {}", out.mean_cvr());
}

#[test]
fn slo_language_matches_measured_cvr() {
    let mut gen = FleetGenerator::new(8);
    let vms = gen.vms(80, WorkloadPattern::EqualSpike);
    let pms = gen.pms(80);
    let cfg = SimConfig {
        steps: 20_000,
        seed: 9,
        migrations_enabled: false,
        ..Default::default()
    };
    let (_, out) = Consolidator::new(Scheme::Queue)
        .evaluate(&vms, &pms, cfg)
        .unwrap();
    let summary = slo::summarize(out.mean_cvr());
    // ρ = 1% ⇒ at least two nines; measured CVR is usually ~0.4%, i.e.
    // two-to-three nines and ≤ ~435 violation-min/month.
    assert!(summary.nines >= 2, "nines {}", summary.nines);
    assert!(summary.violation_mins_per_month <= slo::violation_secs_per_month(0.01) / 60.0);
    // Round trip through the budget parser.
    let budget = slo::cvr_budget_from_availability("99").unwrap();
    assert!(out.mean_cvr() <= budget);
}

#[test]
fn fig7_complexity_shape_holds_empirically() {
    // O(d⁴): quadrupling d from 8 to 32 must grow mapping-table cost far
    // more than linearly. Coarse wall-clock check with generous slack —
    // the Criterion benches carry the precise numbers.
    use std::time::Instant;
    let time_build = |d: usize| {
        let start = Instant::now();
        for _ in 0..3 {
            let _ = MappingTable::build(d, 0.01, 0.09, 0.01);
        }
        start.elapsed().as_secs_f64() / 3.0
    };
    let t8 = time_build(8);
    let t32 = time_build(32);
    assert!(
        t32 > 4.0 * t8,
        "d⁴ scaling should show: t(8) = {t8:.2e}, t(32) = {t32:.2e}"
    );
}
