//! End-to-end integration across all crates: place → simulate → report,
//! determinism, constraint validation, and baseline relationships.

use bursty_core::placement::placement::consolidation_improvement;
use bursty_core::prelude::*;

fn fleet(n: usize, pattern: WorkloadPattern, seed: u64) -> (Vec<VmSpec>, Vec<PmSpec>) {
    let mut gen = FleetGenerator::new(seed);
    let vms = gen.vms(n, pattern);
    let pms = gen.pms(3 * n);
    (vms, pms)
}

#[test]
fn full_pipeline_is_deterministic() {
    let (vms, pms) = fleet(100, WorkloadPattern::EqualSpike, 1);
    let consolidator = Consolidator::new(Scheme::Queue);
    let cfg = SimConfig {
        seed: 42,
        ..Default::default()
    };
    let (p1, o1) = consolidator.evaluate(&vms, &pms, cfg).unwrap();
    let (p2, o2) = consolidator.evaluate(&vms, &pms, cfg).unwrap();
    assert_eq!(p1, p2);
    assert_eq!(o1.migrations, o2.migrations);
    assert_eq!(o1.final_pms_used, o2.final_pms_used);
    assert_eq!(o1.total_violation_steps, o2.total_violation_steps);
    assert_eq!(o1.energy_joules, o2.energy_joules);
}

#[test]
fn queue_placement_validates_against_eq17_on_every_pattern() {
    for pattern in WorkloadPattern::ALL {
        let (vms, pms) = fleet(150, pattern, 7);
        let consolidator = Consolidator::new(Scheme::Queue);
        let placement = consolidator.place(&vms, &pms).unwrap();
        assert!(placement.is_complete());
        let strategy = consolidator.strategy();
        assert_eq!(
            placement.validate(&vms, &pms, strategy.as_ref()),
            Ok(()),
            "pattern {pattern}"
        );
        // Per-PM co-location never exceeds d.
        for hosted in placement.per_pm() {
            assert!(hosted.len() <= 16);
        }
    }
}

#[test]
fn packing_order_rb_leq_queue_leq_rp_on_all_patterns() {
    for pattern in WorkloadPattern::ALL {
        for seed in [3u64, 11, 19] {
            let (vms, pms) = fleet(120, pattern, seed);
            let q = Consolidator::new(Scheme::Queue)
                .place(&vms, &pms)
                .unwrap()
                .pms_used();
            let rp = Consolidator::new(Scheme::Rp)
                .place(&vms, &pms)
                .unwrap()
                .pms_used();
            let rb = Consolidator::new(Scheme::Rb)
                .place(&vms, &pms)
                .unwrap()
                .pms_used();
            assert!(rb <= q, "{pattern} seed {seed}: RB {rb} > QUEUE {q}");
            assert!(q <= rp, "{pattern} seed {seed}: QUEUE {q} > RP {rp}");
        }
    }
}

#[test]
fn rbex_packs_between_rb_and_peak_in_pm_count() {
    let (vms, pms) = fleet(120, WorkloadPattern::EqualSpike, 13);
    let rb = Consolidator::new(Scheme::Rb)
        .place(&vms, &pms)
        .unwrap()
        .pms_used();
    let rbex = Consolidator::new(Scheme::RbEx(0.3))
        .place(&vms, &pms)
        .unwrap()
        .pms_used();
    let rp = Consolidator::new(Scheme::Rp)
        .place(&vms, &pms)
        .unwrap()
        .pms_used();
    assert!(rb <= rbex, "reserving space cannot reduce PM count");
    assert!(
        rbex <= rp + 2,
        "30% reserve should not exceed peak provisioning much"
    );
}

#[test]
fn migration_dynamics_rank_schemes_like_the_paper() {
    // Fig. 9 shape over a replicated run: RB ≫ RB-EX ≥ QUEUE in
    // migrations; RB ≤ QUEUE in final PMs.
    let mut gen = FleetGenerator::new(2024);
    let vms = gen.vms_table_i(120, WorkloadPattern::EqualSpike);
    let pms = gen.pms(360);

    let run = |scheme: Scheme| {
        let consolidator = Consolidator::new(scheme);
        let outs = replicate(6, 555, |seed| {
            let cfg = SimConfig {
                seed,
                ..Default::default()
            };
            let (_, out) = consolidator.evaluate(&vms, &pms, cfg).unwrap();
            out
        });
        let migrations = outs
            .iter()
            .map(|o| o.total_migrations() as f64)
            .sum::<f64>()
            / outs.len() as f64;
        let pms_final =
            outs.iter().map(|o| o.final_pms_used as f64).sum::<f64>() / outs.len() as f64;
        (migrations, pms_final)
    };

    let (queue_migrations, queue_pms) = run(Scheme::Queue);
    let (rb_migrations, rb_pms) = run(Scheme::Rb);
    let (rbex_migrations, _) = run(Scheme::RbEx(0.3));

    assert!(
        rb_migrations > 5.0 * queue_migrations.max(0.5),
        "RB {rb_migrations} vs QUEUE {queue_migrations}"
    );
    assert!(
        rbex_migrations < rb_migrations,
        "RB-EX {rbex_migrations} must migrate less than RB {rb_migrations}"
    );
    assert!(
        rb_pms <= queue_pms,
        "RB final PMs {rb_pms} vs QUEUE {queue_pms}"
    );
    assert!(queue_migrations <= 3.0, "QUEUE must migrate rarely");
}

#[test]
fn improvement_metric_matches_fig5_bounds() {
    // At n = 200 the measured QUEUE-vs-RP improvement must land in the
    // paper's ballpark per pattern (generous ±10-point bands).
    let bands = [
        (WorkloadPattern::EqualSpike, 0.18, 0.40),
        (WorkloadPattern::SmallSpike, 0.05, 0.28),
        (WorkloadPattern::LargeSpike, 0.32, 0.55),
    ];
    for (pattern, lo, hi) in bands {
        let (vms, pms) = fleet(200, pattern, 31);
        let q = Consolidator::new(Scheme::Queue)
            .place(&vms, &pms)
            .unwrap()
            .pms_used();
        let rp = Consolidator::new(Scheme::Rp)
            .place(&vms, &pms)
            .unwrap()
            .pms_used();
        let improvement = consolidation_improvement(q, rp);
        assert!(
            (lo..=hi).contains(&improvement),
            "{pattern}: improvement {improvement:.2} outside [{lo}, {hi}]"
        );
    }
}

#[test]
fn energy_tracks_pm_count_across_schemes() {
    let (vms, pms) = fleet(100, WorkloadPattern::EqualSpike, 5);
    let cfg = SimConfig {
        seed: 77,
        ..Default::default()
    };
    let (qp, qo) = Consolidator::new(Scheme::Queue)
        .evaluate(&vms, &pms, cfg)
        .unwrap();
    let (rp_p, rp_o) = Consolidator::new(Scheme::Rp)
        .evaluate(&vms, &pms, cfg)
        .unwrap();
    assert!(qp.pms_used() < rp_p.pms_used());
    assert!(
        qo.energy_joules < rp_o.energy_joules,
        "fewer PMs must mean less energy: {} vs {}",
        qo.energy_joules,
        rp_o.energy_joules
    );
}

#[test]
fn replicated_runs_are_order_independent() {
    let (vms, pms) = fleet(60, WorkloadPattern::LargeSpike, 8);
    let consolidator = Consolidator::new(Scheme::Rb);
    let f = |seed: u64| {
        let cfg = SimConfig {
            seed,
            ..Default::default()
        };
        let (_, out) = consolidator.evaluate(&vms, &pms, cfg).unwrap();
        out.total_migrations()
    };
    let parallel = replicate(8, 100, f);
    let sequential: Vec<usize> = (100..108).map(f).collect();
    assert_eq!(parallel, sequential);
}
