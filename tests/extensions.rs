//! Integration tests for the extension subsystems working together:
//! trace fitting → rounding → consolidation, SBP comparison, exact-optimum
//! validation, churn + stabilization, and DES/stepped cross-validation.

use bursty_core::placement::exact::{optimal_packing, ExactResult};
use bursty_core::placement::rounding::{round_with_policy, RoundingPolicy};
use bursty_core::placement::sbp::{pack_sbp, pms_used as sbp_pms_used};
use bursty_core::prelude::*;
use bursty_core::sim::des::{DesConfig, DesSimulator};
use bursty_core::workload::trace::DemandTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn fit_round_place_simulate_pipeline_holds_the_bound() {
    // End-to-end data-driven pipeline against the true workloads.
    let mut rng = StdRng::seed_from_u64(1);
    let truth: Vec<VmSpec> = (0..40)
        .map(|id| {
            VmSpec::new(
                id,
                rng.gen_range(0.008..0.015),
                rng.gen_range(0.07..0.12),
                rng.gen_range(4.0..16.0),
                rng.gen_range(4.0..16.0),
            )
        })
        .collect();
    let fitted: Vec<VmSpec> = truth
        .iter()
        .map(|vm| {
            let demands = DemandTrace::sample(*vm, 30_000, &mut rng).demands();
            fit_trace(&demands).unwrap().to_spec(vm.id, demands.len())
        })
        .collect();
    let (p_on, p_off) = round_with_policy(&fitted, RoundingPolicy::Conservative).unwrap();
    let consolidator = Consolidator::new(Scheme::Queue).with_probabilities(p_on, p_off);
    let mut gen = FleetGenerator::new(2);
    let pms = gen.pms(80);
    let placement = consolidator.place(&fitted, &pms).unwrap();

    let policy = consolidator.policy();
    let cfg = SimConfig {
        steps: 20_000,
        seed: 3,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&truth, &pms, policy.as_ref(), cfg).run(&placement);
    assert!(
        out.mean_cvr() <= 0.011,
        "pipeline mean CVR {}",
        out.mean_cvr()
    );
}

#[test]
fn sbp_packs_comparably_but_violates_more() {
    let mut gen = FleetGenerator::new(4);
    let vms = gen.vms(120, WorkloadPattern::EqualSpike);
    let pms = gen.pms(120);
    let caps: Vec<f64> = pms.iter().map(|p| p.capacity).collect();

    let queue = Consolidator::new(Scheme::Queue);
    let q_placement = queue.place(&vms, &pms).unwrap();
    let sbp_assignment = pack_sbp(&vms, &caps, 0.01).unwrap();
    let sbp_count = sbp_pms_used(&sbp_assignment, pms.len());

    // PM counts in the same ballpark (within 20%).
    let q_count = q_placement.pms_used();
    assert!(
        (sbp_count as f64 - q_count as f64).abs() / q_count as f64 <= 0.2,
        "QUEUE {q_count} vs SBP {sbp_count}"
    );

    // Simulated CVR: SBP overruns its budget, QUEUE does not.
    let cfg = SimConfig {
        steps: 8_000,
        seed: 5,
        migrations_enabled: false,
        ..Default::default()
    };
    let q_out = queue.simulate(&vms, &pms, &q_placement, cfg);
    let sbp_placement = Placement {
        assignment: sbp_assignment.iter().map(|&j| Some(j)).collect(),
        n_pms: pms.len(),
    };
    let policy = ObservedPolicy::rb();
    let sbp_out = Simulator::new(&vms, &pms, &policy, cfg).run(&sbp_placement);
    assert!(q_out.mean_cvr() <= 0.011, "QUEUE CVR {}", q_out.mean_cvr());
    assert!(
        sbp_out.mean_cvr() > 1.5 * q_out.mean_cvr(),
        "SBP {} vs QUEUE {}",
        sbp_out.mean_cvr(),
        q_out.mean_cvr()
    );
}

#[test]
fn queueing_ffd_is_near_optimal_on_small_instances() {
    let strategy = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    for seed in 0..6u64 {
        let mut gen = FleetGenerator::new(600 + seed);
        let vms = gen.vms(12, WorkloadPattern::EqualSpike);
        let pms: Vec<PmSpec> = (0..12).map(|j| PmSpec::new(j, 90.0)).collect();
        let ffd = first_fit(&vms, &pms, &strategy).unwrap().pms_used();
        match optimal_packing(&vms, 90.0, &strategy, 2_000_000) {
            ExactResult::Optimal(opt) => {
                assert!(ffd >= opt, "seed {seed}: FFD {ffd} below optimum {opt}??");
                assert!(
                    ffd as f64 <= 1.34 * opt as f64,
                    "seed {seed}: FFD {ffd} vs OPT {opt}"
                );
            }
            other => panic!("seed {seed}: exact search did not finish: {other:?}"),
        }
    }
}

#[test]
fn churn_then_stabilization_analysis() {
    let mut gen = FleetGenerator::new(7);
    let pms = gen.pms(300);
    let policy = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
    let out = run_churn(
        &pms,
        &policy,
        SimConfig {
            steps: 1_200,
            seed: 8,
            ..Default::default()
        },
        ChurnConfig::default(),
        0.01,
        0.09,
    );
    // Population ramps then holds; the PMs-used series must stabilize to
    // a ±3 band once arrivals ≈ departures (after ~5 mean lifetimes).
    let stable = detect_stabilization(&out.pms_used_series.values[500..], &[], 6.0, usize::MAX);
    assert!(
        stable.step.is_some(),
        "churned cluster must reach steady state"
    );
    assert!(out.fleet_cvr() <= 0.012, "fleet CVR {}", out.fleet_cvr());
}

#[test]
fn des_and_stepped_engines_agree_on_figure9_shape() {
    let mut gen = FleetGenerator::new(9);
    let vms = gen.vms_table_i(120, WorkloadPattern::EqualSpike);
    let pms = gen.pms(360);

    let qs = QueueStrategy::build(16, 0.01, 0.09, 0.01);
    let q_placement = first_fit(&vms, &pms, &qs).unwrap();
    let q_policy = QueuePolicy::new(qs);
    let b_placement = first_fit(&vms, &pms, &BaseStrategy).unwrap();
    let b_policy = ObservedPolicy::rb();

    // Average 5 seeds per engine to wash out sample noise.
    let stepped = |policy: &dyn RuntimePolicy, placement: &Placement| -> f64 {
        (0..5)
            .map(|seed| {
                let cfg = SimConfig {
                    seed,
                    ..Default::default()
                };
                Simulator::new(&vms, &pms, policy, cfg)
                    .run(placement)
                    .migrations
                    .len()
            })
            .sum::<usize>() as f64
            / 5.0
    };
    let des = |policy: &dyn RuntimePolicy, placement: &Placement| -> f64 {
        (0..5)
            .map(|seed| {
                let cfg = DesConfig {
                    seed,
                    ..Default::default()
                };
                DesSimulator::new(&vms, &pms, policy, cfg)
                    .run(placement)
                    .migrations
                    .len()
            })
            .sum::<usize>() as f64
            / 5.0
    };

    let (q_stepped, q_des) = (
        stepped(&q_policy, &q_placement),
        des(&q_policy, &q_placement),
    );
    let (b_stepped, b_des) = (
        stepped(&b_policy, &b_placement),
        des(&b_policy, &b_placement),
    );

    // Both engines: QUEUE migrates rarely, RB an order of magnitude more.
    assert!(
        q_stepped <= 4.0 && q_des <= 4.0,
        "QUEUE: {q_stepped} / {q_des}"
    );
    assert!(
        b_stepped > 5.0 * q_stepped.max(0.5) && b_des > 5.0 * q_des.max(0.5),
        "RB: {b_stepped} / {b_des}"
    );
    // And the engines agree with each other within 2x on the RB count.
    let ratio = b_stepped.max(b_des) / b_stepped.min(b_des);
    assert!(
        ratio < 2.0,
        "engine disagreement: stepped {b_stepped} vs DES {b_des}"
    );
}

#[test]
fn block_metrics_are_consistent_with_mapcal() {
    // For every k, the metrics at the MapCal reservation must show
    // CVR ≤ ρ and nonzero utilization; the loss view is a coherent
    // companion to the time view.
    for k in [2usize, 6, 12, 20] {
        let chain = AggregateChain::new(k, 0.01, 0.09);
        let blocks = chain.blocks_needed(0.01).unwrap();
        let metrics = block_system_metrics(&chain, blocks).unwrap();
        assert!(metrics.cvr <= 0.01 + 1e-9, "k={k}");
        assert!(metrics.utilization > 0.0 && metrics.utilization <= 1.0);
        assert!(metrics.carried_load <= metrics.offered_load + 1e-12);
    }
}

#[test]
fn transient_mixing_supports_evaluation_window() {
    // The paper evaluates over 100 σ and remarks stabilization within
    // ~10 σ; the chain's mixing time at the paper's parameters must make
    // that window sensible (mixed well before the horizon ends).
    let analysis = TransientAnalysis::new(AggregateChain::new(16, 0.01, 0.09));
    let mix = analysis.mixing_time(0.01, 1_000).unwrap();
    assert!(
        mix < 100,
        "mixing time {mix} must sit inside the 100-step horizon"
    );
    // And expected transient violations over the paper's horizon stay
    // under the stationary budget ρ·T.
    let blocks = AggregateChain::new(16, 0.01, 0.09)
        .blocks_needed(0.01)
        .unwrap();
    let expected = analysis.expected_violations(blocks, 100);
    assert!(
        expected <= 1.0,
        "expected violations over 100 steps: {expected}"
    );
}
