//! Online (§IV-E) vs offline (Algorithm 2) consolidation equivalences and
//! churn-stress checks.

use bursty_core::placement::clustering::default_buckets;
use bursty_core::placement::online::OnlineCluster;
use bursty_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pms(m: usize, cap: f64) -> Vec<PmSpec> {
    (0..m).map(|j| PmSpec::new(j, cap)).collect()
}

#[test]
fn batch_from_empty_equals_offline_algorithm_2() {
    let mut gen = FleetGenerator::new(500);
    let vms = gen.vms(90, WorkloadPattern::EqualSpike);
    let farm = pms(90, 95.0);

    let mut online = OnlineCluster::new(farm.clone(), 16, 0.01, 0.09, 0.01);
    online.arrive_batch(vms.clone()).unwrap();

    let strategy =
        QueueStrategy::build(16, 0.01, 0.09, 0.01).with_buckets(default_buckets(vms.len()));
    let offline = first_fit(&vms, &farm, &strategy).unwrap();

    assert_eq!(online.pms_used(), offline.pms_used());
    for (i, vm) in vms.iter().enumerate() {
        assert_eq!(online.host_of(vm.id), offline.assignment[i], "VM {}", vm.id);
    }
}

#[test]
fn sequential_arrivals_match_first_fit_without_sorting() {
    // One-at-a-time arrivals are First Fit in arrival order (no FFD
    // benefit) — still feasible everywhere, possibly more PMs.
    let mut gen = FleetGenerator::new(501);
    let vms = gen.vms(60, WorkloadPattern::SmallSpike);
    let farm = pms(120, 95.0);
    let mut online = OnlineCluster::new(farm, 16, 0.01, 0.09, 0.01);
    for vm in &vms {
        online.arrive(*vm).unwrap();
    }
    online.check_consistency().unwrap();
    assert!(online.infeasible_pms().is_empty());
    assert_eq!(online.n_vms(), 60);
}

#[test]
fn churn_preserves_feasibility_invariants() {
    let farm = pms(150, 90.0);
    let mut online = OnlineCluster::new(farm, 16, 0.01, 0.09, 0.01);
    let mut rng = StdRng::seed_from_u64(99);
    let mut live: Vec<usize> = Vec::new();
    let mut next_id = 0usize;
    for round in 0..400 {
        if rng.gen_bool(0.55) || live.is_empty() {
            let vm = VmSpec::new(
                next_id,
                0.01,
                0.09,
                rng.gen_range(2.0..20.0),
                rng.gen_range(2.0..20.0),
            );
            next_id += 1;
            if online.arrive(vm).is_ok() {
                live.push(vm.id);
            }
        } else {
            let idx = rng.gen_range(0..live.len());
            let id = live.swap_remove(idx);
            assert!(online.depart(id).is_some());
        }
        if round % 50 == 0 {
            online.check_consistency().unwrap();
            assert!(
                online.infeasible_pms().is_empty(),
                "round {round}: every admission respected Eq. 17"
            );
        }
    }
    assert_eq!(online.n_vms(), live.len());
}

#[test]
fn online_cluster_survives_full_drain() {
    let farm = pms(20, 90.0);
    let mut online = OnlineCluster::new(farm, 16, 0.01, 0.09, 0.01);
    let mut gen = FleetGenerator::new(502);
    let vms = gen.vms(30, WorkloadPattern::EqualSpike);
    for vm in &vms {
        online.arrive(*vm).unwrap();
    }
    for vm in &vms {
        online.depart(vm.id);
    }
    assert_eq!(online.n_vms(), 0);
    assert_eq!(online.pms_used(), 0);
    online.check_consistency().unwrap();
    // The drained cluster accepts fresh arrivals again.
    online
        .arrive(VmSpec::new(999, 0.01, 0.09, 5.0, 5.0))
        .unwrap();
    assert_eq!(online.pms_used(), 1);
}

#[test]
fn online_placement_behaves_under_simulation() {
    // Hosts chosen online keep CVR near ρ when simulated — the online path
    // yields placements just as sound as the offline one.
    let mut gen = FleetGenerator::new(503);
    let vms = gen.vms(60, WorkloadPattern::EqualSpike);
    let farm = pms(120, 95.0);
    let mut online = OnlineCluster::new(farm.clone(), 16, 0.01, 0.09, 0.01);
    for vm in &vms {
        online.arrive(*vm).unwrap();
    }
    let assignment: Vec<Option<usize>> = vms.iter().map(|vm| online.host_of(vm.id)).collect();
    let placement = Placement {
        assignment,
        n_pms: farm.len(),
    };
    assert!(placement.is_complete());

    let policy = QueuePolicy::new(QueueStrategy::build(16, 0.01, 0.09, 0.01));
    let cfg = SimConfig {
        steps: 30_000,
        seed: 1,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &farm, &policy, cfg).run(&placement);
    assert!(out.mean_cvr() <= 0.012, "mean CVR {}", out.mean_cvr());
}
