//! Guards on the paper's headline experimental shapes, so a regression in
//! any crate that would distort a figure fails CI loudly.
//!
//! These assert *shapes* (who wins, roughly by how much, where the
//! orderings fall), not absolute numbers — our substrate is a simulator,
//! not the authors' testbed.

use bursty_core::placement::placement::consolidation_improvement;
use bursty_core::prelude::*;
use bursty_core::sim::events::migrations_per_step;

/// Fig. 5: QUEUE-vs-RP improvement grows with spike share — large-spike
/// savings beat equal-spike savings beat small-spike savings.
#[test]
fn fig5_improvement_ordering_across_patterns() {
    let improvement = |pattern: WorkloadPattern| {
        let mut acc = 0.0;
        for seed in 0..4u64 {
            let mut gen = FleetGenerator::new(900 + seed);
            let vms = gen.vms(200, pattern);
            let pms = gen.pms(200);
            let q = Consolidator::new(Scheme::Queue)
                .place(&vms, &pms)
                .unwrap()
                .pms_used();
            let rp = Consolidator::new(Scheme::Rp)
                .place(&vms, &pms)
                .unwrap()
                .pms_used();
            acc += consolidation_improvement(q, rp);
        }
        acc / 4.0
    };
    let equal = improvement(WorkloadPattern::EqualSpike);
    let small = improvement(WorkloadPattern::SmallSpike);
    let large = improvement(WorkloadPattern::LargeSpike);
    assert!(large > equal, "large {large:.2} must beat equal {equal:.2}");
    assert!(equal > small, "equal {equal:.2} must beat small {small:.2}");
    // Paper magnitudes: ~45%, ~30%, ~18%.
    assert!(
        (0.30..=0.55).contains(&large),
        "large-spike improvement {large:.2}"
    );
    assert!(
        (0.15..=0.40).contains(&equal),
        "equal-spike improvement {equal:.2}"
    );
    assert!(
        (0.03..=0.30).contains(&small),
        "small-spike improvement {small:.2}"
    );
}

/// Fig. 6: QUEUE's CVR is bounded by ρ on average with at most slight
/// per-PM excursions; RB's CVR is catastrophically higher.
#[test]
fn fig6_cvr_gap_between_queue_and_rb() {
    let run = |scheme: Scheme| {
        let mut gen = FleetGenerator::new(901);
        let vms = gen.vms(150, WorkloadPattern::EqualSpike);
        let pms = gen.pms(150);
        let cfg = SimConfig {
            steps: 8_000,
            seed: 3,
            migrations_enabled: false,
            ..Default::default()
        };
        Consolidator::new(scheme)
            .evaluate(&vms, &pms, cfg)
            .unwrap()
            .1
    };
    let queue = run(Scheme::Queue);
    let rb = run(Scheme::Rb);
    assert!(
        queue.mean_cvr() <= 0.011,
        "QUEUE mean CVR {}",
        queue.mean_cvr()
    );
    assert!(rb.mean_cvr() > 0.2, "RB mean CVR {}", rb.mean_cvr());
    assert!(rb.mean_cvr() > 20.0 * queue.mean_cvr());
}

/// Fig. 6 secondary observation: larger spikes → slightly higher QUEUE CVR
/// (still bounded), because each block is coarser relative to capacity.
#[test]
fn fig6_queue_cvr_stays_bounded_on_every_pattern() {
    for pattern in WorkloadPattern::ALL {
        let mut gen = FleetGenerator::new(902);
        let vms = gen.vms(150, pattern);
        let pms = gen.pms(150);
        let cfg = SimConfig {
            steps: 8_000,
            seed: 4,
            migrations_enabled: false,
            ..Default::default()
        };
        let out = Consolidator::new(Scheme::Queue)
            .evaluate(&vms, &pms, cfg)
            .unwrap()
            .1;
        assert!(
            out.mean_cvr() <= 0.011,
            "{pattern}: mean CVR {:.4}",
            out.mean_cvr()
        );
    }
}

/// Fig. 10: RB's cumulative migration curve keeps climbing through the
/// whole run (cycle migration); QUEUE's is flat after at most a blip.
#[test]
fn fig10_rb_migrates_late_queue_does_not() {
    let run = |scheme: Scheme| {
        let mut gen = FleetGenerator::new(903);
        let vms = gen.vms_table_i(120, WorkloadPattern::EqualSpike);
        let pms = gen.pms(360);
        let cfg = SimConfig {
            seed: 12,
            ..Default::default()
        };
        Consolidator::new(scheme)
            .evaluate(&vms, &pms, cfg)
            .unwrap()
            .1
    };
    let queue = run(Scheme::Queue);
    let rb = run(Scheme::Rb);

    let rb_bins = migrations_per_step(&rb.migrations, 100);
    let late_rb: u32 = rb_bins[50..].iter().sum();
    assert!(
        late_rb >= 5,
        "RB must still be migrating in the second half (cycle migration), got {late_rb}"
    );
    assert!(
        queue.total_migrations() <= 3,
        "QUEUE total migrations {}",
        queue.total_migrations()
    );
}

/// §V-D observation (iii): RB's PM count rises quickly early in the run as
/// the over-tight initial packing unwinds.
#[test]
fn rb_pm_count_rises_early_then_stabilizes() {
    let mut gen = FleetGenerator::new(904);
    let vms = gen.vms_table_i(120, WorkloadPattern::EqualSpike);
    let pms = gen.pms(360);
    let cfg = SimConfig {
        seed: 21,
        ..Default::default()
    };
    let (placement, out) = Consolidator::new(Scheme::Rb)
        .evaluate(&vms, &pms, cfg)
        .unwrap();

    let series = &out.pms_used_series.values;
    let initial = placement.pms_used() as f64;
    let at_20 = series[20];
    let at_99 = series[99];
    assert!(
        at_20 > initial,
        "PM count must rise early: {at_20} vs initial {initial}"
    );
    // Stabilization: second half drifts far less than the first fifth rose.
    let drift = (at_99 - series[50]).abs();
    assert!(
        drift <= (at_20 - initial),
        "late drift {drift} should not exceed early rise {}",
        at_20 - initial
    );
}

/// Fig. 7: Algorithm 2 stays millisecond-scale at the paper's d = 16 and
/// n up to a few hundred, and the mapping table alone is sub-millisecond.
#[test]
fn fig7_computation_cost_is_small() {
    use std::time::Instant;
    let mut gen = FleetGenerator::new(905);
    let vms = gen.vms(400, WorkloadPattern::EqualSpike);
    let pms = gen.pms(400);
    let start = Instant::now();
    let placement = Consolidator::new(Scheme::Queue).place(&vms, &pms).unwrap();
    let elapsed = start.elapsed();
    assert!(placement.is_complete());
    assert!(
        elapsed.as_millis() < 200,
        "Algorithm 2 at (d=16, n=400) took {elapsed:?}"
    );
}
