//! Property-based fuzzing of the simulation engines: random fleets,
//! placements and configurations must never violate structural invariants,
//! whatever the workload does.

use bursty_core::prelude::*;
use bursty_core::sim::des::{DesConfig, DesSimulator};
use proptest::prelude::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use proptest::strategy::{Just, Strategy as PropStrategy};

#[derive(Debug, Clone)]
struct Instance {
    vms: Vec<VmSpec>,
    pms: Vec<PmSpec>,
    placement: Placement,
    seed: u64,
    steps: usize,
}

fn instance() -> impl PropStrategy<Value = Instance> {
    (2usize..30, 1usize..200, 1usize..60)
        .prop_flat_map(|(n, seed, steps)| {
            (
                proptest::collection::vec(
                    (1.0f64..20.0, 0.0f64..20.0, 0.005f64..0.5, 0.01f64..0.9),
                    n,
                ),
                proptest::collection::vec(0usize..n, n), // host per VM (≤ n PMs)
                Just(seed as u64),
                Just(steps),
            )
        })
        .prop_map(|(raw, hosts, seed, steps)| {
            let vms: Vec<VmSpec> = raw
                .into_iter()
                .enumerate()
                .map(|(i, (rb, re, p_on, p_off))| VmSpec::new(i, p_on, p_off, rb, re))
                .collect();
            let n = vms.len();
            // Deliberately arbitrary (often overloaded) placements over a
            // pool of n small-to-medium PMs: the engine must stay sound
            // even when the packing is nonsense.
            let pms: Vec<PmSpec> = (0..n)
                .map(|j| PmSpec::new(j, 20.0 + (j % 7) as f64 * 15.0))
                .collect();
            let placement = Placement {
                assignment: hosts.into_iter().map(Some).collect(),
                n_pms: n,
            };
            Instance {
                vms,
                pms,
                placement,
                seed,
                steps,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn stepped_engine_invariants(inst in instance()) {
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            steps: inst.steps,
            seed: inst.seed,
            migrations_enabled: true,
            ..Default::default()
        };
        let out = Simulator::new(&inst.vms, &inst.pms, &policy, cfg).run(&inst.placement);

        // CVRs are proportions.
        for &(pm, cvr) in &out.cvr_per_pm {
            prop_assert!(pm < inst.pms.len());
            prop_assert!((0.0..=1.0).contains(&cvr), "PM {pm} CVR {cvr}");
        }
        // Series length matches the horizon; PM counts stay within pool.
        prop_assert_eq!(out.pms_used_series.len(), inst.steps);
        for &v in &out.pms_used_series.values {
            prop_assert!(v >= 0.0 && v <= inst.pms.len() as f64);
        }
        prop_assert!(out.final_pms_used <= out.peak_pms_used);
        prop_assert!(out.peak_pms_used <= inst.pms.len());
        // Migration events reference real PMs and steps, never self-moves.
        for e in &out.migrations {
            prop_assert!(e.step < inst.steps);
            prop_assert!(e.from_pm < inst.pms.len());
            prop_assert!(e.to_pm < inst.pms.len());
            prop_assert!(e.from_pm != e.to_pm);
        }
        // Energy is nonnegative and bounded by everything-on-at-peak.
        let max_energy = inst.pms.len() as f64 * 250.0 * 30.0 * inst.steps as f64;
        prop_assert!(out.energy_joules >= 0.0 && out.energy_joules <= max_energy);
    }

    #[test]
    fn des_engine_invariants(inst in instance()) {
        let policy = ObservedPolicy::rb();
        let cfg = DesConfig {
            steps: inst.steps,
            seed: inst.seed,
            migrations_enabled: true,
            migration_duration: (inst.seed % 3) as f64 * 0.5,
            ..Default::default()
        };
        let out =
            DesSimulator::new(&inst.vms, &inst.pms, &policy, cfg).run(&inst.placement);
        for &(pm, cvr) in &out.cvr_per_pm {
            prop_assert!(pm < inst.pms.len());
            prop_assert!((0.0..=1.0).contains(&cvr));
        }
        prop_assert_eq!(out.pms_used_series.len(), inst.steps);
        for e in &out.migrations {
            prop_assert!(e.step < inst.steps);
            prop_assert!(e.from_pm != e.to_pm);
        }
    }

    #[test]
    fn engines_are_individually_deterministic(inst in instance()) {
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            steps: inst.steps,
            seed: inst.seed,
            ..Default::default()
        };
        let a = Simulator::new(&inst.vms, &inst.pms, &policy, cfg).run(&inst.placement);
        let b = Simulator::new(&inst.vms, &inst.pms, &policy, cfg).run(&inst.placement);
        prop_assert_eq!(a.migrations, b.migrations);
        prop_assert_eq!(a.total_violation_steps, b.total_violation_steps);
        prop_assert_eq!(a.pms_used_series.values, b.pms_used_series.values);
    }

    #[test]
    fn migration_conserves_vms(inst in instance()) {
        // Replay the migration log against the initial placement: every
        // VM must end somewhere, exactly once, and moves must chain.
        let policy = ObservedPolicy::rb();
        let cfg = SimConfig {
            steps: inst.steps,
            seed: inst.seed,
            ..Default::default()
        };
        let out = Simulator::new(&inst.vms, &inst.pms, &policy, cfg).run(&inst.placement);
        let mut host: Vec<usize> = inst
            .placement
            .assignment
            .iter()
            .map(|a| a.unwrap())
            .collect();
        for e in &out.migrations {
            // Id equals index in these fleets.
            prop_assert_eq!(host[e.vm_id], e.from_pm, "move chain broken for VM {}", e.vm_id);
            host[e.vm_id] = e.to_pm;
        }
        prop_assert_eq!(host.len(), inst.vms.len());
    }
}
