//! Cross-validation of the queuing theory against brute-force simulation —
//! the scientific core of the reproduction.
//!
//! Algorithm 1's promise is that reserving `K = mapping(k)` blocks bounds a
//! PM's capacity-violation ratio by `ρ`. These tests verify that promise
//! empirically: the analytic stationary distribution of the busy-block
//! chain must match the simulated long-run occupancy, and the predicted CVR
//! must match the violation rate an actual simulated PM experiences.

use bursty_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const P_ON: f64 = 0.01;
const P_OFF: f64 = 0.09;

/// Simulates k independent ON-OFF chains and histograms the number
/// simultaneously ON.
fn empirical_busy_distribution(k: usize, steps: usize, seed: u64) -> Vec<f64> {
    let chain = OnOffChain::new(P_ON, P_OFF);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut states: Vec<VmState> = (0..k).map(|_| chain.sample_stationary(&mut rng)).collect();
    let mut counts = vec![0u64; k + 1];
    for _ in 0..steps {
        for s in states.iter_mut() {
            *s = chain.step(*s, &mut rng);
        }
        let busy = states.iter().filter(|s| s.is_on()).count();
        counts[busy] += 1;
    }
    counts.iter().map(|&c| c as f64 / steps as f64).collect()
}

#[test]
fn stationary_distribution_matches_monte_carlo() {
    for k in [4usize, 8, 16] {
        let analytic = AggregateChain::new(k, P_ON, P_OFF).stationary().unwrap();
        let empirical = empirical_busy_distribution(k, 400_000, 17 + k as u64);
        for (m, (&a, &e)) in analytic.iter().zip(&empirical).enumerate() {
            assert!(
                (a - e).abs() < 0.01,
                "k={k} state {m}: analytic {a:.4} vs empirical {e:.4}"
            );
        }
    }
}

#[test]
fn predicted_cvr_matches_simulated_violation_rate() {
    // One PM hosting k identical VMs sized so that exactly K spikes fit:
    // capacity = k·R_b + K·R_e. Analytic CVR = Pr[θ > K]; the simulator
    // must observe the same violation fraction.
    let k = 12;
    let rho = 0.01;
    let chain = AggregateChain::new(k, P_ON, P_OFF);
    let blocks = chain.blocks_needed(rho).unwrap();
    let predicted_cvr = chain.cvr_with_blocks(blocks).unwrap();

    let (r_b, r_e) = (10.0, 10.0);
    let vms: Vec<VmSpec> = (0..k)
        .map(|i| VmSpec::new(i, P_ON, P_OFF, r_b, r_e))
        .collect();
    let capacity = k as f64 * r_b + blocks as f64 * r_e;
    let pms = vec![PmSpec::new(0, capacity)];
    let placement = Placement {
        assignment: vec![Some(0); k],
        n_pms: 1,
    };

    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 300_000,
        seed: 5,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
    let simulated_cvr = out.cvr_per_pm[0].1;

    assert!(
        (simulated_cvr - predicted_cvr).abs() < 0.002,
        "predicted {predicted_cvr:.5} vs simulated {simulated_cvr:.5}"
    );
    assert!(
        simulated_cvr <= rho + 0.002,
        "constraint must hold empirically"
    );
}

#[test]
fn one_block_fewer_breaks_the_constraint() {
    // Minimality check, end to end: with K−1 blocks the simulated CVR must
    // exceed ρ — the reservation is tight, not padded.
    let k = 12;
    let rho = 0.01;
    let chain = AggregateChain::new(k, P_ON, P_OFF);
    let blocks = chain.blocks_needed(rho).unwrap();
    assert!(blocks >= 1);

    let (r_b, r_e) = (10.0, 10.0);
    let vms: Vec<VmSpec> = (0..k)
        .map(|i| VmSpec::new(i, P_ON, P_OFF, r_b, r_e))
        .collect();
    let capacity = k as f64 * r_b + (blocks - 1) as f64 * r_e;
    let pms = vec![PmSpec::new(0, capacity)];
    let placement = Placement {
        assignment: vec![Some(0); k],
        n_pms: 1,
    };
    let policy = ObservedPolicy::rb();
    let cfg = SimConfig {
        steps: 200_000,
        seed: 6,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = Simulator::new(&vms, &pms, &policy, cfg).run(&placement);
    assert!(
        out.cvr_per_pm[0].1 > rho,
        "CVR with K-1 blocks must exceed rho, got {}",
        out.cvr_per_pm[0].1
    );
}

#[test]
fn every_queue_packed_pm_honors_rho_in_simulation() {
    // The full pipeline: QueuingFFD placements simulated long enough that
    // per-PM CVR estimates are tight; every PM must sit at or below ρ with
    // sampling slack.
    let mut gen = FleetGenerator::new(404);
    let vms = gen.vms(80, WorkloadPattern::EqualSpike);
    let pms = gen.pms(80);
    let consolidator = Consolidator::new(Scheme::Queue);
    let placement = consolidator.place(&vms, &pms).unwrap();
    let cfg = SimConfig {
        steps: 60_000,
        seed: 9,
        migrations_enabled: false,
        ..Default::default()
    };
    let out = consolidator.simulate(&vms, &pms, &placement, cfg);
    for &(pm, cvr) in &out.cvr_per_pm {
        assert!(
            cvr <= 0.01 + 0.004,
            "PM {pm} CVR {cvr:.4} above rho + sampling slack"
        );
    }
    assert!(out.mean_cvr() <= 0.01, "mean CVR {}", out.mean_cvr());
}

#[test]
fn autocorrelation_separates_markov_from_iid() {
    // The reason SBP (i.i.d.) models under-serve bursty workloads: the
    // ON-OFF chain's demand is autocorrelated in time. Verify the sampled
    // lag-1 autocorrelation matches theory and is far from zero.
    let chain = OnOffChain::new(P_ON, P_OFF);
    let mut rng = StdRng::seed_from_u64(33);
    let trace = chain.sample_trace(VmState::Off, 500_000, &mut rng);
    let xs: Vec<f64> = trace.iter().map(|s| s.is_on() as u8 as f64).collect();
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    let cov1 = xs
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum::<f64>()
        / (xs.len() - 1) as f64;
    let rho1 = cov1 / var;
    let theory = chain.autocorrelation(1);
    assert!(
        (rho1 - theory).abs() < 0.01,
        "lag-1 {rho1:.4} vs theory {theory:.4}"
    );
    assert!(
        rho1 > 0.85,
        "paper parameters imply strong burst persistence"
    );
}
