//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! [`criterion_group!`]/[`criterion_main!`], benchmark groups,
//! [`BenchmarkId`], [`Throughput`] and `Bencher::iter`.
//!
//! Measurement model: each benchmark is warmed up briefly, then timed over
//! enough iterations to fill a short measurement window; median-of-batches
//! nanoseconds-per-iteration is printed as a single line. No statistical
//! machinery, plots or HTML reports — numbers are indicative, and the
//! `BENCH_*.json` emitters in `crates/bench` do their own timing.

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Throughput annotation (recorded, reported alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures under benchmark names.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(150),
            measure: Duration::from_millis(600),
        }
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher<'_> {
    /// Times `routine`, storing nanoseconds-per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch sizing: run until the warm-up window closes,
        // counting iterations to pick a batch that fills ~1/10 of the
        // measurement window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch =
            ((self.measure.as_nanos() as f64 / 10.0 / per_iter.max(1.0)) as u64).clamp(1, 1 << 20);

        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
    }
}

fn run_one(name: &str, warm_up: Duration, measure: Duration, f: impl FnOnce(&mut Bencher)) {
    let mut samples = Vec::new();
    f(&mut Bencher {
        samples: &mut samples,
        warm_up,
        measure,
    });
    samples.sort_by(f64::total_cmp);
    let median = samples.get(samples.len() / 2).copied().unwrap_or(f64::NAN);
    println!(
        "bench: {name:<60} {median:>14.1} ns/iter ({} batches)",
        samples.len()
    );
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.warm_up, self.measure, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Shrinks the sampling effort (API-compatibility shim; the stub's
    /// fixed measurement window is already small).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.parent.measure = d;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.parent.warm_up, self.parent.measure, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.parent.warm_up, self.parent.measure, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op beyond upstream API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(20),
        }
    }

    #[test]
    fn bench_function_runs_and_samples() {
        let mut c = tiny();
        c.bench_function("smoke", |b| b.iter(|| black_box(3u64).wrapping_mul(7)));
    }

    #[test]
    fn groups_compose() {
        let mut c = tiny();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function(BenchmarkId::from_parameter(9), |b| b.iter(|| black_box(9)));
        g.finish();
    }
}
