//! Offline stand-in for the `crossbeam` crate: the `channel` module only.
//! The build environment has no network access, so this is a small
//! Mutex + Condvar queue with the `crossbeam::channel` surface the
//! workspace uses: unbounded MPMC with cloneable senders *and*
//! receivers, blocking and timed receives, and draining iterators.
//! The server's worker pool shares one `Receiver` across threads and
//! polls it with [`Receiver::recv_timeout`] to observe shutdown.

pub mod channel {
    //! Unbounded MPMC channel: [`unbounded`], cloneable [`Sender`] and
    //! [`Receiver`], [`Receiver::recv_timeout`], draining iterators.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        ready: Condvar,
    }

    /// Sending half; clone freely across worker threads.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; clone to share one queue across consumers.
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Error returned when every receiver has disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a timed receive returned without a value.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the timeout; senders still exist.
        Timeout,
        /// The channel is drained and every sender has dropped.
        Disconnected,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().unwrap();
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                // Wake every blocked receiver so it can observe the
                // disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().unwrap();
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.inner.lock().unwrap().receivers -= 1;
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails when all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.ready.wait(inner).unwrap();
            }
        }

        /// Blocks up to `timeout` for the next value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.0.inner.lock().unwrap();
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                // Spurious wakeups and early notifies re-enter the loop;
                // the deadline check above bounds the total wait.
                (inner, _) = self.0.ready.wait_timeout(inner, deadline - now).unwrap();
            }
        }

        /// Draining iterator (blocks between values, ends at disconnect).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.recv().ok())
        }

        /// Non-blocking drain of everything currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.0.inner.lock().unwrap().queue.pop_front())
        }
    }

    /// Owning draining iterator, ends at disconnect.
    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            IntoIter(self)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fan_in_from_multiple_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        thread::scope(|scope| {
            for w in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..10 {
                        tx.send(w * 10 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got.len(), 40);
            assert_eq!(got, (0..40).collect::<Vec<_>>());
        });
    }

    #[test]
    fn fan_out_to_multiple_consumers() {
        let (tx, rx) = channel::unbounded::<usize>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|j| j.join().unwrap()).sum();
        assert_eq!(total, 100, "every value consumed exactly once");
    }

    #[test]
    fn recv_timeout_distinguishes_empty_from_disconnected() {
        let (tx, rx) = channel::unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
