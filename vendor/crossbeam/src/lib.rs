//! Offline stand-in for the `crossbeam` crate: the `channel` module only,
//! backed by `std::sync::mpsc`. The build environment has no network
//! access, and this workspace only uses multi-producer/single-consumer
//! fan-in, which mpsc covers exactly.

pub mod channel {
    //! MPSC channel with the `crossbeam::channel` surface this workspace
    //! uses: [`unbounded`], cloneable [`Sender`], iterable [`Receiver`].

    use std::sync::mpsc;

    /// Sending half; clone freely across worker threads.
    pub struct Sender<T>(mpsc::Sender<T>);

    /// Receiving half; iterate to drain until all senders drop.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned when the receiving side has disconnected.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a value; fails only if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails when all senders are gone and
        /// the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Draining iterator (blocks between values, ends at disconnect).
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }

        /// Non-blocking drain of everything currently queued.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.try_iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::Iter<'a, T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::thread;

    #[test]
    fn fan_in_from_multiple_threads() {
        let (tx, rx) = channel::unbounded::<usize>();
        thread::scope(|scope| {
            for w in 0..4 {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..10 {
                        tx.send(w * 10 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<usize> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got.len(), 40);
            assert_eq!(got, (0..40).collect::<Vec<_>>());
        });
    }

    #[test]
    fn send_after_receiver_drop_errors() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
