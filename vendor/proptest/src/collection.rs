//! Collection strategies (subset of `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRunner;
use std::ops::Range;

/// Length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min
            + if span > 1 {
                runner.next_below(span) as usize
            } else {
                0
            };
        (0..len).map(|_| self.element.new_value(runner)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let mut r = TestRunner::new("collection-tests");
        r.begin_case(0);
        let s = vec(0.0f64..1.0, 2..7);
        let mut seen_min = false;
        let mut seen_more = false;
        for _ in 0..200 {
            let v = s.new_value(&mut r);
            assert!((2..7).contains(&v.len()));
            seen_min |= v.len() == 2;
            seen_more |= v.len() > 2;
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
        assert!(seen_min && seen_more, "length range must actually vary");
    }

    #[test]
    fn exact_length_is_honored() {
        let mut r = TestRunner::new("collection-tests-exact");
        r.begin_case(0);
        let s = vec(0usize..5, 4usize);
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut r).len(), 4);
        }
    }
}
