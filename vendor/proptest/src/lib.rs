//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the subset of the proptest API its property tests use: the [`proptest!`]
//! macro, `prop_assert*`/`prop_assume`, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, [`strategy::Just`], range and tuple
//! strategies, and [`collection::vec`].
//!
//! Semantics: each test runs `ProptestConfig::cases` deterministic random
//! cases (seeded per test-case index, so failures reproduce across runs).
//! There is **no shrinking** — a failing case reports its inputs verbatim.
//! That trades minimal counterexamples for zero dependencies; all
//! assertions and generation semantics the tests rely on are preserved.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __runner =
                    $crate::test_runner::TestRunner::new(stringify!($name));
                for __case in 0..__config.cases {
                    __runner.begin_case(__case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), &mut __runner);
                    )+
                    let __inputs = ::std::format!("{:?}", ($(&$arg,)+));
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            ::std::panic!(
                                "proptest case {} failed: {}\n  inputs: {}",
                                __case, __msg, __inputs,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body; failure reports the
/// generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l,
        );
    }};
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
