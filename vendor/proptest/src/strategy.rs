//! Value-generation strategies (subset of `proptest::strategy`).

use crate::test_runner::TestRunner;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of an associated type.
///
/// Unlike upstream there is no `ValueTree`/shrinking layer: `new_value`
/// yields the final value directly.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it — for dependent inputs (e.g. an index into a generated vec).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Boxes the strategy (API-compatibility shim).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
        (**self).new_value(runner)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObject<T>>);

trait StrategyObject<T> {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> T;
}

impl<S: Strategy> StrategyObject<S::Value> for S {
    fn new_value_dyn(&self, runner: &mut TestRunner) -> S::Value {
        self.new_value(runner)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, runner: &mut TestRunner) -> T {
        self.0.new_value_dyn(runner)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.inner.new_value(runner))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn new_value(&self, runner: &mut TestRunner) -> T::Value {
        (self.f)(self.inner.new_value(runner)).new_value(runner)
    }
}

macro_rules! impl_float_range_strategy {
    ($t:ty) => {
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = runner.next_unit_f64() as $t;
                let x = self.start + unit * (self.end - self.start);
                if x >= self.end {
                    // Top-end rounding on huge spans: step back into range.
                    <$t>::from_bits(self.end.to_bits() - 1).max(self.start)
                } else {
                    x
                }
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let unit = runner.next_unit_f64() as $t;
                self.start() + unit * (self.end() - self.start())
            }
        }
    };
}

impl_float_range_strategy!(f64);

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let draw = runner.next_u64() as u128 % span;
                (lo + draw as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, runner: &mut TestRunner) -> $t {
                let lo = *self.start() as i128;
                let hi = *self.end() as i128 + 1;
                assert!(lo < hi, "empty range strategy");
                let span = (hi - lo) as u128;
                let draw = runner.next_u64() as u128 % span;
                (lo + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn runner() -> TestRunner {
        let mut r = TestRunner::new("strategy-tests");
        r.begin_case(0);
        r
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = runner();
        for _ in 0..500 {
            let x = (1.5f64..2.5).new_value(&mut r);
            assert!((1.5..2.5).contains(&x));
            let k = (3usize..9).new_value(&mut r);
            assert!((3..9).contains(&k));
            let inc = (0.0f64..=1.0).new_value(&mut r);
            assert!((0.0..=1.0).contains(&inc));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = runner();
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = doubled.new_value(&mut r);
            assert!(v % 2 == 0 && (2..20).contains(&v));
        }
        let dependent = (1usize..5).prop_flat_map(|n| (0usize..n, Just(n)));
        for _ in 0..100 {
            let (i, n) = dependent.new_value(&mut r);
            assert!(i < n);
        }
    }

    #[test]
    fn just_clones_its_value() {
        let mut r = runner();
        assert_eq!(Just(41usize).new_value(&mut r), 41);
    }

    #[test]
    fn tuples_generate_elementwise() {
        let mut r = runner();
        let ((a, b, c), d) = ((0.0f64..1.0, 5usize..6, Just(7u8)), 1u64..2).new_value(&mut r);
        assert!((0.0..1.0).contains(&a));
        assert_eq!((b, c, d), (5, 7, 1));
    }

    #[test]
    fn boxed_strategy_generates() {
        let mut r = runner();
        let s: BoxedStrategy<usize> = (0usize..4).prop_map(|x| x + 10).boxed();
        for _ in 0..20 {
            let v = s.new_value(&mut r);
            assert!((10..14).contains(&v));
        }
    }
}
