//! Test-runner plumbing for the vendored [`proptest!`](crate::proptest)
//! macro: configuration, case errors, and the deterministic RNG handed to
//! strategies.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Why a single proptest case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure — the whole test fails.
    Fail(String),
    /// Rejected assumption (`prop_assume!`) — the case is skipped.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected case with a reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// Deterministic per-test random source handed to strategies.
///
/// Seeding mixes the test name with the case index, so every test sees a
/// distinct but fully reproducible stream — reruns hit the same inputs,
/// which substitutes for upstream's failure-persistence file.
#[derive(Debug, Clone)]
pub struct TestRunner {
    base: u64,
    state: u64,
}

impl TestRunner {
    /// A runner for the named test.
    pub fn new(test_name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { base: h, state: h }
    }

    /// Re-seeds for case `case` — each case's stream is independent of how
    /// much randomness earlier cases consumed.
    pub fn begin_case(&mut self, case: u32) {
        self.state = self.base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Warm up so low-entropy seeds diverge immediately.
        self.next_u64();
        self.next_u64();
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_are_reproducible() {
        let mut a = TestRunner::new("t");
        let mut b = TestRunner::new("t");
        a.begin_case(3);
        b.begin_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_tests_get_different_streams() {
        let mut a = TestRunner::new("alpha");
        let mut b = TestRunner::new("beta");
        a.begin_case(0);
        b.begin_case(0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = TestRunner::new("u");
        r.begin_case(0);
        for _ in 0..1000 {
            let x = r.next_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
