//! Sampling distributions (subset of `rand::distributions`).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types that produce values of `T` given a source of randomness.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

impl<T, D: Distribution<T> + ?Sized> Distribution<T> for &D {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        (**self).sample(rng)
    }
}

/// The standard distribution: `f64`/`f32` uniform in `[0, 1)`, integers
/// uniform over their full range, `bool` fair.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform distribution over a half-open or inclusive range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<T> {
    low: T,
    high: T,
    inclusive: bool,
}

impl<T: uniform::SampleUniform> Uniform<T> {
    /// Uniform over `[low, high)`.
    pub fn new(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: false,
        }
    }

    /// Uniform over `[low, high]`.
    pub fn new_inclusive(low: T, high: T) -> Self {
        Self {
            low,
            high,
            inclusive: true,
        }
    }
}

impl<T: uniform::SampleUniform> From<Range<T>> for Uniform<T> {
    fn from(r: Range<T>) -> Self {
        Self::new(r.start, r.end)
    }
}

impl<T: uniform::SampleUniform> From<RangeInclusive<T>> for Uniform<T> {
    fn from(r: RangeInclusive<T>) -> Self {
        let (low, high) = r.into_inner();
        Self::new_inclusive(low, high)
    }
}

impl<T: uniform::SampleUniform> Distribution<T> for Uniform<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        T::sample_uniform(&self.low, &self.high, self.inclusive, rng)
    }
}

pub mod uniform {
    //! Range sampling machinery (subset of `rand::distributions::uniform`).

    use crate::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types with a uniform sampler over `[low, high)` / `[low, high]`.
    pub trait SampleUniform: Sized + PartialOrd {
        /// Draws uniformly between the bounds.
        fn sample_uniform<R: RngCore + ?Sized>(
            low: &Self,
            high: &Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    macro_rules! impl_float_uniform {
        ($t:ty) => {
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: &Self,
                    high: &Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    if inclusive {
                        assert!(low <= high, "empty inclusive range");
                    } else {
                        assert!(low < high, "empty range");
                    }
                    let unit = (rng.next_u64() >> 11) as $t * (1.0 / (1u64 << 53) as $t);
                    // Half-open semantics: unit ∈ [0,1) keeps the result
                    // below `high`; the inclusive flavour stretches to reach
                    // `high` itself (up to rounding, as upstream does).
                    let span = high - low;
                    let x = low + unit * span;
                    if x >= *high && !inclusive {
                        // Rounding at the top end of a huge span: clamp into
                        // the half-open interval.
                        let prev = <$t>::from_bits(high.to_bits() - 1);
                        prev.max(*low)
                    } else {
                        x
                    }
                }
            }
        };
    }

    impl_float_uniform!(f64);
    impl_float_uniform!(f32);

    macro_rules! impl_int_uniform {
        ($t:ty) => {
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore + ?Sized>(
                    low: &Self,
                    high: &Self,
                    inclusive: bool,
                    rng: &mut R,
                ) -> Self {
                    let lo = *low as i128;
                    let hi = *high as i128 + if inclusive { 1 } else { 0 };
                    assert!(lo < hi, "empty range");
                    let span = (hi - lo) as u128;
                    // Multiply-shift bounded sampling (Lemire); the modulo
                    // bias of a 64-bit draw over any span this workspace
                    // uses (≪ 2^64) is negligible, so keep it simple.
                    let draw = rng.next_u64() as u128;
                    let value = lo + (draw % span) as i128;
                    value as $t
                }
            }
        };
    }

    impl_int_uniform!(usize);
    impl_int_uniform!(u64);
    impl_int_uniform!(u32);
    impl_int_uniform!(u16);
    impl_int_uniform!(u8);
    impl_int_uniform!(isize);
    impl_int_uniform!(i64);
    impl_int_uniform!(i32);
    impl_int_uniform!(i16);
    impl_int_uniform!(i8);

    /// Range expressions accepted by `Rng::gen_range`.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_uniform(&self.start, &self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (low, high) = self.into_inner();
            T::sample_uniform(&low, &high, true, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn integer_uniform_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = usize::sample_uniform_helper(&mut rng);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    trait Helper {
        fn sample_uniform_helper<R: RngCore + ?Sized>(rng: &mut R) -> usize;
    }

    impl Helper for usize {
        fn sample_uniform_helper<R: RngCore + ?Sized>(rng: &mut R) -> usize {
            uniform::SampleUniform::sample_uniform(&0usize, &5usize, false, rng)
        }
    }

    #[test]
    fn inclusive_integer_range_reaches_top() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut top = false;
        for _ in 0..200 {
            let v: u8 = uniform::SampleUniform::sample_uniform(&0, &3, true, &mut rng);
            assert!(v <= 3);
            if v == 3 {
                top = true;
            }
        }
        assert!(top, "inclusive top bound must be reachable");
    }

    #[test]
    fn float_uniform_stays_half_open() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Uniform::from(0.0f64..1e-300);
        for _ in 0..100 {
            let x = d.sample(&mut rng);
            assert!(x < 1e-300);
        }
    }
}
