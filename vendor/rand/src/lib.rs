//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache, so
//! this workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`Rng`], [`SeedableRng`], [`rngs::StdRng`] and
//! [`distributions::{Distribution, Uniform}`](distributions). The generator
//! is xoshiro256++ seeded through SplitMix64 — high-quality and fully
//! deterministic, though its stream differs from upstream `StdRng`
//! (ChaCha12). Nothing in this workspace depends on the exact stream, only
//! on determinism per seed.

pub mod distributions;
pub mod rngs;

use distributions::uniform::SampleRange;
use distributions::{Distribution, Standard};

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A random value of type `T` from the standard distribution
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// A random value uniformly distributed over `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        self.gen::<f64>() < p
    }

    /// A sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed (subset of
/// `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (dst, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *dst = src;
            }
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3.0..7.0);
            assert!((3.0..7.0).contains(&x));
            let k = rng.gen_range(2usize..9);
            assert!((2..9).contains(&k));
            let inclusive = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&inclusive));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn uniform_distribution_samples_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Uniform::from(10.0..20.0);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((10.0..20.0).contains(&x));
        }
    }

    #[test]
    fn works_through_unsized_generic() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        fn draw_range<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(5);
        let dynamic: &mut dyn RngCore = &mut rng;
        let x = draw(dynamic);
        assert!((0.0..1.0).contains(&x));
        assert!(draw_range(&mut rng) < 10);
    }
}
