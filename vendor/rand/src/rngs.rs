//! Named generators (subset of `rand::rngs`).

use crate::{RngCore, SeedableRng};

/// Deterministic seedable generator — xoshiro256++ under the upstream
/// `StdRng` name. Statistically strong and fast; not reproducible against
/// upstream's ChaCha12 stream (nothing in this workspace requires that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// The generator's four xoshiro256++ state words, for durable
    /// snapshots: `from_state(state())` resumes the exact stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from [`state`](Self::state) words. Returns
    /// `None` for the all-zero state, which is a fixed point of the
    /// transition and can never be observed from a seeded generator.
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s == [0; 4] {
            None
        } else {
            Some(Self { s })
        }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (lane, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *lane = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        // An all-zero state would be a fixed point; SplitMix64 seeding never
        // produces one, but guard direct from_seed callers.
        if s == [0; 4] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut rng = StdRng::from_seed([7; 32]);
        let _ = rng.next_u64();
        let words = rng.state();
        let expect: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let mut resumed = StdRng::from_state(words).expect("nonzero state");
        let got: Vec<u64> = (0..8).map(|_| resumed.next_u64()).collect();
        assert_eq!(expect, got);
        assert!(StdRng::from_state([0; 4]).is_none());
    }
}
